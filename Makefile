PYTHON ?= python
PYTHONPATH := src

.PHONY: test faults bench quicktest

test:            ## full tier-1 suite (RuntimeWarnings are errors)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

faults:          ## fault-injection recovery suite only
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m faults

quicktest:       ## everything except the fault harness
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m "not faults"

bench:           ## regenerate all paper tables/figures
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only
