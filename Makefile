PYTHON ?= python
PYTHONPATH := src

.PHONY: test faults chaos cluster-chaos ingest-chaos overload-chaos gateway-chaos bench quicktest telemetry-test slo-test trace-test profile-test monitor-demo overload-demo gateway-demo profile-demo

test:            ## full tier-1 suite (RuntimeWarnings are errors; chaos excluded)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

faults:          ## fault-injection recovery suite only
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m faults

chaos:           ## serving chaos suite (fault schedules, breakers, hot-swap)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m chaos

cluster-chaos:   ## sharded-cluster chaos suite (replica crashes, shard loss, hedging tails)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m cluster

quicktest:       ## everything except the fault harness
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m "not faults"

telemetry-test:  ## telemetry layer tests, incl. the chaos-marked ones
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m obs

slo-test:        ## quality-SLO chaos suite (probes, drift, burn-rate alerts, flight recorder)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m slo

trace-test:      ## whole-path tracing suite (also part of tier-1)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m trace

profile-test:    ## real-clock profiler/memory-ledger suite (live sampler threads)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m profile

ingest-chaos:    ## streaming-ingest chaos suite (torn writes, disk-full, crash-mid-compaction, racing queries)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m ingest

overload-chaos:  ## real-time overload chaos suite (storms, floods, brownout ladder, fairness)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m overload

gateway-chaos:   ## real-socket gateway chaos suite (slowloris, floods, drain under load, stale cache)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m gateway

monitor-demo:    ## run the quality-observability incident demo and render it
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/quality_monitor_demo.py

overload-demo:   ## run the 10x-storm brownout/recovery demo
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/overload_demo.py

gateway-demo:    ## run the HTTP gateway drain-under-load demo
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/gateway_demo.py

profile-demo:    ## run the alert-triggered profile-capture demo
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/profiler_demo.py

bench:           ## regenerate all paper tables/figures
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only
