PYTHON ?= python
PYTHONPATH := src

.PHONY: test faults chaos bench quicktest

test:            ## full tier-1 suite (RuntimeWarnings are errors; chaos excluded)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

faults:          ## fault-injection recovery suite only
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m faults

chaos:           ## serving chaos suite (fault schedules, breakers, hot-swap)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m chaos

quicktest:       ## everything except the fault harness
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m "not faults"

bench:           ## regenerate all paper tables/figures
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only
