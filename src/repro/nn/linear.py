"""Fully connected layers."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .init import xavier_uniform, zeros
from .module import Module, Parameter

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    rng:
        Generator used for Xavier initialization.
    bias:
        Whether to learn an additive bias.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out
