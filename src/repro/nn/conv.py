"""2-D convolution and pooling, implemented via im2col.

These back the :class:`repro.vision.MiniResNet` image encoder that
stands in for the paper's ResNet-50. Forward and backward passes are
written directly against numpy with custom autograd closures, which is
substantially faster than composing them from primitive tensor ops.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .init import he_normal, zeros
from .module import Module, Parameter

__all__ = ["Conv2d", "MaxPool2d", "GlobalAvgPool2d", "im2col", "col2im"]


def _out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Unfold (N, C, H, W) into columns (N, C*k*k, out_h*out_w)."""
    n, c, h, w = x.shape
    out_h = _out_size(h, kernel, stride, padding)
    out_w = _out_size(w, kernel, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = np.empty((n, c, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for i in range(kernel):
        i_end = i + stride * out_h
        for j in range(kernel):
            j_end = j + stride * out_w
            cols[:, :, i, j] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(n, c * kernel * kernel, out_h * out_w)


def col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int],
           kernel: int, stride: int, padding: int) -> np.ndarray:
    """Fold columns back to (N, C, H, W), accumulating overlaps."""
    n, c, h, w = x_shape
    out_h = _out_size(h, kernel, stride, padding)
    out_w = _out_size(w, kernel, stride, padding)
    cols = cols.reshape(n, c, kernel, kernel, out_h, out_w)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kernel):
        i_end = i + stride * out_h
        for j in range(kernel):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2d(Module):
    """2-D convolution ``(N, C_in, H, W) -> (N, C_out, H', W')``."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator, stride: int = 1, padding: int = 0,
                 bias: bool = True):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(he_normal(shape, rng))
        self.bias = Parameter(zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h = _out_size(h, k, s, p)
        out_w = _out_size(w, k, s, p)

        cols = im2col(x.data, k, s, p)  # (n, c*k*k, L)
        w_flat = self.weight.data.reshape(self.out_channels, -1)
        out = np.einsum("of,nfl->nol", w_flat, cols)
        if self.bias is not None:
            out += self.bias.data[None, :, None]
        out = out.reshape(n, self.out_channels, out_h, out_w)

        weight, bias = self.weight, self.bias
        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(grad):
            g = grad.reshape(n, self.out_channels, -1)  # (n, o, L)
            grad_w = np.einsum("nol,nfl->of", g, cols).reshape(weight.data.shape)
            grad_cols = np.einsum("of,nol->nfl", w_flat, g)
            grad_x = col2im(grad_cols, (n, c, h, w), k, s, p)
            if bias is None:
                return (grad_x, grad_w)
            grad_b = g.sum(axis=(0, 2))
            return (grad_x, grad_w, grad_b)

        return Tensor._make(out, parents, backward)


class MaxPool2d(Module):
    """Max pooling with square window (kernel == stride)."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        k = self.kernel_size
        n, c, h, w = x.shape
        if h % k or w % k:
            raise ValueError(f"spatial dims {(h, w)} not divisible by pool {k}")
        out_h, out_w = h // k, w // k
        windows = x.data.reshape(n, c, out_h, k, out_w, k)
        windows = windows.transpose(0, 1, 2, 4, 3, 5).reshape(
            n, c, out_h, out_w, k * k)
        arg = windows.argmax(axis=-1)
        out = np.take_along_axis(windows, arg[..., None], axis=-1)[..., 0]

        def backward(grad):
            grad_windows = np.zeros_like(windows)
            np.put_along_axis(grad_windows, arg[..., None], grad[..., None],
                              axis=-1)
            grad_x = grad_windows.reshape(n, c, out_h, out_w, k, k)
            grad_x = grad_x.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)
            return (grad_x,)

        return Tensor._make(out, (x,), backward)


class GlobalAvgPool2d(Module):
    """Average over spatial dimensions: (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        return x.reshape(n, c, h * w).mean(axis=2)
