"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Randomly zero activations during training, scaled to keep the mean.

    Evaluation mode is the identity. The mask generator is owned by the
    module so the whole training run stays reproducible under one seed.
    """

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)
