"""Token embedding table."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .init import normal
from .module import Module, Parameter

__all__ = ["Embedding"]


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors.

    Index 0 is conventionally the padding token; its row is zeroed at
    initialization (gradients may still update it unless the whole
    table is frozen, matching common practice).
    """

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator, padding_idx: int | None = 0,
                 std: float = 0.05):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        table = normal((num_embeddings, embedding_dim), rng, std=std)
        if padding_idx is not None:
            table[padding_idx] = 0.0
        self.weight = Parameter(table)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """Map an integer array (any shape) to embeddings of shape +(dim,)."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.min(initial=0) < 0 or token_ids.max(initial=0) >= self.num_embeddings:
            raise IndexError(
                f"token id out of range for table of size {self.num_embeddings}"
            )
        return self.weight[token_ids]

    @classmethod
    def from_pretrained(cls, vectors: np.ndarray, freeze: bool = True,
                        padding_idx: int | None = 0) -> "Embedding":
        """Build an embedding from pretrained vectors (e.g. word2vec)."""
        rng = np.random.default_rng(0)
        module = cls(vectors.shape[0], vectors.shape[1], rng,
                     padding_idx=padding_idx)
        module.weight.data = np.asarray(vectors, dtype=np.float64).copy()
        if padding_idx is not None:
            module.weight.data[padding_idx] = 0.0
        if freeze:
            module.freeze()
        return module
