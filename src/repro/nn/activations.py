"""Activation modules (thin wrappers over autograd ops)."""

from __future__ import annotations

from ..autograd import Tensor
from .module import Module

__all__ = ["ReLU", "Tanh", "Sigmoid"]


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()
