"""Neural network building blocks (the ``torch.nn`` stand-in)."""

from .module import Module, Parameter
from .container import ModuleList, Sequential
from .linear import Linear
from .embedding import Embedding
from .activations import ReLU, Sigmoid, Tanh
from .dropout import Dropout
from .normalization import BatchNorm1d, LayerNorm
from .conv import Conv2d, GlobalAvgPool2d, MaxPool2d
from .recurrent import LSTM, BiLSTM, LSTMCell, reverse_padded
from . import init

__all__ = [
    "Module", "Parameter", "Sequential", "ModuleList",
    "Linear", "Embedding", "ReLU", "Tanh", "Sigmoid", "Dropout",
    "LayerNorm", "BatchNorm1d", "Conv2d", "MaxPool2d", "GlobalAvgPool2d",
    "LSTMCell", "LSTM", "BiLSTM", "reverse_padded", "init",
]
