"""Normalization layers."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .module import Module, Parameter

__all__ = ["LayerNorm", "BatchNorm1d"]


class LayerNorm(Module):
    """Layer normalization over the last axis, with learned scale/shift."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class BatchNorm1d(Module):
    """Batch normalization over axis 0 with running statistics.

    Used inside the MiniResNet stand-in for ResNet-50's BN layers
    (applied to flattened channel features).
    """

    def __init__(self, dim: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))
        self.running_mean = np.zeros(dim)
        self.running_var = np.ones(dim)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            batch_mean = x.data.mean(axis=0)
            batch_var = x.data.var(axis=0)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * batch_mean)
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * batch_var)
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=0, keepdims=True)
            normed = centered / (var + self.eps).sqrt()
        else:
            normed = (x - Tensor(self.running_mean)) / Tensor(
                np.sqrt(self.running_var + self.eps))
        return normed * self.gamma + self.beta
