"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator

from .module import Module

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._modules = list(modules)

    def forward(self, x):
        for module in self._modules:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[index]


class ModuleList(Module):
    """A list of modules whose parameters are tracked."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self._modules = list(modules)

    def append(self, module: Module) -> None:
        self._modules.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[index]
