"""LSTM recurrences: cell, unidirectional and bidirectional layers.

The recipe branch of AdaMine uses a bidirectional LSTM over pretrained
ingredient embeddings and a hierarchical LSTM over instructions
(a frozen word-level sentence encoder feeding a trainable
sentence-level LSTM). All sequence handling is mask-aware so padded
positions never touch the recurrent state.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concat, stack, where
from .init import orthogonal, xavier_uniform, zeros
from .module import Module, Parameter

__all__ = ["LSTMCell", "LSTM", "BiLSTM", "reverse_padded"]


class LSTMCell(Module):
    """Single LSTM step with the four gates fused into one projection."""

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_input = Parameter(xavier_uniform((input_dim, 4 * hidden_dim), rng))
        self.w_hidden = Parameter(orthogonal((hidden_dim, 4 * hidden_dim), rng))
        bias = zeros((4 * hidden_dim,))
        bias[hidden_dim:2 * hidden_dim] = 1.0  # forget-gate bias trick
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """Advance one step: returns the new (hidden, cell) states."""
        gates = x @ self.w_input + h @ self.w_hidden + self.bias
        hd = self.hidden_dim
        i = gates[:, 0 * hd:1 * hd].sigmoid()
        f = gates[:, 1 * hd:2 * hd].sigmoid()
        g = gates[:, 2 * hd:3 * hd].tanh()
        o = gates[:, 3 * hd:4 * hd].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new


class LSTM(Module):
    """Run an :class:`LSTMCell` over a padded batch of sequences.

    Parameters
    ----------
    input_dim, hidden_dim:
        Feature sizes.
    rng:
        Initialization generator.

    Call with embeddings of shape ``(batch, time, input_dim)`` and an
    integer ``lengths`` array; returns ``(outputs, final_hidden)`` where
    ``outputs`` is ``(batch, time, hidden_dim)`` and ``final_hidden`` is
    the state at each sequence's last valid step.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.cell = LSTMCell(input_dim, hidden_dim, rng)

    def forward(self, x: Tensor, lengths: np.ndarray) -> tuple[Tensor, Tensor]:
        batch, time, _ = x.shape
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.shape != (batch,):
            raise ValueError(f"lengths shape {lengths.shape} != ({batch},)")
        if time and lengths.max(initial=0) > time:
            raise ValueError("a sequence length exceeds the padded time axis")

        h = Tensor(np.zeros((batch, self.hidden_dim)))
        c = Tensor(np.zeros((batch, self.hidden_dim)))
        outputs = []
        for t in range(time):
            h_new, c_new = self.cell(x[:, t, :], h, c)
            active = (lengths > t)[:, None]  # freeze state on padding
            h = where(active, h_new, h)
            c = where(active, c_new, c)
            outputs.append(h)
        if outputs:
            all_out = stack(outputs, axis=1)
        else:
            all_out = Tensor(np.zeros((batch, 0, self.hidden_dim)))
        return all_out, h


def reverse_padded(x: Tensor, lengths: np.ndarray) -> Tensor:
    """Reverse each sequence's valid prefix, leaving padding in place.

    Needed by the backward direction of :class:`BiLSTM`.
    """
    batch, time = x.shape[0], x.shape[1]
    lengths = np.asarray(lengths, dtype=np.int64)
    positions = np.arange(time)[None, :]
    reversed_index = np.where(
        positions < lengths[:, None],
        np.maximum(lengths[:, None] - 1 - positions, 0),
        positions,
    )
    rows = np.arange(batch)[:, None]
    return x[rows, reversed_index]


class BiLSTM(Module):
    """Bidirectional LSTM; the two final hidden states are concatenated.

    This mirrors the paper's ingredient encoder: a Bi-LSTM over
    word2vec ingredient embeddings whose output feeds the recipe
    branch's fully connected projection.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.forward_lstm = LSTM(input_dim, hidden_dim, rng)
        self.backward_lstm = LSTM(input_dim, hidden_dim, rng)

    @property
    def output_dim(self) -> int:
        return 2 * self.hidden_dim

    def forward(self, x: Tensor, lengths: np.ndarray) -> Tensor:
        """Encode ``(batch, time, dim)`` to ``(batch, 2*hidden_dim)``."""
        _, h_forward = self.forward_lstm(x, lengths)
        _, h_backward = self.backward_lstm(reverse_padded(x, lengths), lengths)
        return concat([h_forward, h_backward], axis=-1)
