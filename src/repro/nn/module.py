"""Module/Parameter system (the substrate for ``torch.nn.Module``).

A :class:`Module` discovers its :class:`Parameter` attributes and
sub-modules by attribute scanning, supports train/eval switching,
gradient zeroing, parameter freezing (used by the paper's two-phase
training schedule) and flat ``state_dict`` serialization.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from ..autograd import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A trainable tensor; always created with ``requires_grad=True``."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network components."""

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------
    # Forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        """Yield direct sub-modules, in attribute definition order."""
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{i}", item

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, value in vars(self).items():
            if isinstance(value, Parameter):
                yield (f"{prefix}{name}", value)
        for child_name, child in self.named_children():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> list[Parameter]:
        """Return all parameters (recursively, duplicates removed)."""
        seen: set[int] = set()
        result: list[Parameter] = []
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                result.append(param)
        return result

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters in this module tree."""
        params = self.parameters()
        if trainable_only:
            params = [p for p in params if p.requires_grad]
        return sum(p.size for p in params)

    # ------------------------------------------------------------------
    # Mode switching / gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout, batch norm)."""
        self.training = mode
        for _, child in self.named_children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradient buffers of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def freeze(self) -> "Module":
        """Stop gradients flowing into this module's parameters.

        Mirrors the paper's schedule of keeping the vision backbone
        frozen for the first training phase.
        """
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        """Re-enable gradient flow into this module's parameters."""
        for param in self.parameters():
            param.requires_grad = True
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return a flat name → array copy of all parameters."""
        return OrderedDict(
            (name, param.data.copy()) for name, param in self.named_parameters()
        )

    def load_state_dict(self, state: dict) -> None:
        """Load parameter values from :meth:`state_dict` output."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            param = own[name]
            values = np.asarray(values, dtype=np.float64)
            if values.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': "
                    f"{values.shape} vs {param.data.shape}"
                )
            # In-place copy, NOT ``param.data = values.copy()``: rebinding
            # would hand BLAS a differently-aligned buffer, whose small-GEMM
            # kernels are alignment-sensitive at the last ulp — enough to
            # break bitwise-deterministic checkpoint resume.
            np.copyto(param.data, values)

    def save(self, path) -> None:
        """Persist parameters to an ``.npz`` file."""
        np.savez(path, **{k: v for k, v in self.state_dict().items()})

    def load(self, path) -> None:
        """Restore parameters previously written by :meth:`save`."""
        with np.load(path) as archive:
            self.load_state_dict({k: archive[k] for k in archive.files})
