"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so the
whole reproduction is deterministic under a single seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "he_normal", "normal", "zeros", "orthogonal"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform — the default for linear projections."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal — used ahead of ReLU activations (conv layers)."""
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator,
           std: float = 0.02) -> np.ndarray:
    """Plain Gaussian initialization (embeddings)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape)


def orthogonal(shape: tuple[int, ...], rng: np.random.Generator,
               gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialization — keeps LSTM recurrences well-conditioned."""
    rows, cols = shape[0], int(np.prod(shape[1:]))
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))  # make the decomposition unique
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols].reshape(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional kernels."""
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:  # (out_channels, in_channels, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size
