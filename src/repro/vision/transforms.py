"""Image augmentation for training batches.

Lightweight numpy equivalents of the crop/flip/jitter pipeline used
when fine-tuning vision backbones. All functions take and return
channel-first ``(..., 3, H, W)`` arrays and never modify their input.
"""

from __future__ import annotations

import numpy as np

__all__ = ["flip_horizontal", "brightness_jitter", "additive_noise",
           "random_crop", "Augmenter"]


def flip_horizontal(images: np.ndarray) -> np.ndarray:
    """Mirror images along the width axis."""
    return images[..., ::-1].copy()


def brightness_jitter(images: np.ndarray, rng: np.random.Generator,
                      strength: float = 0.1) -> np.ndarray:
    """Scale each image by an independent factor in [1-s, 1+s]."""
    n = images.shape[0]
    factors = rng.uniform(1.0 - strength, 1.0 + strength, size=(n, 1, 1, 1))
    return np.clip(images * factors, 0.0, 1.0)


def additive_noise(images: np.ndarray, rng: np.random.Generator,
                   sigma: float = 0.02) -> np.ndarray:
    """Add gaussian pixel noise."""
    return np.clip(images + rng.normal(0.0, sigma, size=images.shape),
                   0.0, 1.0)


def random_crop(images: np.ndarray, rng: np.random.Generator,
                pad: int = 2) -> np.ndarray:
    """Reflect-pad by ``pad`` then crop back at a random offset."""
    n, c, h, w = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (pad, pad), (pad, pad)),
                    mode="reflect")
    out = np.empty_like(images)
    offsets = rng.integers(0, 2 * pad + 1, size=(n, 2))
    for i, (dy, dx) in enumerate(offsets):
        out[i] = padded[i, :, dy:dy + h, dx:dx + w]
    return out


class Augmenter:
    """Composable train-time augmentation pipeline.

    Parameters
    ----------
    rng:
        Generator for all stochastic choices.
    flip_prob:
        Per-image probability of a horizontal flip.
    brightness, noise_sigma, crop_pad:
        Strengths of the individual transforms (0 disables each).
    """

    def __init__(self, rng: np.random.Generator, flip_prob: float = 0.5,
                 brightness: float = 0.1, noise_sigma: float = 0.02,
                 crop_pad: int = 1):
        self.rng = rng
        self.flip_prob = flip_prob
        self.brightness = brightness
        self.noise_sigma = noise_sigma
        self.crop_pad = crop_pad

    def __call__(self, images: np.ndarray) -> np.ndarray:
        out = images.copy()
        if self.crop_pad:
            out = random_crop(out, self.rng, pad=self.crop_pad)
        if self.flip_prob:
            flips = self.rng.random(len(out)) < self.flip_prob
            if flips.any():
                out[flips] = flip_horizontal(out[flips])
        if self.brightness:
            out = brightness_jitter(out, self.rng, self.brightness)
        if self.noise_sigma:
            out = additive_noise(out, self.rng, self.noise_sigma)
        return out
