"""Residual CNN image encoders (the ResNet-50 stand-in).

Two encoders share the same interface (``forward(images) -> features``,
``feature_dim``):

* :class:`MiniResNet` — a genuine residual convolutional network
  (conv/BN/ReLU stem, residual blocks, downsampling, global average
  pooling). This mirrors ResNet-50's structure at CPU-tractable scale
  and supports the paper's freeze→unfreeze fine-tuning schedule.
* :class:`MLPEncoder` — a two-layer perceptron over raw pixels, used
  by the scaled-down benchmark configurations where end-to-end CNN
  fine-tuning would dominate wall-clock without changing the
  comparison between retrieval objectives (what the paper measures).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..nn import (BatchNorm1d, Conv2d, GlobalAvgPool2d, Linear, MaxPool2d,
                  Module)

__all__ = ["BatchNorm2d", "ResidualBlock", "MiniResNet", "MLPEncoder",
           "HistogramEncoder", "build_image_encoder"]


class BatchNorm2d(Module):
    """Per-channel batch norm for (N, C, H, W) feature maps.

    Implemented by flattening spatial positions into the batch axis and
    reusing :class:`BatchNorm1d`.
    """

    def __init__(self, channels: int, eps: float = 1e-5,
                 momentum: float = 0.1):
        super().__init__()
        self.channels = channels
        self.bn = BatchNorm1d(channels, eps=eps, momentum=momentum)

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        flat = x.transpose((0, 2, 3, 1)).reshape(n * h * w, c)
        normed = self.bn(flat)
        return normed.reshape(n, h, w, c).transpose((0, 3, 1, 2))


class ResidualBlock(Module):
    """Two 3x3 conv/BN layers with an identity skip connection."""

    def __init__(self, channels: int, rng: np.random.Generator):
        super().__init__()
        self.conv1 = Conv2d(channels, channels, 3, rng, padding=1)
        self.bn1 = BatchNorm2d(channels)
        self.conv2 = Conv2d(channels, channels, 3, rng, padding=1)
        self.bn2 = BatchNorm2d(channels)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + x).relu()


class MiniResNet(Module):
    """Small residual CNN: stem + one residual stage per width.

    Parameters
    ----------
    widths:
        Channel count per stage; each stage after the first starts with
        a stride-free channel-expanding conv followed by 2x2 max
        pooling, then a residual block.
    image_size:
        Input side length (must be divisible by ``2**(len(widths)-1)``).
    """

    def __init__(self, rng: np.random.Generator,
                 widths: tuple[int, ...] = (8, 16, 32),
                 image_size: int = 24, in_channels: int = 3):
        super().__init__()
        if image_size % (2 ** (len(widths) - 1)) != 0:
            raise ValueError(
                f"image_size {image_size} not divisible by "
                f"{2 ** (len(widths) - 1)}")
        self.image_size = image_size
        self.widths = widths
        self.stem = Conv2d(in_channels, widths[0], 3, rng, padding=1)
        self.stem_bn = BatchNorm2d(widths[0])
        self.stages = []
        for prev, width in zip(widths[:-1], widths[1:]):
            self.stages.append(Conv2d(prev, width, 3, rng, padding=1))
            self.stages.append(BatchNorm2d(width))
            self.stages.append(MaxPool2d(2))
            self.stages.append(ResidualBlock(width, rng))
        self.head_block = ResidualBlock(widths[0], rng)
        self.pool = GlobalAvgPool2d()

    @property
    def feature_dim(self) -> int:
        return self.widths[-1]

    def forward(self, images: Tensor) -> Tensor:
        """Encode (N, 3, S, S) images to (N, feature_dim) features."""
        x = self.stem_bn(self.stem(images)).relu()
        x = self.head_block(x)
        i = 0
        while i < len(self.stages):
            conv, bn, pool, block = self.stages[i:i + 4]
            x = bn(conv(x)).relu()
            x = pool(x)
            x = block(x)
            i += 4
        return self.pool(x)


class HistogramEncoder(Module):
    """Frozen colour-statistics features + trainable MLP head.

    The paper's first training phase runs on *frozen* ImageNet ResNet-50
    features with only the projection trained. This encoder is the
    CPU-scale equivalent: a fixed, position-invariant feature extractor
    (per-channel mean/std, a quantized joint colour histogram — which
    directly exposes ingredient presence — and a coarse spatial colour
    grid that exposes plating layout/class), followed by a trainable
    two-layer head. No gradients flow into the fixed features, exactly
    like a frozen backbone.
    """

    def __init__(self, rng: np.random.Generator, image_size: int = 24,
                 in_channels: int = 3, hidden_dim: int = 64,
                 feature_dim: int = 32, bins: int = 4, grid: int = 4):
        super().__init__()
        if image_size % grid:
            raise ValueError(f"image_size {image_size} not divisible by "
                             f"grid {grid}")
        self.image_size = image_size
        self.bins = bins
        self.grid = grid
        self._feature_dim = feature_dim
        input_dim = 2 * in_channels + bins ** in_channels \
            + in_channels * grid * grid
        self.hidden = Linear(input_dim, hidden_dim, rng)
        self.output = Linear(hidden_dim, feature_dim, rng)

    @property
    def feature_dim(self) -> int:
        return self._feature_dim

    def extract(self, images: np.ndarray) -> np.ndarray:
        """Fixed features: stats ⊕ colour histogram ⊕ spatial grid."""
        n, c, h, w = images.shape
        means = images.mean(axis=(2, 3))
        stds = images.std(axis=(2, 3))
        # joint colour histogram over bins^3 cells, per image
        quantized = np.minimum((images * self.bins).astype(np.int64),
                               self.bins - 1)
        cell = np.zeros((n, h, w), dtype=np.int64)
        for channel in range(c):
            cell = cell * self.bins + quantized[:, channel]
        offsets = np.arange(n)[:, None, None] * (self.bins ** c)
        flat = (cell + offsets).reshape(-1)
        histogram = np.bincount(flat, minlength=n * self.bins ** c)
        histogram = histogram.reshape(n, -1) / (h * w)
        # coarse spatial colour grid
        g = self.grid
        pooled = images.reshape(n, c, g, h // g, g, w // g).mean(axis=(3, 5))
        return np.concatenate([means, stds, histogram * 4.0,
                               pooled.reshape(n, -1)], axis=1)

    def forward(self, images: Tensor) -> Tensor:
        features = Tensor(self.extract(images.data))
        return self.output(self.hidden(features).tanh())


class MLPEncoder(Module):
    """Flatten-pixels MLP encoder (fast path for CPU-scale benches)."""

    def __init__(self, rng: np.random.Generator, image_size: int = 24,
                 in_channels: int = 3, hidden_dim: int = 64,
                 feature_dim: int = 32):
        super().__init__()
        self.image_size = image_size
        self._input_dim = in_channels * image_size * image_size
        self._feature_dim = feature_dim
        self.hidden = Linear(self._input_dim, hidden_dim, rng)
        self.output = Linear(hidden_dim, feature_dim, rng)

    @property
    def feature_dim(self) -> int:
        return self._feature_dim

    def forward(self, images: Tensor) -> Tensor:
        n = images.shape[0]
        flat = images.reshape(n, self._input_dim)
        return self.output(self.hidden(flat).tanh())


def build_image_encoder(kind: str, rng: np.random.Generator,
                        image_size: int, feature_dim: int = 32) -> Module:
    """Factory: ``"resnet"`` → :class:`MiniResNet`, ``"mlp"`` →
    :class:`MLPEncoder`."""
    if kind == "resnet":
        return MiniResNet(rng, widths=(8, 16, feature_dim),
                          image_size=image_size)
    if kind == "mlp":
        return MLPEncoder(rng, image_size=image_size,
                          feature_dim=feature_dim)
    if kind == "hist":
        return HistogramEncoder(rng, image_size=image_size,
                                feature_dim=feature_dim)
    raise ValueError(f"unknown image encoder kind {kind!r}")
