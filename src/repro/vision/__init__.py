"""Vision substrate: image encoders, transforms, pretraining."""

from .resnet import (BatchNorm2d, HistogramEncoder, MLPEncoder, MiniResNet,
                     ResidualBlock, build_image_encoder)
from .transforms import (Augmenter, additive_noise, brightness_jitter,
                         flip_horizontal, random_crop)
from .pretrain import color_statistics, pretrain_backbone

__all__ = [
    "MiniResNet", "MLPEncoder", "HistogramEncoder", "ResidualBlock", "BatchNorm2d",
    "build_image_encoder",
    "Augmenter", "flip_horizontal", "brightness_jitter", "additive_noise",
    "random_crop",
    "pretrain_backbone", "color_statistics",
]
