"""Self-supervised backbone warm-start (the ImageNet-pretraining stand-in).

The paper initializes its ResNet-50 from ImageNet. With no external
data available, we warm-start the backbone with a *colour-statistics
proxy task*: regress each image's per-channel mean and variance from
the backbone features through a throwaway linear head. This teaches
the convolutional filters to expose exactly the signal our procedural
dish images encode (ingredient colours and textures), mirroring the
role of ImageNet features, and is discarded after pretraining — only
the backbone weights are kept.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..nn import Linear, Module
from ..optim import Adam

__all__ = ["pretrain_backbone", "color_statistics"]


def color_statistics(images: np.ndarray) -> np.ndarray:
    """Per-image targets: channel means and standard deviations (6 dims)."""
    means = images.mean(axis=(2, 3))
    stds = images.std(axis=(2, 3))
    return np.concatenate([means, stds], axis=1)


def pretrain_backbone(backbone: Module, images: np.ndarray,
                      epochs: int = 3, batch_size: int = 32,
                      lr: float = 1e-3, seed: int = 0) -> list[float]:
    """Warm-start ``backbone`` on the colour-statistics proxy task.

    Returns the per-epoch mean squared errors (decreasing losses are
    asserted by the test suite as evidence the backbone actually
    learns). The regression head is local to this function and
    discarded on return.
    """
    rng = np.random.default_rng(seed)
    targets = color_statistics(images)
    head = Linear(backbone.feature_dim, targets.shape[1], rng)
    optimizer = Adam(list(backbone.parameters()) + list(head.parameters()),
                     lr=lr)
    losses = []
    n = len(images)
    for __ in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, batch_size):
            rows = order[start:start + batch_size]
            optimizer.zero_grad()
            features = backbone(Tensor(images[rows]))
            predicted = head(features)
            error = predicted - Tensor(targets[rows])
            loss = (error * error).mean()
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
    return losses
