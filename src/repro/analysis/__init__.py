"""Analysis tools: t-SNE, cluster metrics, sweeps, qualitative tasks."""

from .tsne import TSNE
from .cluster_metrics import (class_separation_ratio, knn_purity,
                              matched_pair_distance)
from .lambda_sweep import PAPER_LAMBDAS, LambdaSweepPoint, run_lambda_sweep
from .embedding_stats import (LatentSpaceStats, alignment, modality_gap,
                              summarize_latent_space, uniformity)
from .plotting import CLASS_PALETTE, line_plot, scatter_plot
from .qualitative import (IngredientSearchResult, RecipeToImageResult,
                          RemovalComparison, RetrievalHit,
                          ingredient_query_embedding, ingredient_to_image,
                          recipe_to_image, remove_ingredient_comparison)

__all__ = [
    "TSNE",
    "knn_purity", "matched_pair_distance", "class_separation_ratio",
    "run_lambda_sweep", "LambdaSweepPoint", "PAPER_LAMBDAS",
    "recipe_to_image", "RecipeToImageResult",
    "ingredient_to_image", "IngredientSearchResult",
    "ingredient_query_embedding",
    "remove_ingredient_comparison", "RemovalComparison", "RetrievalHit",
    "alignment", "uniformity", "modality_gap", "summarize_latent_space",
    "LatentSpaceStats",
    "scatter_plot", "line_plot", "CLASS_PALETTE",
]
