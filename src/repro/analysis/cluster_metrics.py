"""Quantitative proxies for Figure 3's visual claims.

The paper shows t-SNE maps and argues (1) AdaMine groups items of a
class together and (2) shortens the traces connecting matching pairs.
These metrics turn both claims into numbers computed on the latent
embeddings (and, for map-space variants, on t-SNE coordinates):

* :func:`knn_purity` — fraction of each item's k nearest neighbours
  sharing its class (claim 1);
* :func:`matched_pair_distance` — mean cosine distance between matching
  image/recipe pairs (claim 2);
* :func:`class_separation_ratio` — mean inter-class over intra-class
  distance (larger = better-separated clusters).
"""

from __future__ import annotations

import numpy as np

from ..retrieval import cosine_distance, cosine_distance_matrix

__all__ = ["knn_purity", "matched_pair_distance", "class_separation_ratio"]


def knn_purity(embeddings: np.ndarray, class_ids: np.ndarray,
               k: int = 10) -> float:
    """Mean fraction of k nearest neighbours sharing the query's class."""
    class_ids = np.asarray(class_ids)
    n = len(embeddings)
    if class_ids.shape != (n,):
        raise ValueError("class_ids must align with embeddings")
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, {n - 1}]")
    distances = cosine_distance_matrix(embeddings, embeddings)
    np.fill_diagonal(distances, np.inf)
    neighbours = np.argsort(distances, axis=1)[:, :k]
    matches = class_ids[neighbours] == class_ids[:, None]
    return float(matches.mean())


def matched_pair_distance(image_embeddings: np.ndarray,
                          recipe_embeddings: np.ndarray) -> float:
    """Mean cosine distance between matching cross-modal pairs."""
    if image_embeddings.shape != recipe_embeddings.shape:
        raise ValueError("embedding matrices must be aligned")
    return float(cosine_distance(image_embeddings,
                                 recipe_embeddings).mean())


def class_separation_ratio(embeddings: np.ndarray,
                           class_ids: np.ndarray) -> float:
    """Mean inter-class distance divided by mean intra-class distance.

    Values > 1 mean items sit closer to their own class than to other
    classes; higher is better-structured.
    """
    class_ids = np.asarray(class_ids)
    if class_ids.shape[0] != len(embeddings):
        raise ValueError("class_ids must align with embeddings")
    distances = cosine_distance_matrix(embeddings, embeddings)
    same = class_ids[:, None] == class_ids[None, :]
    off_diagonal = ~np.eye(len(embeddings), dtype=bool)
    intra = distances[same & off_diagonal]
    inter = distances[~same]
    if intra.size == 0 or inter.size == 0:
        raise ValueError("need at least two classes with two members each")
    return float(inter.mean() / intra.mean())
