"""Latent-space health diagnostics.

Standard statistics for contrastive embedding spaces, used to inspect
what the different training objectives do to the geometry:

* **alignment** (Wang & Isola, 2020): mean squared distance between
  matched cross-modal pairs — lower is better-aligned;
* **uniformity**: log of the mean Gaussian potential between random
  pairs — more negative is more uniformly spread on the sphere;
* **modality gap**: distance between the image and recipe centroids —
  a known artifact of dual-encoder training.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..retrieval import normalize_rows

__all__ = ["LatentSpaceStats", "alignment", "uniformity", "modality_gap",
           "summarize_latent_space"]


def alignment(image_embeddings: np.ndarray,
              recipe_embeddings: np.ndarray) -> float:
    """Mean squared Euclidean distance between matched (unit) pairs."""
    a = normalize_rows(image_embeddings)
    b = normalize_rows(recipe_embeddings)
    if a.shape != b.shape:
        raise ValueError("embedding matrices must be aligned")
    return float(((a - b) ** 2).sum(axis=1).mean())


def uniformity(embeddings: np.ndarray, t: float = 2.0) -> float:
    """log E[exp(-t ||x - y||^2)] over all distinct pairs."""
    x = normalize_rows(embeddings)
    n = len(x)
    if n < 2:
        raise ValueError("need at least two embeddings")
    squared = np.maximum(
        (x ** 2).sum(axis=1)[:, None] + (x ** 2).sum(axis=1)[None, :]
        - 2.0 * x @ x.T, 0.0)
    off_diagonal = squared[~np.eye(n, dtype=bool)]
    return float(np.log(np.exp(-t * off_diagonal).mean()))


def modality_gap(image_embeddings: np.ndarray,
                 recipe_embeddings: np.ndarray) -> float:
    """Euclidean distance between the two modality centroids."""
    a = normalize_rows(image_embeddings)
    b = normalize_rows(recipe_embeddings)
    return float(np.linalg.norm(a.mean(axis=0) - b.mean(axis=0)))


@dataclass(frozen=True)
class LatentSpaceStats:
    """Summary of a cross-modal latent space's geometry."""

    alignment: float
    uniformity_images: float
    uniformity_recipes: float
    modality_gap: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"alignment={self.alignment:.3f} "
                f"uniformity(img)={self.uniformity_images:.3f} "
                f"uniformity(rec)={self.uniformity_recipes:.3f} "
                f"gap={self.modality_gap:.3f}")


def summarize_latent_space(image_embeddings: np.ndarray,
                           recipe_embeddings: np.ndarray
                           ) -> LatentSpaceStats:
    """Compute all diagnostics in one pass."""
    return LatentSpaceStats(
        alignment=alignment(image_embeddings, recipe_embeddings),
        uniformity_images=uniformity(image_embeddings),
        uniformity_recipes=uniformity(recipe_embeddings),
        modality_gap=modality_gap(image_embeddings, recipe_embeddings),
    )
