"""Minimal numpy rasterizer for figure artifacts.

The environment has no matplotlib; this module renders the paper's two
figures as plain RGB arrays that :func:`repro.data.save_ppm` can write:

* :func:`scatter_plot` — Figure 3's t-SNE maps (points coloured by
  class, optional traces between matched pairs);
* :func:`line_plot` — Figure 4's MedR-vs-λ curve.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CLASS_PALETTE", "scatter_plot", "line_plot"]

# The paper colours cupcake blue, hamburger orange, green beans pink,
# pork chops green and pizza red; extended with more distinct hues.
CLASS_PALETTE = np.array([
    (0.22, 0.49, 0.72),   # blue
    (1.00, 0.50, 0.05),   # orange
    (0.89, 0.47, 0.76),   # pink
    (0.17, 0.63, 0.17),   # green
    (0.84, 0.15, 0.16),   # red
    (0.58, 0.40, 0.74),   # purple
    (0.55, 0.34, 0.29),   # brown
    (0.50, 0.50, 0.50),   # grey
    (0.74, 0.74, 0.13),   # olive
    (0.09, 0.75, 0.81),   # cyan
])


def _normalize(points: np.ndarray, margin: float) -> np.ndarray:
    low = points.min(axis=0)
    span = np.maximum(points.max(axis=0) - low, 1e-12)
    return margin + (points - low) / span * (1.0 - 2 * margin)


def _draw_dot(image: np.ndarray, x: int, y: int, color: np.ndarray,
              radius: int) -> None:
    size = image.shape[1]
    lo_y, hi_y = max(y - radius, 0), min(y + radius + 1, size)
    lo_x, hi_x = max(x - radius, 0), min(x + radius + 1, size)
    image[:, lo_y:hi_y, lo_x:hi_x] = color[:, None, None]


def _draw_line(image: np.ndarray, x0: int, y0: int, x1: int, y1: int,
               color: np.ndarray) -> None:
    steps = max(abs(x1 - x0), abs(y1 - y0), 1)
    for step in range(steps + 1):
        t = step / steps
        x = int(round(x0 + t * (x1 - x0)))
        y = int(round(y0 + t * (y1 - y0)))
        if 0 <= y < image.shape[1] and 0 <= x < image.shape[2]:
            image[:, y, x] = color


def scatter_plot(points: np.ndarray, class_ids: np.ndarray,
                 size: int = 256, dot_radius: int = 2,
                 pair_traces: np.ndarray | None = None) -> np.ndarray:
    """Render a 2-D scatter to a (3, size, size) image.

    Parameters
    ----------
    points:
        (n, 2) coordinates (e.g. t-SNE output).
    class_ids:
        Integer class per point; colours cycle through the palette.
    pair_traces:
        Optional (m, 2) array of point-index pairs to connect with a
        light line (the paper's matched-pair traces).
    """
    points = np.asarray(points, dtype=np.float64)
    class_ids = np.asarray(class_ids)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be (n, 2)")
    if len(class_ids) != len(points):
        raise ValueError("class_ids must align with points")
    image = np.ones((3, size, size))
    scaled = _normalize(points, margin=0.06)
    pixels = np.clip((scaled * (size - 1)).round().astype(int), 0, size - 1)

    if pair_traces is not None:
        trace_color = np.array([0.8, 0.8, 0.8])
        for a, b in np.asarray(pair_traces, dtype=int):
            _draw_line(image, pixels[a, 0], pixels[a, 1],
                       pixels[b, 0], pixels[b, 1], trace_color)

    palette_size = len(CLASS_PALETTE)
    for (x, y), class_id in zip(pixels, class_ids):
        color = CLASS_PALETTE[int(class_id) % palette_size]
        _draw_dot(image, x, y, color, dot_radius)
    return image


def line_plot(xs: np.ndarray, ys: np.ndarray, size: int = 256,
              color=(0.22, 0.49, 0.72)) -> np.ndarray:
    """Render a polyline chart (Figure 4 style) to a (3, size, size) image."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1 or len(xs) < 2:
        raise ValueError("need two aligned 1-D arrays of >= 2 points")
    image = np.ones((3, size, size))
    points = _normalize(np.column_stack([xs, ys]), margin=0.1)
    # y axis grows upward in a chart, downward in an image
    pixel_x = np.clip((points[:, 0] * (size - 1)).round().astype(int),
                      0, size - 1)
    pixel_y = np.clip(((1.0 - points[:, 1]) * (size - 1)).round().astype(int),
                      0, size - 1)
    line_color = np.asarray(color, dtype=np.float64)
    for i in range(len(xs) - 1):
        _draw_line(image, pixel_x[i], pixel_y[i], pixel_x[i + 1],
                   pixel_y[i + 1], line_color)
    for x, y in zip(pixel_x, pixel_y):
        _draw_dot(image, x, y, line_color * 0.7, radius=2)
    return image
