"""Downstream qualitative tasks (§5.3: Tables 2, 4 and 5).

* :func:`recipe_to_image` — Table 2: retrieve top-k images for recipe
  queries and annotate each hit as the exact match, a same-class item,
  or an off-class item.
* :func:`ingredient_to_image` — Table 4: embed a synthetic one-
  ingredient query (ingredient word + the mean instruction embedding of
  the corpus, the paper's construction) and retrieve images, optionally
  constrained to one class ("strawberries within pizza").
* :func:`remove_ingredient_comparison` — Table 5: retrieve with the
  original recipe and with the recipe after deleting one ingredient
  (and its instruction sentences), and measure how often the retrieved
  images' source recipes contain that ingredient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import no_grad
from ..core.model import JointEmbeddingModel
from ..data.dataset import RecipeDataset
from ..data.encoding import EncodedCorpus, RecipeFeaturizer
from ..retrieval import NearestNeighborIndex

__all__ = ["RetrievalHit", "RecipeToImageResult", "recipe_to_image",
           "ingredient_query_embedding", "IngredientSearchResult",
           "ingredient_to_image", "RemovalComparison",
           "remove_ingredient_comparison"]


@dataclass(frozen=True)
class RetrievalHit:
    """One retrieved image."""

    row: int                  # row in the searched corpus
    recipe_index: int         # dataset-level recipe index
    distance: float
    relation: str             # "match" | "same-class" | "other"


@dataclass(frozen=True)
class RecipeToImageResult:
    """Top-k images retrieved for one recipe query (Table 2 row)."""

    query_row: int
    query_title: str
    hits: tuple[RetrievalHit, ...]

    @property
    def match_rank(self) -> int | None:
        """1-based rank of the exact match within the hits, if present."""
        for position, hit in enumerate(self.hits, start=1):
            if hit.relation == "match":
                return position
        return None

    @property
    def same_class_fraction(self) -> float:
        """Fraction of hits that are the match or share the class."""
        relevant = sum(h.relation in ("match", "same-class")
                       for h in self.hits)
        return relevant / len(self.hits) if self.hits else 0.0


def _image_index(model: JointEmbeddingModel,
                 corpus: EncodedCorpus) -> NearestNeighborIndex:
    image_embeddings, __ = model.encode_corpus(corpus)
    return NearestNeighborIndex(image_embeddings,
                                ids=np.arange(len(corpus)),
                                class_ids=corpus.true_class_ids)


def _embed_single_recipe(model: JointEmbeddingModel, ingredient_ids,
                         n_ingredients, sentence_vectors,
                         n_sentences) -> np.ndarray:
    with no_grad():
        embedding = model.embed_recipes(
            ingredient_ids[None, :], np.array([n_ingredients]),
            sentence_vectors[None, :, :], np.array([n_sentences]))
    return embedding.data[0]


def recipe_to_image(model: JointEmbeddingModel, dataset: RecipeDataset,
                    corpus: EncodedCorpus, query_rows: np.ndarray,
                    k: int = 5) -> list[RecipeToImageResult]:
    """Retrieve the top-``k`` images for each recipe query row."""
    index = _image_index(model, corpus)
    __, recipe_embeddings = model.encode_corpus(corpus)
    results = []
    for row in np.asarray(query_rows, dtype=np.int64):
        rows, distances = index.query(recipe_embeddings[row], k=k)
        query_class = corpus.true_class_ids[row]
        hits = []
        for hit_row, distance in zip(rows, distances):
            if hit_row == row:
                relation = "match"
            elif corpus.true_class_ids[hit_row] == query_class:
                relation = "same-class"
            else:
                relation = "other"
            hits.append(RetrievalHit(
                row=int(hit_row),
                recipe_index=int(corpus.recipe_indices[hit_row]),
                distance=float(distance),
                relation=relation))
        title = dataset[int(corpus.recipe_indices[row])].title
        results.append(RecipeToImageResult(int(row), title, tuple(hits)))
    return results


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IngredientSearchResult:
    """Top-k images for a single-ingredient query (Table 4 column)."""

    ingredient: str
    class_id: int | None
    hits: tuple[RetrievalHit, ...]
    containment: tuple[bool, ...]  # hit recipe lists the ingredient

    @property
    def hit_rate(self) -> float:
        """Fraction of retrieved images whose recipe has the ingredient."""
        if not self.containment:
            return 0.0
        return sum(self.containment) / len(self.containment)


def ingredient_query_embedding(model: JointEmbeddingModel,
                               featurizer: RecipeFeaturizer,
                               ingredient: str,
                               corpus: EncodedCorpus) -> np.ndarray:
    """Embed the paper's synthetic ingredient query (§5.3).

    Ingredients part: the single ingredient word. Instructions part:
    the average instruction embedding over the reference corpus.
    """
    token = ingredient.replace(" ", "_")
    if token not in featurizer.ingredient_vocab:
        raise ValueError(f"{ingredient!r} is not in the ingredient "
                         "vocabulary")
    ids = featurizer.ingredient_vocab.encode_padded(
        [token], featurizer.max_ingredients)
    mean_sentence = np.zeros(corpus.sentence_vectors.shape[2])
    total = 0
    for row in range(len(corpus)):
        length = corpus.sentence_lengths[row]
        mean_sentence += corpus.sentence_vectors[row, :length].sum(axis=0)
        total += int(length)
    mean_sentence /= max(total, 1)
    sentences = np.zeros((featurizer.max_sentences,
                          corpus.sentence_vectors.shape[2]))
    sentences[0] = mean_sentence
    return _embed_single_recipe(model, ids, 1, sentences, 1)


def ingredient_to_image(model: JointEmbeddingModel,
                        featurizer: RecipeFeaturizer,
                        dataset: RecipeDataset, corpus: EncodedCorpus,
                        ingredient: str, k: int = 5,
                        class_id: int | None = None
                        ) -> IngredientSearchResult:
    """Retrieve images for an ingredient query (optionally one class)."""
    query = ingredient_query_embedding(model, featurizer, ingredient,
                                       corpus)
    index = _image_index(model, corpus)
    rows, distances = index.query(query, k=k, class_id=class_id)
    hits, containment = [], []
    for hit_row, distance in zip(rows, distances):
        recipe = dataset[int(corpus.recipe_indices[hit_row])]
        hits.append(RetrievalHit(
            row=int(hit_row),
            recipe_index=recipe.recipe_id,
            distance=float(distance),
            relation="other"))
        containment.append(ingredient in recipe.ingredients)
    return IngredientSearchResult(ingredient, class_id, tuple(hits),
                                  tuple(containment))


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RemovalComparison:
    """Table 5: retrieval before/after deleting one ingredient."""

    ingredient: str
    query_recipe_index: int
    with_rate: float      # top-k containment using the original recipe
    without_rate: float   # top-k containment after removal
    hits_with: tuple[RetrievalHit, ...]
    hits_without: tuple[RetrievalHit, ...]

    @property
    def removal_effect(self) -> float:
        """Drop in containment caused by the edit (positive = works)."""
        return self.with_rate - self.without_rate


def remove_ingredient_comparison(model: JointEmbeddingModel,
                                 featurizer: RecipeFeaturizer,
                                 dataset: RecipeDataset,
                                 corpus: EncodedCorpus, query_row: int,
                                 ingredient: str, k: int = 4
                                 ) -> RemovalComparison:
    """Run the paper's removing-ingredient experiment for one recipe."""
    recipe = dataset[int(corpus.recipe_indices[query_row])]
    edited = recipe.without_ingredient(ingredient)
    index = _image_index(model, corpus)

    def retrieve(target):
        ids, n_ing, vectors, n_sent = featurizer.encode_recipe(target)
        query = _embed_single_recipe(model, ids, n_ing, vectors, n_sent)
        rows, distances = index.query(query, k=k)
        hits, contains = [], []
        for hit_row, distance in zip(rows, distances):
            hit_recipe = dataset[int(corpus.recipe_indices[hit_row])]
            hits.append(RetrievalHit(
                row=int(hit_row), recipe_index=hit_recipe.recipe_id,
                distance=float(distance), relation="other"))
            contains.append(ingredient in hit_recipe.ingredients)
        rate = sum(contains) / len(contains) if contains else 0.0
        return tuple(hits), rate

    hits_with, with_rate = retrieve(recipe)
    hits_without, without_rate = retrieve(edited)
    return RemovalComparison(
        ingredient=ingredient,
        query_recipe_index=recipe.recipe_id,
        with_rate=with_rate,
        without_rate=without_rate,
        hits_with=hits_with,
        hits_without=hits_without)
