"""λ sensitivity sweep (Figure 4).

Trains the full AdaMine model at each λ value (the semantic-loss
weight of Eq. 1) on a fixed corpus and records the validation MedR,
reproducing the paper's finding: robust for λ ≲ 0.5, degrading beyond.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..core.scenarios import build_scenario
from ..core.trainer import Trainer, TrainingConfig
from ..data.encoding import EncodedCorpus, RecipeFeaturizer

__all__ = ["LambdaSweepPoint", "run_lambda_sweep"]

PAPER_LAMBDAS = (0.1, 0.3, 0.5, 0.7, 0.9)


@dataclass(frozen=True)
class LambdaSweepPoint:
    """One sweep point: λ and the resulting validation MedR."""

    lambda_sem: float
    medr: float


def run_lambda_sweep(featurizer: RecipeFeaturizer,
                     train_corpus: EncodedCorpus,
                     val_corpus: EncodedCorpus,
                     num_classes: int, image_size: int,
                     lambdas: tuple[float, ...] = PAPER_LAMBDAS,
                     base_config: TrainingConfig | None = None,
                     latent_dim: int = 32, backbone: str = "mlp",
                     seed: int = 0) -> list[LambdaSweepPoint]:
    """Train AdaMine once per λ; return (λ, MedR) points in λ order."""
    if not lambdas:
        raise ValueError("need at least one lambda value")
    points = []
    for lambda_sem in lambdas:
        model, config = build_scenario(
            "adamine", featurizer, num_classes, image_size,
            base_config=base_config, latent_dim=latent_dim,
            backbone=backbone, seed=seed)
        config = dataclasses.replace(config, lambda_sem=float(lambda_sem))
        trainer = Trainer(model, config)
        trainer.fit(train_corpus, val_corpus)
        points.append(LambdaSweepPoint(float(lambda_sem),
                                       trainer.evaluate_medr(val_corpus)))
    return points
