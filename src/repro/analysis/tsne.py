"""t-SNE (van der Maaten & Hinton, 2008), exact-gradient implementation.

Used to regenerate Figure 3: a 2-D map of test-set embeddings from five
head classes, comparing AdaMine_ins and AdaMine latent spaces. This is
the standard algorithm — perplexity-calibrated Gaussian affinities in
the input space, Student-t affinities in the map, gradient descent with
momentum and early exaggeration — written against numpy only.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TSNE"]


class TSNE:
    """Exact t-SNE for small point sets (hundreds of points).

    Parameters
    ----------
    perplexity:
        Effective number of neighbours per point.
    n_iter:
        Gradient descent iterations.
    learning_rate:
        Map update step size.
    seed:
        Initialization seed.
    """

    def __init__(self, perplexity: float = 20.0, n_iter: int = 300,
                 learning_rate: float = 100.0, seed: int = 0,
                 early_exaggeration: float = 4.0):
        if perplexity < 2:
            raise ValueError("perplexity must be >= 2")
        if n_iter < 10:
            raise ValueError("n_iter must be >= 10")
        self.perplexity = perplexity
        self.n_iter = n_iter
        self.learning_rate = learning_rate
        self.seed = seed
        self.early_exaggeration = early_exaggeration

    # ------------------------------------------------------------------
    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Embed ``x`` (n, d) into 2-D; returns (n, 2) coordinates."""
        x = np.asarray(x, dtype=np.float64)
        n = len(x)
        if n < 5:
            raise ValueError("need at least 5 points")
        p = self._joint_probabilities(x)
        rng = np.random.default_rng(self.seed)
        y = rng.normal(0.0, 1e-4, size=(n, 2))
        velocity = np.zeros_like(y)
        exaggeration_until = self.n_iter // 4

        for iteration in range(self.n_iter):
            factor = (self.early_exaggeration
                      if iteration < exaggeration_until else 1.0)
            grad = self._gradient(p * factor, y)
            momentum = 0.5 if iteration < exaggeration_until else 0.8
            velocity = momentum * velocity - self.learning_rate * grad
            y += velocity
            y -= y.mean(axis=0)  # keep the map centred
        return y

    # ------------------------------------------------------------------
    def _joint_probabilities(self, x: np.ndarray) -> np.ndarray:
        distances = self._squared_distances(x)
        n = len(x)
        conditional = np.zeros((n, n))
        target_entropy = np.log(self.perplexity)
        for i in range(n):
            conditional[i] = self._calibrated_row(distances[i], i,
                                                  target_entropy)
        joint = (conditional + conditional.T) / (2.0 * n)
        return np.maximum(joint, 1e-12)

    @staticmethod
    def _squared_distances(x: np.ndarray) -> np.ndarray:
        norms = (x ** 2).sum(axis=1)
        distances = norms[:, None] + norms[None, :] - 2.0 * x @ x.T
        np.fill_diagonal(distances, 0.0)
        return np.maximum(distances, 0.0)

    @staticmethod
    def _calibrated_row(row: np.ndarray, i: int, target_entropy: float,
                        tol: float = 1e-5, max_iter: int = 50) -> np.ndarray:
        """Binary-search the Gaussian precision matching the perplexity."""
        beta, beta_min, beta_max = 1.0, 0.0, np.inf
        mask = np.ones(len(row), dtype=bool)
        mask[i] = False
        for __ in range(max_iter):
            affinities = np.zeros(len(row))
            affinities[mask] = np.exp(-row[mask] * beta)
            total = affinities.sum()
            if total <= 0:
                probabilities = np.zeros(len(row))
                probabilities[mask] = 1.0 / mask.sum()
            else:
                probabilities = affinities / total
            positive = probabilities[probabilities > 0]
            entropy = -(positive * np.log(positive)).sum()
            error = entropy - target_entropy
            if abs(error) < tol:
                break
            if error > 0:  # entropy too high -> sharpen
                beta_min = beta
                beta = beta * 2 if beta_max == np.inf else (beta + beta_max) / 2
            else:
                beta_max = beta
                beta = (beta + beta_min) / 2
        return probabilities

    @staticmethod
    def _gradient(p: np.ndarray, y: np.ndarray) -> np.ndarray:
        distances = TSNE._squared_distances(y)
        student = 1.0 / (1.0 + distances)
        np.fill_diagonal(student, 0.0)
        q = np.maximum(student / student.sum(), 1e-12)
        coefficient = (p - q) * student
        grad = np.zeros_like(y)
        for dim in range(y.shape[1]):
            diffs = y[:, dim, None] - y[None, :, dim]
            grad[:, dim] = 4.0 * (coefficient * diffs).sum(axis=1)
        return grad
