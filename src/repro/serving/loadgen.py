"""Open-loop multi-tenant load generation for overload experiments.

Closed-loop clients (issue, wait, issue again) self-throttle under
overload: when the service slows down, so does the offered load, and
the interesting regime — demand exceeding capacity — never happens.
This generator is *open-loop*: each tenant issues requests on a fixed
schedule regardless of how many are still outstanding, which is what
real traffic does to a service and exactly the condition the
admission plane is built for.

Rate shapers (:class:`~repro.robustness.faults.OverloadStorm`,
:class:`~repro.robustness.faults.TenantFlood`) multiply a tenant's
offered rate as a function of time, so a 10× storm or a single-tenant
flood is a deterministic schedule, not a random burst.

The report separates *offered* load from *goodput* — requests that
came back useful (``ok``/``partial``/``degraded``) — and breaks sheds
down by reason and tenant, because under overload the whole point is
*which* requests were refused and *why*.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

__all__ = ["GOOD_STATUSES", "TenantLoad", "TenantReport", "LoadReport",
           "LoadGenerator", "HttpRequester"]

#: Statuses that count toward goodput: the caller got a usable answer
#: (degraded answers are still answers — that is the brownout bargain).
GOOD_STATUSES = ("ok", "partial", "degraded")


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's offered load: ``rate`` requests/second at shaper
    factor 1.0, issued at criticality ``criticality``."""

    name: str
    rate: float
    criticality: str = "user"

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("offered rate must be positive")


@dataclass
class TenantReport:
    """Per-tenant outcome accounting for one load run."""

    tenant: str
    offered: int = 0
    statuses: Counter = field(default_factory=Counter)
    shed_reasons: Counter = field(default_factory=Counter)
    latencies: list = field(default_factory=list)

    @property
    def good(self) -> int:
        return sum(self.statuses[s] for s in GOOD_STATUSES)

    @property
    def shed(self) -> int:
        return self.statuses["shed"]

    def goodput(self, elapsed_s: float) -> float:
        return self.good / elapsed_s if elapsed_s > 0 else 0.0

    def p95_ms(self) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = int(0.95 * (len(ordered) - 1) + 0.5)
        return ordered[rank] * 1000.0


@dataclass
class LoadReport:
    """Whole-run accounting: per-tenant reports plus wall time."""

    elapsed_s: float
    tenants: dict

    @property
    def offered(self) -> int:
        return sum(t.offered for t in self.tenants.values())

    @property
    def good(self) -> int:
        return sum(t.good for t in self.tenants.values())

    def goodput(self) -> float:
        return self.good / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def render(self) -> str:
        lines = [f"{'tenant':<12} {'offered':>7} {'good':>6} {'shed':>5} "
                 f"{'goodput/s':>9} {'p95 ms':>7}  shed reasons"]
        for name in sorted(self.tenants):
            report = self.tenants[name]
            reasons = ", ".join(
                f"{reason}={count}" for reason, count
                in sorted(report.shed_reasons.items())) or "-"
            lines.append(
                f"{name:<12} {report.offered:>7} {report.good:>6} "
                f"{report.shed:>5} {report.goodput(self.elapsed_s):>9.1f} "
                f"{report.p95_ms():>7.1f}  {reasons}")
        lines.append(
            f"{'TOTAL':<12} {self.offered:>7} {self.good:>6} "
            f"{sum(t.shed for t in self.tenants.values()):>5} "
            f"{self.goodput():>9.1f}")
        return "\n".join(lines)


@dataclass
class _WireOutcome:
    """Client-side view of one HTTP request's result.

    Shaped like :class:`~repro.serving.service.RequestOutcome` as far
    as the generator's accounting reads it (``status``,
    ``shed_reason``, ``latency``), so the same :class:`LoadGenerator`
    report works for in-process and over-the-wire runs.  ``latency``
    is *client-observed* wall time — it includes the wire, which is
    the point of driving the socket path.
    """

    status: str
    shed_reason: str | None
    latency: float
    http_status: int = 0


@dataclass
class _WireResponse:
    outcome: _WireOutcome


class HttpRequester:
    """``request_fn`` for :class:`LoadGenerator` that drives a URL.

    Each call opens a fresh connection (``Connection: close``) to the
    gateway, POSTs ``payload`` to the URL's path, and translates the
    JSON reply back into an outcome: the gateway embeds the service's
    ``RequestOutcome`` in every response body, success or failure, so
    per-tenant goodput/shed accounting is identical to in-process
    runs.  A connection refused or reset (the gateway shedding at
    accept, or mid-drain) counts as ``shed``/``at_accept`` — from the
    client's seat that *is* load shedding.

    ``api_keys`` maps tenant name → API key; tenants without a key
    fall back to the trusted ``X-Tenant`` header.
    """

    def __init__(self, url: str, *,
                 payload: Mapping | None = None,
                 api_keys: Mapping[str, str] | None = None,
                 deadline_ms: float | None = None,
                 timeout_s: float = 10.0):
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme: {parsed.scheme!r}")
        if not parsed.hostname:
            raise ValueError(f"no host in url: {url!r}")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._path = parsed.path or "/search"
        self._payload = dict(payload) if payload is not None else {
            "ingredients": ["chicken", "garlic"], "k": 5}
        self._api_keys = dict(api_keys or {})
        self._deadline_ms = deadline_ms
        self._timeout_s = timeout_s

    def __call__(self, tenant: str, criticality: str) -> _WireResponse:
        body = json.dumps(self._payload).encode("utf-8")
        headers = {"Content-Type": "application/json",
                   "Content-Length": str(len(body)),
                   "X-Criticality": criticality,
                   "Connection": "close"}
        key = self._api_keys.get(tenant)
        if key is not None:
            headers["X-Api-Key"] = key
        else:
            headers["X-Tenant"] = tenant
        if self._deadline_ms is not None:
            headers["X-Deadline-Ms"] = f"{self._deadline_ms:g}"
        started = time.monotonic()
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout_s)
        try:
            conn.request("POST", self._path, body=body, headers=headers)
            reply = conn.getresponse()
            raw = reply.read()
            http_status = reply.status
        except OSError:
            # Refused/reset before a reply: the wire's spelling of
            # "go away".  Shed at the front door, not an error.
            return _WireResponse(_WireOutcome(
                "shed", "at_accept", time.monotonic() - started))
        finally:
            conn.close()
        latency = time.monotonic() - started
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            parsed = {}
        outcome = parsed.get("outcome") or {}
        status = outcome.get("status")
        if status is None:
            # Canned replies (shed-at-accept 503, drain 503, 4xx)
            # carry no service outcome; map from the HTTP code.
            if http_status in (429, 503):
                status, reason = "shed", parsed.get(
                    "reason", parsed.get("error", "overloaded"))
            elif 200 <= http_status < 300:
                status, reason = "ok", None
            else:
                status, reason = "error", None
            return _WireResponse(_WireOutcome(
                status, reason, latency, http_status))
        return _WireResponse(_WireOutcome(
            str(status), outcome.get("shed_reason"), latency,
            http_status))


class LoadGenerator:
    """Drive ``request_fn`` with open-loop multi-tenant traffic.

    ``request_fn(tenant, criticality)`` issues one request and returns
    the service response (anything with an ``outcome`` carrying
    ``status``, ``shed_reason`` and ``latency``).  Each arrival runs
    on its own thread so a stalled request never delays the schedule —
    that is what makes the loop open.  Exceptions from ``request_fn``
    are counted under status ``error`` rather than killing the run.
    """

    def __init__(self, request_fn: Callable,
                 loads: Iterable[TenantLoad], *,
                 duration_s: float = 1.0,
                 shapers: Sequence[Callable] = (),
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep):
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        self._request_fn = request_fn
        self._loads = list(loads)
        if not self._loads:
            raise ValueError("at least one tenant load is required")
        self._duration_s = float(duration_s)
        self._shapers = list(shapers)
        self._clock = clock
        self._sleep = sleep

    def _factor(self, t: float, tenant: str) -> float:
        factor = 1.0
        for shaper in self._shapers:
            factor *= shaper(t, tenant)
        return factor

    def run(self) -> LoadReport:
        lock = threading.Lock()
        reports = {load.name: TenantReport(load.name)
                   for load in self._loads}
        request_threads: list[threading.Thread] = []
        start = self._clock()

        def issue(load: TenantLoad) -> None:
            try:
                response = self._request_fn(load.name, load.criticality)
                outcome = response.outcome
                status = outcome.status
                shed_reason = outcome.shed_reason
                latency = outcome.latency
            except Exception as exc:  # count it, keep the run alive
                status, shed_reason, latency = "error", None, 0.0
                _ = exc
            with lock:
                report = reports[load.name]
                report.statuses[status] += 1
                if status in GOOD_STATUSES:
                    report.latencies.append(latency)
                if status == "shed":
                    report.shed_reasons[shed_reason or "unknown"] += 1

        def schedule(load: TenantLoad) -> None:
            next_t = 0.0
            while next_t < self._duration_s:
                delay = (start + next_t) - self._clock()
                if delay > 0:
                    self._sleep(delay)
                worker = threading.Thread(target=issue, args=(load,),
                                          daemon=True)
                with lock:
                    reports[load.name].offered += 1
                    request_threads.append(worker)
                worker.start()
                # The *next* arrival's spacing uses the rate in force
                # now — a storm window compresses spacing inside it.
                next_t += 1.0 / (load.rate * self._factor(next_t,
                                                          load.name))

        schedulers = [threading.Thread(target=schedule, args=(load,),
                                       daemon=True)
                      for load in self._loads]
        for thread in schedulers:
            thread.start()
        for thread in schedulers:
            thread.join()
        with lock:
            pending = list(request_threads)
        for thread in pending:
            thread.join()
        return LoadReport(elapsed_s=self._clock() - start,
                          tenants=reports)
