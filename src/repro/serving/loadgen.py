"""Open-loop multi-tenant load generation for overload experiments.

Closed-loop clients (issue, wait, issue again) self-throttle under
overload: when the service slows down, so does the offered load, and
the interesting regime — demand exceeding capacity — never happens.
This generator is *open-loop*: each tenant issues requests on a fixed
schedule regardless of how many are still outstanding, which is what
real traffic does to a service and exactly the condition the
admission plane is built for.

Rate shapers (:class:`~repro.robustness.faults.OverloadStorm`,
:class:`~repro.robustness.faults.TenantFlood`) multiply a tenant's
offered rate as a function of time, so a 10× storm or a single-tenant
flood is a deterministic schedule, not a random burst.

The report separates *offered* load from *goodput* — requests that
came back useful (``ok``/``partial``/``degraded``) — and breaks sheds
down by reason and tenant, because under overload the whole point is
*which* requests were refused and *why*.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = ["GOOD_STATUSES", "TenantLoad", "TenantReport", "LoadReport",
           "LoadGenerator"]

#: Statuses that count toward goodput: the caller got a usable answer
#: (degraded answers are still answers — that is the brownout bargain).
GOOD_STATUSES = ("ok", "partial", "degraded")


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's offered load: ``rate`` requests/second at shaper
    factor 1.0, issued at criticality ``criticality``."""

    name: str
    rate: float
    criticality: str = "user"

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("offered rate must be positive")


@dataclass
class TenantReport:
    """Per-tenant outcome accounting for one load run."""

    tenant: str
    offered: int = 0
    statuses: Counter = field(default_factory=Counter)
    shed_reasons: Counter = field(default_factory=Counter)
    latencies: list = field(default_factory=list)

    @property
    def good(self) -> int:
        return sum(self.statuses[s] for s in GOOD_STATUSES)

    @property
    def shed(self) -> int:
        return self.statuses["shed"]

    def goodput(self, elapsed_s: float) -> float:
        return self.good / elapsed_s if elapsed_s > 0 else 0.0

    def p95_ms(self) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = int(0.95 * (len(ordered) - 1) + 0.5)
        return ordered[rank] * 1000.0


@dataclass
class LoadReport:
    """Whole-run accounting: per-tenant reports plus wall time."""

    elapsed_s: float
    tenants: dict

    @property
    def offered(self) -> int:
        return sum(t.offered for t in self.tenants.values())

    @property
    def good(self) -> int:
        return sum(t.good for t in self.tenants.values())

    def goodput(self) -> float:
        return self.good / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def render(self) -> str:
        lines = [f"{'tenant':<12} {'offered':>7} {'good':>6} {'shed':>5} "
                 f"{'goodput/s':>9} {'p95 ms':>7}  shed reasons"]
        for name in sorted(self.tenants):
            report = self.tenants[name]
            reasons = ", ".join(
                f"{reason}={count}" for reason, count
                in sorted(report.shed_reasons.items())) or "-"
            lines.append(
                f"{name:<12} {report.offered:>7} {report.good:>6} "
                f"{report.shed:>5} {report.goodput(self.elapsed_s):>9.1f} "
                f"{report.p95_ms():>7.1f}  {reasons}")
        lines.append(
            f"{'TOTAL':<12} {self.offered:>7} {self.good:>6} "
            f"{sum(t.shed for t in self.tenants.values()):>5} "
            f"{self.goodput():>9.1f}")
        return "\n".join(lines)


class LoadGenerator:
    """Drive ``request_fn`` with open-loop multi-tenant traffic.

    ``request_fn(tenant, criticality)`` issues one request and returns
    the service response (anything with an ``outcome`` carrying
    ``status``, ``shed_reason`` and ``latency``).  Each arrival runs
    on its own thread so a stalled request never delays the schedule —
    that is what makes the loop open.  Exceptions from ``request_fn``
    are counted under status ``error`` rather than killing the run.
    """

    def __init__(self, request_fn: Callable,
                 loads: Iterable[TenantLoad], *,
                 duration_s: float = 1.0,
                 shapers: Sequence[Callable] = (),
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep):
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        self._request_fn = request_fn
        self._loads = list(loads)
        if not self._loads:
            raise ValueError("at least one tenant load is required")
        self._duration_s = float(duration_s)
        self._shapers = list(shapers)
        self._clock = clock
        self._sleep = sleep

    def _factor(self, t: float, tenant: str) -> float:
        factor = 1.0
        for shaper in self._shapers:
            factor *= shaper(t, tenant)
        return factor

    def run(self) -> LoadReport:
        lock = threading.Lock()
        reports = {load.name: TenantReport(load.name)
                   for load in self._loads}
        request_threads: list[threading.Thread] = []
        start = self._clock()

        def issue(load: TenantLoad) -> None:
            try:
                response = self._request_fn(load.name, load.criticality)
                outcome = response.outcome
                status = outcome.status
                shed_reason = outcome.shed_reason
                latency = outcome.latency
            except Exception as exc:  # count it, keep the run alive
                status, shed_reason, latency = "error", None, 0.0
                _ = exc
            with lock:
                report = reports[load.name]
                report.statuses[status] += 1
                if status in GOOD_STATUSES:
                    report.latencies.append(latency)
                if status == "shed":
                    report.shed_reasons[shed_reason or "unknown"] += 1

        def schedule(load: TenantLoad) -> None:
            next_t = 0.0
            while next_t < self._duration_s:
                delay = (start + next_t) - self._clock()
                if delay > 0:
                    self._sleep(delay)
                worker = threading.Thread(target=issue, args=(load,),
                                          daemon=True)
                with lock:
                    reports[load.name].offered += 1
                    request_threads.append(worker)
                worker.start()
                # The *next* arrival's spacing uses the rate in force
                # now — a storm window compresses spacing inside it.
                next_t += 1.0 / (load.rate * self._factor(next_t,
                                                          load.name))

        schedulers = [threading.Thread(target=schedule, args=(load,),
                                       daemon=True)
                      for load in self._loads]
        for thread in schedulers:
            thread.start()
        for thread in schedulers:
            thread.join()
        with lock:
            pending = list(request_threads)
        for thread in pending:
            thread.join()
        return LoadReport(elapsed_s=self._clock() - start,
                          tenants=reports)
