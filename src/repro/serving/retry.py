"""Retry policy and per-dependency circuit breakers.

Transient faults (a NaN embedding, a flaky index read) are retried
with exponential backoff plus jitter; *persistent* faults trip a
circuit breaker so a broken dependency stops eating the request
budget of every caller.

The breaker is the classic three-state machine:

* **closed** — requests flow; consecutive failures are counted.
* **open** — tripped after ``failure_threshold`` consecutive
  failures; all calls are refused until ``reset_after`` seconds pass.
* **half-open** — after the cool-off, probe traffic is let through;
  ``half_open_successes`` consecutive successes close the breaker,
  any failure re-opens it (and restarts the cool-off).

Both the clock and the jitter RNG are injected by the caller, so
every transition is deterministic under test.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["RetryPolicy", "CircuitBreaker", "CircuitState"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with multiplicative jitter.

    Delay before retry ``attempt`` (0-based) is
    ``min(base_delay * factor**attempt, max_delay)`` scaled by a
    jitter factor uniform in ``[1, 1 + jitter)``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5

    def delay(self, attempt: int, rng=None) -> float:
        raw = min(self.base_delay * self.factor ** attempt, self.max_delay)
        if self.jitter and rng is not None:
            raw *= 1.0 + self.jitter * rng.random()
        return raw


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Thread-safe closed/open/half-open breaker around one dependency.

    The open→half-open transition is driven lazily off the injected
    clock on every state read, so no background timer is needed.
    State changes are appended to :attr:`transitions`, and
    ``on_transition(name, new_state)`` — if given — fires on each one,
    which is how the serving layer keeps its breaker-state gauges and
    transition counters current.  The callback runs with the breaker
    lock held, so it must not call back into the breaker.
    """

    def __init__(self, name: str, failure_threshold: int = 3,
                 reset_after: float = 5.0, half_open_successes: int = 2,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Callable[[str, "CircuitState"],
                                         None] | None = None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_successes < 1:
            raise ValueError("half_open_successes must be >= 1")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_after = float(reset_after)
        self.half_open_successes = int(half_open_successes)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at = 0.0
        self.transitions: list[CircuitState] = []

    # -- state ---------------------------------------------------------
    @property
    def state(self) -> CircuitState:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now? (Open circuits refuse.)"""
        with self._lock:
            self._maybe_half_open()
            return self._state is not CircuitState.OPEN

    # -- outcome reporting ---------------------------------------------
    def record_success(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state is CircuitState.HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_successes:
                    self._set(CircuitState.CLOSED)
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state is CircuitState.HALF_OPEN:
                self._trip()
            else:
                self._consecutive_failures += 1
                if (self._state is CircuitState.CLOSED
                        and self._consecutive_failures
                        >= self.failure_threshold):
                    self._trip()

    def reset(self) -> None:
        """Force-close, e.g. after the dependency was replaced by a
        successful index hot-swap."""
        with self._lock:
            self._set(CircuitState.CLOSED)
            self._consecutive_failures = 0
            self._probe_successes = 0

    # -- internals (lock held) -----------------------------------------
    def _maybe_half_open(self) -> None:
        if (self._state is CircuitState.OPEN
                and self._clock() - self._opened_at >= self.reset_after):
            self._set(CircuitState.HALF_OPEN)
            self._probe_successes = 0

    def _trip(self) -> None:
        self._set(CircuitState.OPEN)
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probe_successes = 0

    def _set(self, state: CircuitState) -> None:
        if state is not self._state:
            self._state = state
            self.transitions.append(state)
            if self._on_transition is not None:
                self._on_transition(self.name, state)
