"""Overload control: adaptive admission, fair queuing, brownout.

The static ``max_inflight`` counter survives a traffic spike by
shedding blindly: it cannot tell a paying user from a background
probe, lets one noisy tenant crowd everyone else out, wastes embed and
index work on requests whose deadline already died while they waited,
and keeps the same concurrency whether the backend is healthy or
drowning.  This module is the missing control plane, composed from
four pieces:

* :class:`TokenBucket` — per-tenant rate limiting (sustained rate plus
  burst) so a flooding tenant is clipped at the front door before it
  can queue at all;
* :class:`FairQueue` — a weighted deficit-round-robin queue with
  bounded per-tenant depth, strict criticality tiers (user traffic
  always drains before background probe / anti-entropy traffic), and
  in-queue deadline expiry: a request whose budget died while queued
  is dropped at dequeue, never handed a slot;
* :class:`AdaptiveLimiter` — an AIMD concurrency limit steered by
  observed request p95 against the latency SLO target
  (:data:`~repro.obs.slo` exports the default), clamped to a
  floor/ceiling so it can neither collapse nor run away;
* :class:`BrownoutController` — a declarative degradation ladder
  (disable hedged backup lanes → shrink per-request ``k`` → route to
  the model-free :class:`~repro.serving.degraded.DegradedRanker` →
  shed background tenants) stepped one level at a time by sustained
  pressure, released in reverse order when the storm passes, with
  every transition emitted as an event and a ``brownout_level`` gauge.

:class:`AdmissionController` composes them behind the two calls the
service makes: :meth:`~AdmissionController.acquire` (rate-limit check,
enqueue, wait for a slot or expire) and
:meth:`~AdmissionController.release` (free the slot, feed the limiter,
re-evaluate brownout pressure).  All waiting is a poll loop on the
injected ``clock``/``sleep`` pair, so chaos tests run on a fake clock
with zero real sleeping, exactly like the rest of the serving stack.

Pressure is deliberately *demand over limit* (inflight + queued over
the current concurrency limit), not raw latency: when latency rises
the limiter shrinks the limit, which raises pressure, which engages
the ladder — one causal chain instead of two competing signals, and it
releases promptly once demand drains even while the latency window is
still full of storm-era samples.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..obs.slo import DEFAULT_STAGE_P99_S
from .deadline import Deadline

__all__ = ["TokenBucket", "FairQueue", "AdaptiveLimiter",
           "BrownoutController", "AdmissionController",
           "TenantPolicy", "AdmissionConfig", "BrownoutConfig",
           "AdmissionDecision", "CRITICALITIES", "SHED_REASONS",
           "BROWNOUT_LADDER"]

#: Criticality tiers, most important first; the fair queue drains tier
#: 0 completely before touching tier 1.
CRITICALITIES = ("user", "background")

#: Every shed outcome carries exactly one of these reasons.
SHED_REASONS = ("rate_limit", "queue_full", "expired", "brownout",
                "inflight_limit")

#: The default degradation ladder, cheapest mechanism first.  Level 0
#: ("full") is implicit; engaging steps right, releasing steps left.
BROWNOUT_LADDER = ("hedge_off", "shrink_k", "degraded",
                   "shed_background")


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TenantPolicy:
    """Admission policy for one tenant (or the default for unknowns)."""

    name: str
    weight: float = 1.0            # fair-queue share (relative)
    rate: float | None = None      # sustained requests/sec; None = no cap
    burst: float = 10.0            # token-bucket depth
    criticality: str = "user"      # default tier for this tenant

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("tenant rate must be positive when set")
        if self.burst <= 0:
            raise ValueError("tenant burst must be positive")
        if self.criticality not in CRITICALITIES:
            raise ValueError(f"unknown criticality "
                             f"{self.criticality!r}; expected one of "
                             f"{CRITICALITIES}")


@dataclass(frozen=True)
class BrownoutConfig:
    """Degradation-ladder tuning.

    Pressure is demand/limit from the admission controller; 1.0 means
    running exactly at the concurrency limit with an empty queue.
    ``engage_pressure`` must exceed ``release_pressure`` to give the
    ladder hysteresis.  Dwell times gate *each* step so one pressure
    blip cannot run the whole ladder.
    """

    engage_pressure: float = 1.5
    release_pressure: float = 0.8
    dwell_s: float = 0.25          # sustained-hot time per engage step
    release_dwell_s: float = 0.5   # sustained-cool time per release step
    k_cap: int = 3                 # per-request k under "shrink_k"
    #: Burn rate at or above which the ladder engages regardless of
    #: pressure (couples to the SLO page factor); ``None`` disables.
    engage_burn: float | None = 14.4
    ladder: tuple[str, ...] = BROWNOUT_LADDER

    def __post_init__(self):
        if not self.ladder:
            raise ValueError("ladder must name at least one mechanism")
        if self.engage_pressure <= self.release_pressure:
            raise ValueError("engage_pressure must exceed "
                             "release_pressure (hysteresis)")
        if self.k_cap < 1:
            raise ValueError("k_cap must be >= 1")


@dataclass(frozen=True)
class AdmissionConfig:
    """Everything the adaptive admission path needs to know."""

    tenants: tuple[TenantPolicy, ...] = ()
    #: Policy applied to tenants not named in ``tenants`` (each unknown
    #: tenant still gets its *own* bucket and queue lane).
    default_policy: TenantPolicy = field(
        default_factory=lambda: TenantPolicy("default"))
    max_queue_depth: int = 64      # per tenant
    poll_interval_s: float = 0.002  # slot-wait poll period
    # -- adaptive concurrency (AIMD) --------------------------------
    initial_limit: int = 8
    min_limit: int = 2
    max_limit: int = 64
    #: Request-latency p95 target steering the limiter; defaults to
    #: the same figure as the default serving latency SLO.
    target_p95_s: float = DEFAULT_STAGE_P99_S
    decrease_factor: float = 0.7
    increase_step: float = 1.0
    evaluate_every: int = 16       # completions between AIMD steps
    latency_window: int = 128      # completions kept for the p95
    brownout: BrownoutConfig = field(default_factory=BrownoutConfig)

    def __post_init__(self):
        if not 1 <= self.min_limit <= self.initial_limit <= self.max_limit:
            raise ValueError("need 1 <= min_limit <= initial_limit "
                             "<= max_limit")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if not 0.0 < self.decrease_factor < 1.0:
            raise ValueError("decrease_factor must be in (0, 1)")

    def policy(self, tenant: str) -> TenantPolicy:
        for policy in self.tenants:
            if policy.name == tenant:
                return policy
        if tenant == self.default_policy.name:
            return self.default_policy
        # Unknown tenants share the default *policy* but not its
        # bucket/queue lane — isolation by name, not by config entry.
        return TenantPolicy(
            tenant, weight=self.default_policy.weight,
            rate=self.default_policy.rate,
            burst=self.default_policy.burst,
            criticality=self.default_policy.criticality)


@dataclass(frozen=True)
class AdmissionDecision:
    """What :meth:`AdmissionController.acquire` resolved to."""

    admitted: bool
    tenant: str
    criticality: str
    reason: str | None = None      # one of SHED_REASONS when shed
    detail: str | None = None      # human-readable shed description
    queue_wait_s: float = 0.0


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------
class TokenBucket:
    """Classic lazy-refill token bucket on an injectable clock."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_take(self, cost: float = 1.0) -> bool:
        with self._lock:
            self._refill_locked()
            if self._tokens >= cost:
                self._tokens -= cost
                return True
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens


# ----------------------------------------------------------------------
# Weighted deficit-round-robin fair queue
# ----------------------------------------------------------------------
class FairQueue:
    """Weighted DRR across tenants, strict priority across tiers.

    Classic deficit round robin with unit cost: each tenant lane keeps
    a deficit counter topped up by ``quantum * weight`` once per
    rotation; a lane serves while its deficit covers the cost, so over
    any backlogged window tenants drain in proportion to their weights
    with the textbook bounded-deficit guarantee (a lane's lag never
    exceeds one quantum share plus one cost unit).  Lanes live per
    ``(tier, tenant)``; lower tiers drain completely first.

    ``drop_if(item)`` (when given) is consulted at dequeue for every
    head-of-lane item and returns a drop reason or ``None``; dropped
    items go to ``on_drop(tenant, item, reason)`` and never count
    against the lane's deficit — this is the in-queue deadline-expiry
    gate.  The structure is not thread-safe; the admission controller
    serializes access under its own lock.
    """

    def __init__(self, weights: dict[str, float] | None = None, *,
                 default_weight: float = 1.0, max_depth: int = 64,
                 quantum: float = 1.0,
                 drop_if: Callable[[object], str | None] | None = None,
                 on_drop: Callable[[str, object, str], None] | None = None):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if quantum <= 0 or default_weight <= 0:
            raise ValueError("quantum and default_weight must be "
                             "positive")
        self._weights = dict(weights or {})
        self._default_weight = float(default_weight)
        self._max_depth = int(max_depth)
        self._quantum = float(quantum)
        self._drop_if = drop_if
        self._on_drop = on_drop
        self._lanes: dict[tuple[int, str], deque] = {}
        self._deficit: dict[tuple[int, str], float] = {}
        self._rotation: dict[int, deque[str]] = {}
        self._depth_by_tenant: dict[str, int] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, self._default_weight)

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._weights[tenant] = float(weight)

    def depth(self, tenant: str | None = None) -> int:
        if tenant is None:
            return self._size
        return self._depth_by_tenant.get(tenant, 0)

    def deficit(self, tenant: str, tier: int = 0) -> float:
        return self._deficit.get((tier, tenant), 0.0)

    def push(self, tenant: str, item, *, tier: int = 0) -> bool:
        """Enqueue; ``False`` when the tenant's lane is full."""
        if self._depth_by_tenant.get(tenant, 0) >= self._max_depth:
            return False
        key = (int(tier), tenant)
        lane = self._lanes.get(key)
        if lane is None:
            lane = self._lanes[key] = deque()
            self._deficit.setdefault(key, 0.0)
            self._rotation.setdefault(int(tier), deque()).append(tenant)
        elif not lane and tenant not in self._rotation[int(tier)]:
            self._rotation[int(tier)].append(tenant)
        lane.append(item)
        self._depth_by_tenant[tenant] = \
            self._depth_by_tenant.get(tenant, 0) + 1
        self._size += 1
        return True

    def pop(self):
        """Next ``(tenant, item)`` per DRR order, or ``None``."""
        for tier in sorted(self._rotation):
            served = self._pop_tier(tier)
            if served is not None:
                return served
        return None

    def _drop_expired_head(self, tier: int, tenant: str,
                           lane: deque) -> None:
        """Shed dead items off the lane head before judging its turn."""
        if self._drop_if is None:
            return
        while lane:
            reason = self._drop_if(lane[0])
            if reason is None:
                return
            item = lane.popleft()
            self._note_removed(tenant)
            if self._on_drop is not None:
                self._on_drop(tenant, item, reason)

    def _note_removed(self, tenant: str) -> None:
        self._size -= 1
        remaining = self._depth_by_tenant.get(tenant, 1) - 1
        if remaining <= 0:
            self._depth_by_tenant.pop(tenant, None)
        else:
            self._depth_by_tenant[tenant] = remaining

    def _pop_tier(self, tier: int):
        rotation = self._rotation[tier]
        while rotation:
            tenant = rotation[0]
            key = (tier, tenant)
            lane = self._lanes[key]
            self._drop_expired_head(tier, tenant, lane)
            if not lane:
                # Empty lane leaves the rotation and forfeits its
                # saved deficit (standard DRR: no hoarding while idle).
                rotation.popleft()
                self._deficit[key] = 0.0
                continue
            if self._deficit[key] >= 1.0:
                self._deficit[key] -= 1.0
                item = lane.popleft()
                self._note_removed(tenant)
                if not lane:
                    rotation.popleft()
                    self._deficit[key] = 0.0
                return tenant, item
            # Not this lane's turn yet: top up and rotate.  The loop
            # terminates because every full rotation raises some
            # backlogged lane's deficit by quantum * weight > 0.
            self._deficit[key] += self._quantum * self.weight(tenant)
            rotation.rotate(-1)
        return None


# ----------------------------------------------------------------------
# AIMD concurrency limiter
# ----------------------------------------------------------------------
class AdaptiveLimiter:
    """AIMD on observed p95 latency against the SLO target.

    Every completion reports its latency; every ``evaluate_every``
    completions the recent p95 is compared with ``target_p95_s`` —
    above target the limit multiplies down by ``decrease_factor``,
    at-or-below it creeps up by ``increase_step`` — clamped to
    ``[min_limit, max_limit]``.  Timeouts report their full deadline
    as latency, so a backend that stops answering still drives the
    limit down.  Not thread-safe on its own; the admission controller
    calls it under its lock.
    """

    def __init__(self, config: AdmissionConfig):
        self._config = config
        self._limit = float(config.initial_limit)
        self._latencies: deque[float] = deque(
            maxlen=config.latency_window)
        self._since_eval = 0
        self.last_p95: float | None = None

    @property
    def limit(self) -> int:
        return int(self._limit)

    def on_done(self, latency_s: float) -> bool:
        """Record one completion; ``True`` when the limit changed."""
        self._latencies.append(max(float(latency_s), 0.0))
        self._since_eval += 1
        if self._since_eval < self._config.evaluate_every:
            return False
        self._since_eval = 0
        ordered = sorted(self._latencies)
        rank = max(0, min(len(ordered) - 1,
                          int(0.95 * (len(ordered) - 1) + 0.5)))
        self.last_p95 = ordered[rank]
        before = self.limit
        if self.last_p95 > self._config.target_p95_s:
            self._limit = max(float(self._config.min_limit),
                              self._limit * self._config.decrease_factor)
        else:
            self._limit = min(float(self._config.max_limit),
                              self._limit + self._config.increase_step)
        return self.limit != before


# ----------------------------------------------------------------------
# Brownout ladder
# ----------------------------------------------------------------------
class BrownoutController:
    """Step a declarative degradation ladder under sustained pressure.

    Level 0 is full quality; level ``i`` activates the first ``i``
    mechanisms of the ladder.  Engaging requires pressure at or above
    ``engage_pressure`` (or burn rate at/above ``engage_burn``) held
    for ``dwell_s``; releasing requires pressure at or below
    ``release_pressure`` held for ``release_dwell_s``.  One step per
    dwell, both directions, so transitions always appear in ladder
    order.  Thread-safe; every transition emits a ``brownout`` event
    and bumps ``brownout_level`` / ``brownout_transitions_total``.
    """

    def __init__(self, config: BrownoutConfig, *,
                 clock: Callable[[], float] = time.monotonic,
                 registry=None, events=None):
        self.config = config
        self._clock = clock
        self._events = events
        self._lock = threading.Lock()
        self._level = 0
        self._hot_since: float | None = None
        self._cool_since: float | None = None
        self.transitions: list[tuple[str, str]] = []  # (direction, step)
        self._m_level = self._m_transitions = None
        if registry is not None:
            self._m_level = registry.gauge(
                "brownout_level",
                "active degradation-ladder level (0 = full quality)")
            self._m_level.set(0)
            self._m_transitions = registry.counter(
                "brownout_transitions_total",
                "ladder steps by direction and mechanism",
                labels=("direction", "step"))

    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    @property
    def level_name(self) -> str:
        with self._lock:
            return ("full" if self._level == 0
                    else self.config.ladder[self._level - 1])

    def active(self, mechanism: str) -> bool:
        """Is the named ladder mechanism currently engaged?"""
        try:
            position = self.config.ladder.index(mechanism) + 1
        except ValueError:
            return False
        with self._lock:
            return self._level >= position

    def observe(self, pressure: float, burn: float = 0.0) -> int:
        """Feed one pressure/burn sample; returns the (new) level."""
        config = self.config
        hot = pressure >= config.engage_pressure or (
            config.engage_burn is not None
            and burn >= config.engage_burn)
        cool = pressure <= config.release_pressure and not hot
        now = self._clock()
        step = None
        with self._lock:
            if hot:
                self._cool_since = None
                if self._hot_since is None:
                    self._hot_since = now
                elif (now - self._hot_since >= config.dwell_s
                        and self._level < len(config.ladder)):
                    self._level += 1
                    self._hot_since = now  # re-arm dwell per step
                    step = ("engage", config.ladder[self._level - 1])
            elif cool:
                self._hot_since = None
                if self._cool_since is None:
                    self._cool_since = now
                elif (now - self._cool_since >= config.release_dwell_s
                        and self._level > 0):
                    step = ("release", config.ladder[self._level - 1])
                    self._level -= 1
                    self._cool_since = now
            else:
                # Between thresholds: hold level, reset both dwells.
                self._hot_since = None
                self._cool_since = None
            level = self._level
            if step is not None:
                self.transitions.append(step)
        if step is not None:
            direction, mechanism = step
            if self._m_level is not None:
                self._m_level.set(level)
                self._m_transitions.labels(direction=direction,
                                           step=mechanism).inc()
            if self._events is not None:
                self._events.emit(
                    "brownout", direction=direction, step=mechanism,
                    level=level, pressure=pressure, burn=burn,
                    level_name=("full" if level == 0
                                else self.config.ladder[level - 1]),
                    level_word="warn" if direction == "engage"
                    else "info")
        return level


# ----------------------------------------------------------------------
# The controller the service talks to
# ----------------------------------------------------------------------
_WAITING, _GRANTED, _EXPIRED, _ABANDONED = range(4)


class _Ticket:
    """One request's place in line; state guarded by the controller."""

    __slots__ = ("tenant", "tier", "deadline", "state")

    def __init__(self, tenant: str, tier: int, deadline: Deadline):
        self.tenant = tenant
        self.tier = tier
        self.deadline = deadline
        self.state = _WAITING


class AdmissionController:
    """Token buckets → fair queue → adaptive concurrency, composed.

    ``acquire`` returns an :class:`AdmissionDecision`; an admitted
    request *must* be paired with exactly one ``release`` carrying its
    end-to-end latency.  ``burn_fn`` (when given) supplies the current
    worst SLO burn rate so a quality/latency budget burning hot can
    engage the brownout ladder even before queue pressure builds.
    """

    def __init__(self, config: AdmissionConfig | None = None, *,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 registry=None, events=None, tracer=None,
                 burn_fn: Callable[[], float] | None = None):
        self.config = config or AdmissionConfig()
        self._clock = clock
        self._sleep = sleep
        self._tracer = tracer
        self._burn_fn = burn_fn
        self._lock = threading.Lock()
        self._inflight = 0
        self._buckets: dict[str, TokenBucket] = {}
        self.limiter = AdaptiveLimiter(self.config)
        self.brownout = BrownoutController(
            self.config.brownout, clock=clock, registry=registry,
            events=events)
        self._queue = FairQueue(
            max_depth=self.config.max_queue_depth,
            drop_if=self._dead_in_queue, on_drop=self._on_queue_drop)
        for policy in self.config.tenants:
            self._queue.set_weight(policy.name, policy.weight)
        self._m_limit = self._m_inflight = None
        self._m_queued = self._m_queue_wait = None
        if registry is not None:
            self._m_limit = registry.gauge(
                "admission_limit",
                "current adaptive concurrency limit")
            self._m_limit.set(self.limiter.limit)
            self._m_inflight = registry.gauge(
                "admission_inflight", "requests holding an admission "
                "slot")
            self._m_inflight.set(0)
            self._m_queued = registry.gauge(
                "admission_queued", "requests waiting in the fair "
                "queue")
            self._m_queued.set(0)
            self._m_queue_wait = registry.histogram(
                "admission_queue_wait_seconds",
                "time admitted requests spent queued",
                buckets=(0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                         0.5, 1.0, 2.5))

    # -- queue callbacks (run under self._lock via pop) --------------
    @staticmethod
    def _dead_in_queue(ticket: _Ticket) -> str | None:
        if ticket.state == _ABANDONED:
            return "abandoned"
        if ticket.deadline.expired:
            return "expired"
        return None

    @staticmethod
    def _on_queue_drop(tenant: str, ticket: _Ticket,
                       reason: str) -> None:
        if reason == "expired":
            ticket.state = _EXPIRED
        # Abandoned tickets already accounted themselves at abandon
        # time; flipping state again would double-count.

    # -- introspection ----------------------------------------------
    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def limit(self) -> int:
        return self.limiter.limit

    def queue_depth(self, tenant: str | None = None) -> int:
        with self._lock:
            return self._queue.depth(tenant)

    def retained_bytes(self) -> int:
        """Estimated bytes held by queued admission tickets (depth ×
        per-ticket footprint) for the memory ledger."""
        with self._lock:
            queued = len(self._queue)
        # A _Ticket is slots + a Deadline + queue node bookkeeping.
        return queued * 256

    def snapshot(self) -> dict:
        with self._lock:
            queued = len(self._queue)
            inflight = self._inflight
            limit = self.limiter.limit
            p95 = self.limiter.last_p95
        return {
            "mode": "adaptive",
            "limit": limit,
            "inflight": inflight,
            "queued": queued,
            "p95_ms": None if p95 is None else p95 * 1000.0,
            "target_p95_ms": self.config.target_p95_s * 1000.0,
            "brownout_level": self.brownout.level,
            "brownout": self.brownout.level_name,
        }

    # -- the two calls the service makes -----------------------------
    def acquire(self, tenant: str, criticality: str | None,
                deadline: Deadline) -> AdmissionDecision:
        policy = self.config.policy(tenant)
        criticality = criticality or policy.criticality
        if criticality not in CRITICALITIES:
            raise ValueError(f"unknown criticality {criticality!r}; "
                             f"expected one of {CRITICALITIES}")
        tier = CRITICALITIES.index(criticality)
        if tier > 0 and self.brownout.active("shed_background"):
            return AdmissionDecision(
                False, tenant, criticality, reason="brownout",
                detail="brownout: background traffic shed at ladder "
                       f"level {self.brownout.level}")
        if policy.rate is not None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets.setdefault(
                    tenant, TokenBucket(policy.rate, policy.burst,
                                        clock=self._clock))
            if not bucket.try_take():
                return AdmissionDecision(
                    False, tenant, criticality, reason="rate_limit",
                    detail=f"rate limit: tenant {tenant!r} over "
                           f"{policy.rate:g} req/s "
                           f"(burst {policy.burst:g})")
        ticket = _Ticket(tenant, tier, deadline)
        with self._lock:
            if self._queue.weight(tenant) != policy.weight:
                self._queue.set_weight(tenant, policy.weight)
            if not self._queue.push(tenant, ticket, tier=tier):
                return AdmissionDecision(
                    False, tenant, criticality, reason="queue_full",
                    detail=f"queue full: tenant {tenant!r} already "
                           f"has {self.config.max_queue_depth} "
                           f"requests waiting")
            self._dispatch_locked()
            pressure = self._pressure_locked()
        # A storm shows up as queue growth before completions move the
        # limiter, so pressure feeds the ladder on the way in too.
        self.brownout.observe(pressure, burn=self._burn())
        enqueued = self._clock()
        while True:
            with self._lock:
                state = ticket.state
                if state == _GRANTED and deadline.expired:
                    # Granted too late: hand the slot straight back so
                    # an expired request never reaches the embed stage.
                    self._inflight -= 1
                    self._dispatch_locked()
                    self._update_gauges_locked()
                    state = _EXPIRED
                elif state == _WAITING and deadline.expired:
                    ticket.state = _ABANDONED
                    state = _EXPIRED
            if state == _GRANTED:
                wait = self._clock() - enqueued
                trace_id = self._trace_queue_wait(
                    enqueued, wait, tenant, criticality, "granted")
                if self._m_queue_wait is not None:
                    self._m_queue_wait.observe(wait, trace_id=trace_id)
                return AdmissionDecision(True, tenant, criticality,
                                         queue_wait_s=wait)
            if state == _EXPIRED:
                self._trace_queue_wait(
                    enqueued, self._clock() - enqueued, tenant,
                    criticality, "expired")
                return AdmissionDecision(
                    False, tenant, criticality, reason="expired",
                    detail="deadline expired while waiting in the "
                           "admission queue")
            self._sleep(self.config.poll_interval_s)

    def release(self, latency_s: float) -> None:
        """One admitted request finished; feed AIMD, hand off slots."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            changed = self.limiter.on_done(latency_s)
            if changed and self._m_limit is not None:
                self._m_limit.set(self.limiter.limit)
            self._dispatch_locked()
            pressure = self._pressure_locked()
        self.brownout.observe(pressure, burn=self._burn())

    # -- internals ---------------------------------------------------
    def _trace_queue_wait(self, enqueued: float, wait: float,
                          tenant: str, criticality: str,
                          outcome: str) -> int | None:
        """Record the enqueue→dequeue interval as a ``queue_wait``
        child of the caller's active span; returns the trace id (for
        the histogram exemplar) or ``None`` when untraced."""
        if self._tracer is None:
            return None
        record = self._tracer.record_span(
            "queue_wait", start=enqueued, duration=wait,
            tenant=tenant, criticality=criticality, outcome=outcome)
        return record.trace_id

    def _burn(self) -> float:
        if self._burn_fn is None:
            return 0.0
        try:
            return float(self._burn_fn())
        except Exception:
            return 0.0

    def _pressure_locked(self) -> float:
        demand = self._inflight + len(self._queue)
        return demand / max(self.limiter.limit, 1)

    def _dispatch_locked(self) -> None:
        while self._inflight < self.limiter.limit:
            served = self._queue.pop()
            if served is None:
                break
            _, ticket = served
            ticket.state = _GRANTED
            self._inflight += 1
        self._update_gauges_locked()

    def _update_gauges_locked(self) -> None:
        if self._m_inflight is not None:
            self._m_inflight.set(self._inflight)
            self._m_queued.set(len(self._queue))
