"""Network fault injectors: misbehaving clients for the gateway.

:mod:`repro.robustness.faults` perturbs the *inside* of the serving
stack (slow embeds, NaN vectors, crashed shards).  This module attacks
the *wire*: each injector here is a real TCP client that connects to a
live :class:`~repro.serving.gateway.Gateway` socket and misbehaves the
way production clients actually do —

* :class:`SlowClient` — a slowloris: trickles header bytes far slower
  than any human typist, holding a connection slot hostage until the
  gateway's reaper evicts it;
* :class:`DisconnectMidResponse` — sends a valid request, reads a few
  bytes of the response, then slams the socket shut (RST via
  ``SO_LINGER 0``), so the gateway's write path sees a broken pipe;
* :class:`ConnectionFlood` — opens as many simultaneous idle
  connections as the OS allows, measuring how many the gateway accepts
  versus sheds at the front door;
* :class:`TruncatedBody` — promises ``Content-Length: N`` then sends
  fewer than N bytes and closes, exercising the bounded body reader.

Every injector's :meth:`run` is synchronous, uses only stdlib sockets,
and returns a plain dict of observations (bytes sent, how the server
reacted, elapsed wall time) so chaos tests can assert on the gateway's
behaviour without reaching into its internals.  None of them raise for
expected server defenses — a reset from the gateway is a *result*, not
an error.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from dataclasses import dataclass, field

__all__ = ["SlowClient", "DisconnectMidResponse", "ConnectionFlood",
           "TruncatedBody", "read_response"]

_RECV = 65536


def read_response(sock: socket.socket,
                  timeout_s: float = 5.0) -> bytes:
    """Read until the server closes the connection (or timeout).

    The fault clients always send ``Connection: close``, so EOF marks
    the end of the response; a timeout returns whatever arrived.
    """
    sock.settimeout(timeout_s)
    chunks = []
    try:
        while True:
            chunk = sock.recv(_RECV)
            if not chunk:
                break
            chunks.append(chunk)
    except (socket.timeout, OSError):
        pass
    return b"".join(chunks)


def _status_of(raw: bytes) -> int | None:
    """Parse the status code out of a raw HTTP response, if any."""
    line = raw.split(b"\r\n", 1)[0]
    parts = line.split()
    if len(parts) >= 2 and parts[0].startswith(b"HTTP/"):
        try:
            return int(parts[1])
        except ValueError:
            return None
    return None


@dataclass
class SlowClient:
    """Slowloris: drip header bytes until the server hangs up.

    Sends one byte of a syntactically valid GET request every
    ``byte_interval_s`` seconds.  A gateway with a working reaper
    closes the connection once the header phase outlives its deadline;
    an unprotected server would hold the slot for
    ``len(request) * byte_interval_s`` seconds (minutes).
    """

    host: str
    port: int
    byte_interval_s: float = 0.2
    #: Hard cap so a broken reaper can't hang the chaos suite.
    max_duration_s: float = 30.0
    target: str = "/healthz"

    def run(self) -> dict:
        payload = (f"GET {self.target} HTTP/1.1\r\n"
                   f"Host: {self.host}\r\n"
                   "Connection: close\r\n\r\n").encode("ascii")
        started = time.monotonic()
        sent = 0
        evicted = False
        with socket.create_connection((self.host, self.port),
                                      timeout=5.0) as sock:
            sock.settimeout(max(self.byte_interval_s, 0.05))
            for byte in payload:
                if time.monotonic() - started > self.max_duration_s:
                    break
                try:
                    sock.sendall(bytes([byte]))
                    sent += 1
                except OSError:
                    evicted = True
                    break
                # A server that already hung up surfaces as EOF (or a
                # reset) on recv; keep dripping only while it listens.
                try:
                    peek = sock.recv(_RECV)
                    if peek == b"":
                        evicted = True
                        break
                except socket.timeout:
                    pass  # still connected — the drip *is* the wait
                except OSError:
                    evicted = True
                    break
        return {"fault": "slow_client", "bytes_sent": sent,
                "bytes_total": len(payload), "evicted": evicted,
                "elapsed_s": time.monotonic() - started}


@dataclass
class DisconnectMidResponse:
    """Send a full request, read a little, then reset the connection.

    ``SO_LINGER`` with a zero timeout turns ``close()`` into an RST,
    the rudest possible hangup: the gateway's response writer hits a
    broken pipe mid-``sendall`` and must contain it (count it, close
    the connection, keep serving everyone else).
    """

    host: str
    port: int
    body: bytes = b'{"ingredients": ["chicken"], "k": 3}'
    target: str = "/search"
    tenant: str = "default"
    #: Bytes of response to read before slamming the door.
    read_bytes: int = 16

    def run(self) -> dict:
        request = (f"POST {self.target} HTTP/1.1\r\n"
                   f"Host: {self.host}\r\n"
                   f"X-Tenant: {self.tenant}\r\n"
                   "Content-Type: application/json\r\n"
                   f"Content-Length: {len(self.body)}\r\n"
                   "Connection: close\r\n\r\n").encode("ascii")
        started = time.monotonic()
        got = b""
        with socket.create_connection((self.host, self.port),
                                      timeout=5.0) as sock:
            sock.sendall(request + self.body)
            sock.settimeout(5.0)
            try:
                while len(got) < self.read_bytes:
                    chunk = sock.recv(self.read_bytes - len(got))
                    if not chunk:
                        break
                    got += chunk
            except OSError:
                pass
            # Zero linger: close() sends RST instead of FIN.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
        return {"fault": "disconnect_mid_response",
                "bytes_read": len(got),
                "status": _status_of(got),
                "elapsed_s": time.monotonic() - started}


@dataclass
class ConnectionFlood:
    """Open many idle connections at once and hold them.

    Measures the gateway's front-door policy: with ``max_connections``
    slots busy it must shed further arrivals with a canned 503 (or
    refuse outright), never queue them invisibly.  ``hold_s`` keeps
    the accepted sockets open so the idle reaper's eviction is also
    observable.
    """

    host: str
    port: int
    connections: int = 32
    hold_s: float = 1.0

    def run(self) -> dict:
        socks: list[socket.socket] = []
        refused = 0
        shed = 0
        lock = threading.Lock()

        def _open() -> None:
            nonlocal refused
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=2.0)
            except OSError:
                with lock:
                    refused += 1
                return
            with lock:
                socks.append(sock)

        threads = [threading.Thread(target=_open)
                   for _ in range(self.connections)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        deadline = time.monotonic() + self.hold_s
        # Poll the held sockets: a shed connection gets a canned 503
        # and EOF; an accepted one stays silently open (idle phase).
        alive = list(socks)
        while alive and time.monotonic() < deadline:
            still = []
            for sock in alive:
                sock.settimeout(0.05)
                try:
                    data = sock.recv(_RECV)
                except socket.timeout:
                    still.append(sock)
                    continue
                except OSError:
                    continue
                if data and _status_of(data) == 503:
                    shed += 1
                elif data:
                    still.append(sock)
            alive = still
        held = len(alive)
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass
        return {"fault": "connection_flood",
                "attempted": self.connections, "refused": refused,
                "shed": shed, "held_open": held}


@dataclass
class TruncatedBody:
    """Advertise a body, deliver only part of it, then hang up.

    The gateway's body reader must treat the early EOF as a malformed
    request (structured 400 or silent close) rather than blocking
    forever on the missing bytes or throwing a traceback into the log.
    """

    host: str
    port: int
    target: str = "/search"
    advertised_length: int = 512
    body_fragment: bytes = b'{"ingredients": ["chick'
    tenant: str = "default"
    #: Extra results accumulated by repeated :meth:`run` calls.
    results: list = field(default_factory=list)

    def run(self) -> dict:
        request = (f"POST {self.target} HTTP/1.1\r\n"
                   f"Host: {self.host}\r\n"
                   f"X-Tenant: {self.tenant}\r\n"
                   "Content-Type: application/json\r\n"
                   f"Content-Length: {self.advertised_length}\r\n"
                   "Connection: close\r\n\r\n").encode("ascii")
        started = time.monotonic()
        with socket.create_connection((self.host, self.port),
                                      timeout=5.0) as sock:
            sock.sendall(request + self.body_fragment)
            try:
                sock.shutdown(socket.SHUT_WR)  # EOF: body never comes
            except OSError:
                pass
            raw = read_response(sock, timeout_s=10.0)
        result = {"fault": "truncated_body",
                  "status": _status_of(raw),
                  "response_bytes": len(raw),
                  "elapsed_s": time.monotonic() - started}
        self.results.append(result)
        return result
