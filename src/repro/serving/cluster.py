"""Sharded, replicated nearest-neighbour cluster with failover.

One brute-force :class:`~repro.retrieval.index.NearestNeighborIndex`
behind one engine is a single point of failure: a slow replica stalls
every request, a corrupted one poisons every answer.
:class:`IndexCluster` splits the same corpus into ``N`` shards
(deterministic hash-by-id placement, :mod:`~repro.serving.sharding`),
keeps ``R`` replicas of each shard, and makes the failure modes
survivable:

* **fan-out + exact merge** — a query runs against every shard
  concurrently; per-shard top-k lists merge into a global top-k that
  is *bitwise identical* to the monolithic index when no faults are
  active (shard rows are verbatim copies, the query kernel is
  shape-stable, and the merge reproduces the monolith's tie order);
* **failover** — each replica sits behind its own
  :class:`~repro.serving.retry.CircuitBreaker`; dead, tripped, or
  corrupted replicas are skipped and the next live sibling answers;
* **hedged requests** — once a replica has a latency history, a
  backup replica is fired when the primary exceeds its recent latency
  quantile, cutting the tail a single slow replica would otherwise
  impose on every fan-out;
* **deadline carving** — the caller's
  :class:`~repro.serving.deadline.Deadline` budget bounds every shard;
  a shard that cannot answer inside its carve is dropped rather than
  dragging the whole request into a timeout;
* **partial results** — a lost shard degrades the answer, not the
  request: the merged result reports ``shards_answered`` /
  ``shards_total`` and the caller decides what "partial" means
  (the resilient service maps it to a ``partial`` outcome);
* **anti-entropy** — a background pass rebuilds dead or tripped
  replicas from a healthy sibling (verbatim copy, preserving the
  bitwise contract) and resets their breakers.

Everything observable lands in :mod:`repro.obs`: per-shard latency
histograms, per-replica state gauges, hedge / failover / rebuild /
partial counters.  The clock is injectable; hedging uses real
concurrency (lane threads racing on events) and is exercised by the
chaos suite with real injected delays.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..obs import LATENCY_BUCKETS, Telemetry
from ..retrieval.index import NearestNeighborIndex
from .deadline import Deadline
from .retry import CircuitBreaker, CircuitState
from .sharding import merge_topk, partition_positions, shard_of

__all__ = ["ClusterConfig", "ClusterResult", "ShardReplica",
           "IndexCluster", "REPLICA_STATE_VALUES", "REPLICA_DEAD",
           "DISTANCE_BUCKETS"]

#: Histogram buckets for cosine distances and margins, which live in
#: [0, 2] — used by the per-cluster quality histograms the drift
#: detector's reference sketches are compared against.
DISTANCE_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8,
                    1.0, 1.25, 1.5, 1.75, 2.0)

#: Gauge encoding of replica states; breaker states first, then death.
REPLICA_STATE_VALUES = {CircuitState.CLOSED: 0,
                        CircuitState.HALF_OPEN: 1,
                        CircuitState.OPEN: 2}
REPLICA_DEAD = 3


class _ReplicaDown(RuntimeError):
    """A replica refused or failed an attempt; the lane fails over."""


@dataclass(frozen=True)
class ClusterConfig:
    """Topology and robustness knobs for one :class:`IndexCluster`."""

    num_shards: int = 3
    replication: int = 2
    #: Fan shards out on threads; ``False`` degrades to a sequential
    #: loop (deterministic, but no hedging and no tail isolation).
    parallel: bool = True
    #: Slice of the request deadline each shard may spend before it is
    #: dropped from the merge (the carve is shared — shards run
    #: concurrently against the same remaining budget).
    shard_budget_fraction: float = 0.95
    hedge_enabled: bool = True
    #: The primary's recent latency quantile that arms the hedge ...
    hedge_quantile: float = 0.9
    #: ... scaled by this factor to form the wait before the backup
    #: replica is fired.
    hedge_factor: float = 2.0
    hedge_min_wait: float = 0.001      # seconds; floor for the wait
    hedge_warmup: int = 8              # samples needed before hedging
    latency_window: int = 128          # per-replica latency history
    breaker_failure_threshold: int = 2
    breaker_reset_after: float = 30.0  # seconds open before half-open
    breaker_half_open_successes: int = 1
    #: Seconds between anti-entropy passes; 0 checks after every query
    #: (the check is O(replicas) flag reads when the cluster is
    #: healthy).
    anti_entropy_interval: float = 0.0
    auto_anti_entropy: bool = True


@dataclass(frozen=True)
class ClusterResult:
    """Merged answer of one fan-out, with its degradation visible."""

    ids: np.ndarray            # global ids, merged top-k order
    distances: np.ndarray      # aligned cosine distances
    shards_total: int
    shards_answered: int
    hedges: int                # backup replicas fired for this query
    failovers: int             # replica attempts skipped or failed

    @property
    def partial(self) -> bool:
        """Did any shard drop out of the merge?"""
        return self.shards_answered < self.shards_total

    @property
    def top1_distance(self) -> float:
        """Best merged distance, or NaN for empty/batched results."""
        if self.distances.ndim != 1 or self.distances.size < 1:
            return float("nan")
        return float(self.distances[0])

    @property
    def margin(self) -> float:
        """Top-2 minus top-1 distance (retrieval confidence), or NaN
        when fewer than two results merged."""
        if self.distances.ndim != 1 or self.distances.size < 2:
            return float("nan")
        return float(self.distances[1] - self.distances[0])


class ShardReplica:
    """One replica: an index copy, a breaker, and a latency history."""

    def __init__(self, shard_id: int, replica_id: int,
                 index: NearestNeighborIndex, breaker: CircuitBreaker,
                 latency_window: int):
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.index = index
        self.breaker = breaker
        self.alive = True
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=latency_window)

    def available(self) -> bool:
        """May this replica serve an attempt right now?"""
        return self.alive and self.breaker.allow()

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(float(seconds))

    def latency_snapshot(self) -> list[float]:
        with self._lock:
            return list(self._latencies)

    def latency_quantile(self, q: float) -> float | None:
        snapshot = self.latency_snapshot()
        if not snapshot:
            return None
        return float(np.quantile(np.asarray(snapshot), q))

    def kill(self) -> None:
        """Simulate a crashed replica process (used by fault
        injection and operator tooling)."""
        self.alive = False

    def revive(self, index: NearestNeighborIndex) -> None:
        """Anti-entropy repair: fresh data, clean breaker, no stale
        latency history."""
        self.index = index
        self.alive = True
        with self._lock:
            self._latencies.clear()
        self.breaker.reset()


class _Shard:
    """R replicas over one deterministic slice of the corpus."""

    def __init__(self, shard_id: int, positions: np.ndarray,
                 replicas: list[ShardReplica]):
        self.shard_id = shard_id
        self.positions = positions
        self.replicas = replicas


class _QueryStats:
    """Per-query hedge/failover tally, shared across lane threads."""

    def __init__(self):
        self._lock = threading.Lock()
        self.hedges = 0
        self.failovers = 0

    def hedge(self) -> None:
        with self._lock:
            self.hedges += 1

    def failover(self, count: int = 1) -> None:
        with self._lock:
            self.failovers += count


class _OneShot:
    """First-success holder coordinating a shard's racing lanes.

    ``wait`` returns once a result lands *or* every expected lane has
    finished empty-handed — so a coordinator neither busy-waits nor
    blocks on lanes that already gave up.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self.result = None
        self._expected = 0
        self._finished = 0

    def expect_lane(self) -> None:
        with self._cond:
            self._expected += 1

    def offer(self, value) -> bool:
        with self._cond:
            if self.result is None:
                self.result = value
                self._cond.notify_all()
                return True
            return False

    def lane_done(self) -> None:
        with self._cond:
            self._finished += 1
            self._cond.notify_all()

    def settled(self) -> bool:
        with self._cond:
            return (self.result is not None
                    or self._finished >= self._expected)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until settled (or ``timeout``); True iff a result is
        available."""
        with self._cond:
            self._cond.wait_for(
                lambda: (self.result is not None
                         or self._finished >= self._expected),
                timeout)
            return self.result is not None


class IndexCluster:
    """Shard + replicate one nearest-neighbour index; keep answering.

    Parameters
    ----------
    index:
        The monolithic source index.  Its (already normalized) rows
        are copied verbatim into shard replicas; the source object is
        not retained.
    config:
        Topology and robustness knobs.
    name:
        Label for this cluster's metric series (a service runs two:
        ``image`` and ``recipe``).
    clock:
        Injectable time source for latency measurement and deadline
        math.
    telemetry:
        Shared :class:`~repro.obs.Telemetry`; a private in-memory one
        is created when omitted so the metrics always exist.
    faults:
        Optional :class:`~repro.robustness.faults.ClusterFault` hook
        object; production passes ``None``.
    """

    def __init__(self, index: NearestNeighborIndex,
                 config: ClusterConfig | None = None, *,
                 name: str = "index",
                 clock: Callable[[], float] = time.monotonic,
                 telemetry: Telemetry | None = None,
                 faults=None):
        config = config or ClusterConfig()
        if config.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if config.replication < 1:
            raise ValueError("replication must be >= 1")
        self._config = config
        self.name = str(name)
        self._clock = clock
        self._faults = faults
        self.telemetry = telemetry or Telemetry(clock=clock)
        self._setup_metrics()
        self._ids = index.ids.copy()
        self._class_ids = (None if index.class_ids is None
                           else index.class_ids.copy())
        self._live = np.ones(len(self._ids), dtype=bool)
        # Serializes streamed delta application (and anti-entropy
        # rebuilds) against each other; queries stay lock-free — they
        # read each replica's ``index`` reference exactly once.
        self._topology_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._next_query_id = 0
        self._queries = 0
        self._hedges = 0
        self._failovers = 0
        self._rebuilds = 0
        self._partials = 0
        self._last_anti_entropy = clock()
        self.shards: list[_Shard] = []
        for shard_id, positions in enumerate(
                partition_positions(self._ids, config.num_shards)):
            # Shard items are relabeled with their *global row
            # positions*: the merge tie-breaks and maps back through
            # them, which is what makes the fan-out bit-exact.
            primary = index.subset(positions, relabel=positions)
            replicas = []
            for replica_id in range(config.replication):
                breaker = CircuitBreaker(
                    f"{self.name}-s{shard_id}r{replica_id}",
                    config.breaker_failure_threshold,
                    config.breaker_reset_after,
                    config.breaker_half_open_successes, clock=clock,
                    on_transition=self._replica_transition(
                        shard_id, replica_id))
                replicas.append(ShardReplica(
                    shard_id, replica_id,
                    primary if replica_id == 0 else primary.clone(),
                    breaker, config.latency_window))
                self._m_replica_state.labels(
                    cluster=self.name, shard=shard_id,
                    replica=replica_id).set(0)
            self.shards.append(_Shard(shard_id, positions, replicas))

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _setup_metrics(self) -> None:
        registry = self.telemetry.registry
        self._m_queries = registry.counter(
            "cluster_queries_total",
            "cluster fan-outs by merged outcome",
            labels=("cluster", "outcome"))
        self._m_shard_latency = registry.histogram(
            "cluster_shard_seconds",
            "per-shard answer latency (winning replica attempt)",
            labels=("cluster", "shard"), buckets=LATENCY_BUCKETS)
        self._m_replica_state = registry.gauge(
            "cluster_replica_state",
            "0 closed, 1 half-open, 2 open, 3 dead",
            labels=("cluster", "shard", "replica"))
        self._m_hedges = registry.counter(
            "cluster_hedges_total",
            "backup replicas fired after a slow primary",
            labels=("cluster", "shard"))
        self._m_failovers = registry.counter(
            "cluster_failovers_total",
            "replica attempts skipped or failed over",
            labels=("cluster", "shard"))
        self._m_rebuilds = registry.counter(
            "cluster_anti_entropy_rebuilds_total",
            "replicas rebuilt from a healthy sibling",
            labels=("cluster", "shard"))
        self._m_partials = registry.counter(
            "cluster_partial_results_total",
            "fan-outs that lost at least one shard",
            labels=("cluster",))
        self._m_top1 = registry.histogram(
            "cluster_top1_distance",
            "best merged cosine distance per fan-out",
            labels=("cluster",), buckets=DISTANCE_BUCKETS)
        self._m_margin = registry.histogram(
            "cluster_result_margin",
            "top-2 minus top-1 merged distance per fan-out",
            labels=("cluster",), buckets=DISTANCE_BUCKETS)

    def _replica_transition(self, shard_id: int, replica_id: int):
        gauge = self._m_replica_state
        name = self.name

        def on_transition(_breaker_name: str, state: CircuitState) -> None:
            gauge.labels(cluster=name, shard=shard_id,
                         replica=replica_id).set(
                REPLICA_STATE_VALUES[state])
        return on_transition

    # ------------------------------------------------------------------
    # Operator / fault surface
    # ------------------------------------------------------------------
    def replica(self, shard_id: int, replica_id: int) -> ShardReplica:
        return self.shards[shard_id].replicas[replica_id]

    def crash_replica(self, shard_id: int, replica_id: int) -> None:
        """Mark one replica dead (fault injection / operator drain)."""
        self.replica(shard_id, replica_id).kill()
        self._m_replica_state.labels(
            cluster=self.name, shard=shard_id,
            replica=replica_id).set(REPLICA_DEAD)
        self.telemetry.events.emit(
            "replica_down", cluster=self.name, shard=shard_id,
            replica=replica_id)

    def live_replica_count(self) -> int:
        return sum(1 for shard in self.shards
                   for rep in shard.replicas if rep.alive)

    def anti_entropy(self, force: bool = False) -> int:
        """Rebuild dead/tripped replicas from healthy siblings.

        Returns the number of replicas rebuilt.  A shard with no
        healthy, finite donor is left as-is (that is exactly the
        whole-shard-lost scenario partial results exist for).
        """
        now = self._clock()
        with self._stats_lock:
            due = (force or now - self._last_anti_entropy
                   >= self._config.anti_entropy_interval)
            if due:
                self._last_anti_entropy = now
        if not due:
            return 0
        rebuilt = 0
        # Taken so a rebuild cannot interleave with a streamed delta
        # being applied to the same shard's replicas.
        with self._topology_lock:
            for shard in self.shards:
                broken = [rep for rep in shard.replicas
                          if not rep.alive
                          or rep.breaker.state is CircuitState.OPEN]
                if not broken:
                    continue
                donor = next(
                    (rep for rep in shard.replicas
                     if rep.alive
                     and rep.breaker.state is CircuitState.CLOSED
                     and bool(np.isfinite(rep.index.embeddings).all())),
                    None)
                if donor is None:
                    continue
                for rep in broken:
                    rep.revive(donor.index.clone())
                    rebuilt += 1
                    self._m_rebuilds.labels(cluster=self.name,
                                            shard=shard.shard_id).inc()
                    self._m_replica_state.labels(
                        cluster=self.name, shard=shard.shard_id,
                        replica=rep.replica_id).set(0)
                    self.telemetry.events.emit(
                        "replica_rebuilt", cluster=self.name,
                        shard=shard.shard_id, replica=rep.replica_id,
                        donor=donor.replica_id)
        if rebuilt:
            with self._stats_lock:
                self._rebuilds += rebuilt
        return rebuilt

    # ------------------------------------------------------------------
    # Streamed deltas (ingest overlay mirrored into the shards)
    # ------------------------------------------------------------------
    def apply_add(self, item_id: int, row: np.ndarray, class_id: int,
                  position: int) -> None:
        """Physically add one streamed row at global ``position``.

        The item routes to its owning shard by the same splitmix64
        placement the base build used (:func:`shard_of` on the item
        id), so a corpus rebuilt from the folded state shards
        identically.  Every replica of the owning shard gets the row
        via the verbatim ``append_rows`` path; the replica's
        ``index`` reference is swapped atomically, so racing queries
        see the shard either with or without the row — never torn.

        ``position`` may skip past gaps (merge keys whose item was
        tombstoned before this cluster ever saw it); gap positions
        hold no rows anywhere, so they can never be returned.
        """
        row = np.asarray(row, dtype=np.float64).reshape(1, -1)
        item_id = int(item_id)
        position = int(position)
        with self._topology_lock:
            size = len(self._ids)
            if position < size and self._live[position]:
                raise ValueError(
                    f"position {position} is already live")
            if position >= size:
                grow = position + 1 - size
                self._ids = np.concatenate(
                    [self._ids, np.full(grow, -1, dtype=np.int64)])
                self._live = np.concatenate(
                    [self._live, np.zeros(grow, dtype=bool)])
                if self._class_ids is not None:
                    self._class_ids = np.concatenate(
                        [self._class_ids,
                         np.full(grow, -1, dtype=np.int64)])
            self._ids[position] = item_id
            self._live[position] = True
            if self._class_ids is not None:
                self._class_ids[position] = int(class_id)
            shard = self.shards[shard_of(item_id, len(self.shards))]
            labels = np.array([position], dtype=np.int64)
            classes = (None if self._class_ids is None
                       else np.array([int(class_id)], dtype=np.int64))
            for rep in shard.replicas:
                rep.index = rep.index.append_rows(row, labels, classes)
            shard.positions = np.concatenate([shard.positions, labels])

    def apply_delete(self, item_id: int, position: int) -> None:
        """Physically drop one streamed tombstone from its shard."""
        item_id = int(item_id)
        position = int(position)
        with self._topology_lock:
            if position >= len(self._ids) or not self._live[position]:
                raise ValueError(
                    f"position {position} is not live")
            if self._ids[position] != item_id:
                raise ValueError(
                    f"position {position} holds item "
                    f"{int(self._ids[position])}, not {item_id}")
            self._live[position] = False
            shard = self.shards[shard_of(item_id, len(self.shards))]
            for rep in shard.replicas:
                keep = np.flatnonzero(rep.index.ids != position)
                rep.index = rep.index.subset(keep)
            shard.positions = shard.positions[
                shard.positions != position]

    def live_item_count(self) -> int:
        return int(np.count_nonzero(self._live))

    def describe(self) -> dict:
        """Topology + health snapshot for ``stats()`` and dashboards."""
        with self._stats_lock:
            totals = {"queries": self._queries, "hedges": self._hedges,
                      "failovers": self._failovers,
                      "rebuilds": self._rebuilds,
                      "partials": self._partials}
        topology = []
        for shard in self.shards:
            replicas = []
            for rep in shard.replicas:
                p95 = rep.latency_quantile(0.95)
                replicas.append({
                    "replica": rep.replica_id,
                    "alive": rep.alive,
                    "breaker": rep.breaker.state.value,
                    "latency_p95_ms": (None if p95 is None
                                       else p95 * 1000.0),
                })
            topology.append({"shard": shard.shard_id,
                             "items": int(len(shard.positions)),
                             "replicas": replicas})
        return {"name": self.name,
                "shards": len(self.shards),
                "replication": self._config.replication,
                "items": len(self._ids),
                "live_items": self.live_item_count(),
                "live_replicas": self.live_replica_count(),
                **totals,
                "topology": topology}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _validate(self, k: int, class_id: int | None,
                  strict: bool) -> None:
        """Caller-contract checks, synchronous and fan-out-free, so
        invalid queries raise :class:`ValueError` exactly like the
        monolithic index."""
        if k < 1:
            raise ValueError("k must be >= 1")
        if class_id is not None and self._class_ids is None:
            raise ValueError("index built without class metadata")
        if strict:
            pool = (int(np.count_nonzero(self._live)) if class_id is None
                    else int(np.count_nonzero(
                        self._live & (self._class_ids == class_id))))
            if pool < k:
                raise ValueError(
                    f"k={k} exceeds the candidate pool of {pool}"
                    + ("" if class_id is None
                       else f" for class {class_id}"))

    def query(self, vector: np.ndarray, k: int = 5,
              class_id: int | None = None, strict: bool = False,
              deadline: Deadline | None = None,
              hedge: bool | None = None) -> ClusterResult:
        """Fan one query out to every shard and merge the top-k.

        Fault-free, the merged ``(ids, distances)`` are bitwise
        identical to ``NearestNeighborIndex.query`` on the source
        index.  Under faults the merge covers the shards that
        answered; ``ClusterResult.partial`` tells the caller how much
        of the corpus the answer represents.  Never raises for
        operational faults — only for caller errors (bad ``k``,
        unknown metadata, ``strict`` pool violations).

        ``hedge=False`` disables backup lanes for this query even when
        the config allows them — the brownout ladder's first level
        trades tail latency for halved worst-case fan-out cost.
        ``None`` defers to ``ClusterConfig.hedge_enabled``; ``True``
        cannot force hedging past a config that disabled it.
        """
        with self._stats_lock:
            query_id = self._next_query_id
            self._next_query_id += 1
            self._queries += 1
        if self._faults is not None:
            self._faults.on_cluster_query(query_id, self)
        self._validate(k, class_id, strict)
        # An already-blown request budget means every shard answer
        # would have to be discarded — skip the fan-out entirely.
        expired = deadline is not None and deadline.expired
        shard_budget = (None if deadline is None else
                        deadline.sub(self._config.shard_budget_fraction))
        stats = _QueryStats()
        outcomes: list[tuple[np.ndarray, np.ndarray] | None] = (
            [None] * len(self.shards))

        tracer = self.telemetry.tracer
        ctx = tracer.capture()

        def run(slot: int, shard: _Shard) -> None:
            # Worker threads adopt the submitting thread's context so
            # every per-shard span lands in the request's trace.
            with tracer.attach(ctx), \
                    tracer.span("shard_query", cluster=self.name,
                                shard=shard.shard_id) as span:
                outcomes[slot] = self._query_shard(
                    shard, vector, k, class_id, shard_budget, query_id,
                    stats, hedge=hedge)
                span.set_attribute(
                    "answered", outcomes[slot] is not None)

        if expired:
            pass
        elif self._config.parallel and len(self.shards) > 1:
            workers = [threading.Thread(target=run, args=(i, shard),
                                        daemon=True,
                                        name=f"shard-{self.name}"
                                             f"-{shard.shard_id}")
                       for i, shard in enumerate(self.shards)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        else:
            for i, shard in enumerate(self.shards):
                run(i, shard)

        answered = [out for out in outcomes if out is not None]
        positions, distances = merge_topk(answered, k)
        result = ClusterResult(
            ids=self._ids[positions], distances=distances,
            shards_total=len(self.shards),
            shards_answered=len(answered),
            hedges=stats.hedges, failovers=stats.failovers)
        self._account(result, stats)
        if self._config.auto_anti_entropy:
            self.anti_entropy()
        return result

    def query_batch(self, vectors: np.ndarray, k: int = 5,
                    class_id: int | None = None, strict: bool = False,
                    deadline: Deadline | None = None) -> ClusterResult:
        """Batched fan-out: one matmul per shard for many queries.

        Returns a :class:`ClusterResult` whose ``ids``/``distances``
        are ``(B, k')`` matrices (rows align with ``vectors``).  The
        batch path reuses the failover chain but not hedging — bulk
        scoring is throughput-bound, and its per-shard latency is the
        matmul, not a straggler replica.  Distances match the
        single-query fan-out to within one ulp (BLAS batch kernel).
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError(
                f"vectors must be 2-D (batch, dim); got {vectors.shape}")
        with self._stats_lock:
            query_id = self._next_query_id
            self._next_query_id += 1
            self._queries += 1
        if self._faults is not None:
            self._faults.on_cluster_query(query_id, self)
        self._validate(k, class_id, strict)
        expired = deadline is not None and deadline.expired
        shard_budget = (None if deadline is None else
                        deadline.sub(self._config.shard_budget_fraction))
        stats = _QueryStats()
        outcomes: list[tuple[np.ndarray, np.ndarray] | None] = (
            [None] * len(self.shards))

        tracer = self.telemetry.tracer
        ctx = tracer.capture()

        def run(slot: int, shard: _Shard) -> None:
            with tracer.attach(ctx), \
                    tracer.span("shard_query", cluster=self.name,
                                shard=shard.shard_id, batch=True):
                outcomes[slot] = self._query_shard_batch(
                    shard, vectors, k, class_id, shard_budget, query_id,
                    stats)

        if expired:
            pass
        elif self._config.parallel and len(self.shards) > 1:
            workers = [threading.Thread(target=run, args=(i, shard),
                                        daemon=True,
                                        name=f"shard-{self.name}"
                                             f"-{shard.shard_id}")
                       for i, shard in enumerate(self.shards)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        else:
            for i, shard in enumerate(self.shards):
                run(i, shard)

        answered = [out for out in outcomes if out is not None]
        merged_ids, merged_distances = [], []
        for row in range(len(vectors)):
            parts = [(pos[row], dist[row]) for pos, dist in answered]
            positions, distances = merge_topk(parts, k)
            merged_ids.append(self._ids[positions])
            merged_distances.append(distances)
        width = min((len(row) for row in merged_ids), default=0)
        result = ClusterResult(
            ids=np.array([row[:width] for row in merged_ids],
                         dtype=np.int64),
            distances=np.array([row[:width] for row in merged_distances],
                               dtype=np.float64),
            shards_total=len(self.shards),
            shards_answered=len(answered),
            hedges=stats.hedges, failovers=stats.failovers)
        self._account(result, stats)
        if self._config.auto_anti_entropy:
            self.anti_entropy()
        return result

    def _account(self, result: ClusterResult,
                 stats: _QueryStats) -> None:
        outcome = ("unanswered" if result.shards_answered == 0
                   else "partial" if result.partial else "ok")
        self._m_queries.labels(cluster=self.name, outcome=outcome).inc()
        with self._stats_lock:
            self._hedges += stats.hedges
            self._failovers += stats.failovers
            if result.partial:
                self._partials += 1
        if result.partial:
            self._m_partials.labels(cluster=self.name).inc()
        # Quality distributions per answered fan-out; Histogram drops
        # the NaN from empty or batched results.
        if result.shards_answered > 0:
            self._m_top1.labels(cluster=self.name).observe(
                result.top1_distance)
            self._m_margin.labels(cluster=self.name).observe(
                result.margin)

    # ------------------------------------------------------------------
    # Per-shard execution: lanes, hedging, failover
    # ------------------------------------------------------------------
    def _query_shard(self, shard: _Shard, vector, k: int,
                     class_id: int | None, budget: Deadline | None,
                     query_id: int, stats: _QueryStats,
                     hedge: bool | None = None):
        run_one = (lambda rep:
                   self._attempt(shard, rep, query_id, budget,
                                 lambda: rep.index.query(
                                     vector, k=k, class_id=class_id)))
        allow_hedge = (self._config.hedge_enabled if hedge is None
                       else bool(hedge) and self._config.hedge_enabled)
        return self._run_lanes(shard, run_one, budget, stats,
                               hedge=allow_hedge)

    def _query_shard_batch(self, shard: _Shard, vectors, k: int,
                           class_id: int | None,
                           budget: Deadline | None, query_id: int,
                           stats: _QueryStats):
        run_one = (lambda rep:
                   self._attempt(shard, rep, query_id, budget,
                                 lambda: rep.index.query_batch(
                                     vectors, k=k, class_id=class_id)))
        return self._run_lanes(shard, run_one, budget, stats,
                               hedge=False)

    def _run_lanes(self, shard: _Shard, run_one, budget, stats,
                   hedge: bool):
        """Primary failover chain, optionally raced by a hedge lane."""
        ordered = [rep for rep in shard.replicas if rep.available()]
        skipped = len(shard.replicas) - len(ordered)
        if skipped:
            stats.failover(skipped)
            self._m_failovers.labels(cluster=self.name,
                                     shard=shard.shard_id).inc(skipped)
        if not ordered:
            return None
        holder = _OneShot()

        def lane(chain: list[ShardReplica]) -> None:
            try:
                for rep in chain:
                    if holder.result is not None:
                        return
                    if budget is not None and budget.expired:
                        return
                    try:
                        answer = run_one(rep)
                    except _ReplicaDown:
                        stats.failover()
                        self._m_failovers.labels(
                            cluster=self.name,
                            shard=shard.shard_id).inc()
                        continue
                    if budget is not None and budget.expired:
                        # Finished after the shard's carve: the merge
                        # has moved on; drop the late answer.
                        return
                    holder.offer(answer)
                    return
            finally:
                holder.lane_done()

        parallel = self._config.parallel
        if not parallel:
            holder.expect_lane()
            lane(ordered)
            return holder.result

        hedge_wait = (self._hedge_wait(ordered[0])
                      if hedge and len(ordered) > 1 else None)
        holder.expect_lane()
        primary = threading.Thread(target=lane, args=(ordered,),
                                   daemon=True,
                                   name=f"shard-{self.name}"
                                        f"-{shard.shard_id}")
        primary.start()
        if hedge_wait is not None:
            if budget is not None:
                hedge_wait = min(hedge_wait,
                                 max(budget.remaining(), 0.0))
            if not holder.wait(hedge_wait) and not holder.settled():
                stats.hedge()
                self._m_hedges.labels(cluster=self.name,
                                      shard=shard.shard_id).inc()
                holder.expect_lane()
                tracer = self.telemetry.tracer
                ctx = tracer.capture()

                def hedge_lane() -> None:
                    # The backup lane is its own span inside the
                    # shard_query: when the hedge wins, the critical
                    # path shows it; when it loses, the span closes
                    # late and still joins the trace by parent id.
                    with tracer.attach(ctx), \
                            tracer.span("hedge", cluster=self.name,
                                        shard=shard.shard_id,
                                        replica=ordered[1].replica_id):
                        lane([ordered[1]])

                backup = threading.Thread(target=hedge_lane,
                                          daemon=True,
                                          name=f"hedge-{self.name}"
                                               f"-{shard.shard_id}")
                backup.start()
        timeout = (None if budget is None
                   else max(budget.remaining(), 0.0))
        holder.wait(timeout)
        return holder.result

    def _hedge_wait(self, primary: ShardReplica) -> float | None:
        """How long to give the primary before firing the backup, or
        ``None`` while its latency history is too thin to judge."""
        snapshot = primary.latency_snapshot()
        if len(snapshot) < self._config.hedge_warmup:
            return None
        quantile = float(np.quantile(np.asarray(snapshot),
                                     self._config.hedge_quantile))
        return max(quantile * self._config.hedge_factor,
                   self._config.hedge_min_wait)

    def _attempt(self, shard: _Shard, rep: ShardReplica,
                 query_id: int, budget: Deadline | None, call):
        """One replica attempt with health accounting.

        Raises :class:`_ReplicaDown` on any operational failure so the
        lane fails over; returns the (positions, distances) answer on
        success.
        """
        if not rep.alive:
            raise _ReplicaDown(f"shard {shard.shard_id} replica "
                               f"{rep.replica_id} is dead")
        if self._faults is not None:
            self._faults.on_replica_query(query_id, shard.shard_id,
                                          rep.replica_id)
        if not rep.alive:  # the fault hook may have crashed it
            raise _ReplicaDown(f"shard {shard.shard_id} replica "
                               f"{rep.replica_id} is dead")
        started = self._clock()
        try:
            # A corrupted replica must surface as a failover, not as
            # FP warnings escaping from a lane thread.
            with np.errstate(all="ignore"):
                positions, distances = call()
        except Exception as exc:
            rep.breaker.record_failure()
            raise _ReplicaDown(
                f"shard {shard.shard_id} replica {rep.replica_id}: "
                f"{type(exc).__name__}: {exc}") from exc
        elapsed = self._clock() - started
        self._m_shard_latency.labels(cluster=self.name,
                                     shard=shard.shard_id).observe(elapsed)
        if not bool(np.all(np.isfinite(distances))):
            rep.breaker.record_failure()
            raise _ReplicaDown(
                f"shard {shard.shard_id} replica {rep.replica_id}: "
                f"non-finite distances")
        rep.breaker.record_success()
        rep.observe_latency(elapsed)
        return positions, distances
