"""Resilient serving layer for the recipe search engine.

Production containment around :class:`~repro.core.engine.RecipeSearchEngine`:

* :mod:`~repro.serving.deadline` — cooperative per-request time
  budgets threaded through every stage;
* :mod:`~repro.serving.retry` — backoff-with-jitter retries and
  per-dependency circuit breakers;
* :mod:`~repro.serving.degraded` — model-free lexical fallback
  ranking when the embed/index stages are unavailable;
* :mod:`~repro.serving.hotswap` — canary-validated, atomic
  corpus+index generation swaps;
* :mod:`~repro.serving.service` — the
  :class:`~repro.serving.service.ResilientSearchService` tying it all
  together with admission control and structured outcome records.
"""

from .deadline import Deadline, DeadlineExceeded
from .degraded import DegradedRanker
from .hotswap import EngineGeneration, SwapReport, run_canaries
from .retry import CircuitBreaker, CircuitState, RetryPolicy
from .service import (STATUSES, RequestOutcome, ResilientSearchService,
                      ServiceConfig, ServiceResponse)

__all__ = [
    "Deadline", "DeadlineExceeded",
    "DegradedRanker",
    "EngineGeneration", "SwapReport", "run_canaries",
    "CircuitBreaker", "CircuitState", "RetryPolicy",
    "STATUSES", "RequestOutcome", "ResilientSearchService",
    "ServiceConfig", "ServiceResponse",
]
