"""Resilient serving layer for the recipe search engine.

Production containment around :class:`~repro.core.engine.RecipeSearchEngine`:

* :mod:`~repro.serving.deadline` — cooperative per-request time
  budgets threaded through every stage;
* :mod:`~repro.serving.retry` — backoff-with-jitter retries and
  per-dependency circuit breakers;
* :mod:`~repro.serving.degraded` — model-free lexical fallback
  ranking when the embed/index stages are unavailable;
* :mod:`~repro.serving.hotswap` — canary-validated, atomic
  corpus+index generation swaps;
* :mod:`~repro.serving.sharding` — deterministic hash-by-id shard
  placement and bitwise-exact top-k merging;
* :mod:`~repro.serving.cluster` — the sharded, replicated
  :class:`~repro.serving.cluster.IndexCluster` with hedged fan-out,
  failover, anti-entropy repair, and partial results;
* :mod:`~repro.serving.wal` — the crash-safe, checksummed,
  segment-rotated write-ahead delta log;
* :mod:`~repro.serving.ingest` — streaming adds/deletes over a frozen
  base index: the exact base ∪ delta overlay, WAL-backed durability,
  and exactly-once compaction into a new base snapshot;
* :mod:`~repro.serving.admission` — adaptive admission control:
  per-tenant token buckets, weighted deficit-round-robin fair
  queuing, an AIMD concurrency limiter, and the brownout degradation
  ladder;
* :mod:`~repro.serving.loadgen` — open-loop multi-tenant load
  generation for overload experiments, in-process or over HTTP;
* :mod:`~repro.serving.service` — the
  :class:`~repro.serving.service.ResilientSearchService` tying it all
  together with admission control and structured outcome records;
* :mod:`~repro.serving.gateway` — the hardened stdlib HTTP front-end:
  wire armor (timeouts, size bounds, slowloris reaper,
  shed-at-accept), graceful SIGTERM drain, and a swap-aware LRU+TTL
  result cache with stale-while-revalidate under brownout;
* :mod:`~repro.serving.netfaults` — real-socket misbehaving clients
  (slowloris, mid-response resets, connection floods, truncated
  bodies) for the gateway chaos suite.
"""

from .admission import (BROWNOUT_LADDER, CRITICALITIES, SHED_REASONS,
                        AdaptiveLimiter, AdmissionConfig,
                        AdmissionController, AdmissionDecision,
                        BrownoutConfig, BrownoutController, FairQueue,
                        TenantPolicy, TokenBucket)
from .cluster import ClusterConfig, ClusterResult, IndexCluster, ShardReplica
from .deadline import Deadline, DeadlineExceeded
from .degraded import DegradedRanker
from .gateway import (SHED_STATUS_CODES, STATUS_CODES, BadRequest,
                      CacheConfig, Gateway, GatewayConfig, ResultCache,
                      normalize_search_request, parse_deadline_header,
                      query_fingerprint)
from .hotswap import EngineGeneration, SwapReport, run_canaries
from .ingest import (CompactionReport, CompactionThread, CompactionTicket,
                     DeltaOverlay, IngestAck, IngestConfig, IngestError,
                     IngestOp, Ingestor, payload_to_recipe,
                     recipe_to_payload, scan_log)
from .loadgen import (GOOD_STATUSES, HttpRequester, LoadGenerator,
                      LoadReport, TenantLoad, TenantReport)
from .netfaults import (ConnectionFlood, DisconnectMidResponse,
                        SlowClient, TruncatedBody)
from .retry import CircuitBreaker, CircuitState, RetryPolicy
from .service import (INGEST_STATUSES, STATUSES, IngestOutcome,
                      RequestOutcome, ResilientSearchService,
                      ServiceConfig, ServiceResponse)
from .sharding import merge_topk, partition_positions, shard_of, stable_hash64
from .wal import (DeltaLog, LogPosition, LogRecovery, WalCorruption,
                  WalError, WalWriteError)

__all__ = [
    "Deadline", "DeadlineExceeded",
    "DegradedRanker",
    "EngineGeneration", "SwapReport", "run_canaries",
    "CircuitBreaker", "CircuitState", "RetryPolicy",
    "STATUSES", "RequestOutcome", "ResilientSearchService",
    "ServiceConfig", "ServiceResponse",
    "INGEST_STATUSES", "IngestOutcome",
    "ClusterConfig", "ClusterResult", "IndexCluster", "ShardReplica",
    "stable_hash64", "shard_of", "partition_positions", "merge_topk",
    "WalError", "WalCorruption", "WalWriteError",
    "DeltaLog", "LogPosition", "LogRecovery",
    "IngestError", "IngestConfig", "IngestOp", "IngestAck",
    "DeltaOverlay", "Ingestor", "CompactionTicket", "CompactionReport",
    "CompactionThread", "scan_log", "recipe_to_payload",
    "payload_to_recipe",
    "CRITICALITIES", "SHED_REASONS", "BROWNOUT_LADDER",
    "TenantPolicy", "BrownoutConfig", "AdmissionConfig",
    "AdmissionDecision", "TokenBucket", "FairQueue",
    "AdaptiveLimiter", "BrownoutController", "AdmissionController",
    "GOOD_STATUSES", "TenantLoad", "TenantReport", "LoadReport",
    "LoadGenerator", "HttpRequester",
    "STATUS_CODES", "SHED_STATUS_CODES", "BadRequest", "CacheConfig",
    "GatewayConfig", "ResultCache", "Gateway",
    "normalize_search_request", "parse_deadline_header",
    "query_fingerprint",
    "SlowClient", "DisconnectMidResponse", "ConnectionFlood",
    "TruncatedBody",
]
