"""Crash-safe write-ahead delta log for streaming corpus ingest.

Every corpus mutation (add / delete) is appended to a segmented,
length-prefixed, CRC-checksummed log *before* it is applied to the
in-memory delta overlay.  The durability contract:

- **Record framing** — 8-byte little-endian header ``(payload length,
  crc32(payload))`` followed by the payload.  A record is valid iff
  the full payload is present and its CRC matches.
- **Acknowledge point** — an append is acknowledged to the caller only
  after the bytes reach the OS (unbuffered write); it is *durable*
  once the batched ``fsync`` has run (``fsync_every=1``, the default,
  makes every acknowledged record durable).
- **Torn-tail rule** — on open, a short or CRC-mismatched record at
  the tail of the *final* segment is the signature of a crash mid
  write: the tail is truncated back to the last valid record and
  replay proceeds.  The same damage in a *sealed* (non-final) segment
  cannot be a torn write — it is bit rot — and raises
  :class:`WalCorruption` instead of silently dropping data.
- **Failed appends leave no residue** — if a write fails midway
  (e.g. disk full), the segment is truncated back to its pre-append
  offset, the failure surfaces as :class:`WalWriteError`, and the log
  remains clean for the next append.

Segments are named ``wal-%06d.log``.  ``MANIFEST.json`` — replaced
atomically (tmp file + fsync + rename + directory fsync) — records
the first live segment and opaque caller metadata; ``checkpoint``
advances it after a compaction folds earlier segments into a base
snapshot, then deletes the folded segments.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import struct
import zlib
from dataclasses import dataclass

__all__ = ["WalError", "WalCorruption", "WalWriteError", "LogPosition",
           "LogRecovery", "DeltaLog", "encode_record", "read_manifest",
           "write_manifest", "replay_segments", "MANIFEST_NAME"]

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 1

_HEADER = struct.Struct("<II")  # (payload length, crc32 of payload)
_SEGMENT_RE = re.compile(r"^wal-(\d{6})\.log$")


class WalError(RuntimeError):
    """Base class for write-ahead-log failures."""


class WalCorruption(WalError):
    """A sealed segment failed validation — bit rot, not a torn write."""


class WalWriteError(WalError):
    """An append failed and was rolled back; the log is still clean."""


@dataclass(frozen=True)
class LogPosition:
    """Where one acknowledged record landed."""

    segment: int
    offset: int
    record: int


@dataclass(frozen=True)
class LogRecovery:
    """What the open-time scan found and repaired."""

    segments: int
    records: int
    bytes_scanned: int
    truncated_bytes: int
    truncated_segment: int | None


def _segment_name(segment: int) -> str:
    return f"wal-{segment:06d}.log"


def encode_record(payload: bytes) -> bytes:
    """Frame one payload: length + CRC header, then the bytes."""
    payload = bytes(payload)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _fsync_dir(directory: pathlib.Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_manifest(directory: str | pathlib.Path, payload: dict) -> None:
    """Atomically replace the manifest (tmp + fsync + rename + dirsync)."""
    directory = pathlib.Path(directory)
    tmp = directory / (MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, directory / MANIFEST_NAME)
    _fsync_dir(directory)


def read_manifest(directory: str | pathlib.Path) -> dict | None:
    path = pathlib.Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _scan_bytes(data: bytes) -> tuple[int, int, list[bytes]]:
    """Walk framed records; return (records, good_bytes, payloads).

    Stops at the first short or CRC-mismatched record; ``good_bytes``
    is the offset of that record's header (i.e. where a torn tail
    would be truncated back to).
    """
    payloads: list[bytes] = []
    offset = 0
    size = len(data)
    while size - offset >= _HEADER.size:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        payloads.append(payload)
        offset = end
    return len(payloads), offset, payloads


def _live_segments(directory: pathlib.Path, start: int) -> list[int]:
    found = []
    for entry in directory.iterdir():
        match = _SEGMENT_RE.match(entry.name)
        if match:
            found.append(int(match.group(1)))
    return sorted(seg for seg in found if seg >= start)


def replay_segments(directory: str | pathlib.Path):
    """Read-only replay of every valid record past the manifest.

    Tolerates a torn tail on the final segment (stops there) without
    truncating anything — the inspection path (``repro ingest
    status``) must not mutate the log it is describing.  Raises
    :class:`WalCorruption` for damage in a sealed segment.
    """
    directory = pathlib.Path(directory)
    manifest = read_manifest(directory)
    if manifest is None:
        raise WalError(f"no write-ahead log at {directory}")
    segments = _live_segments(directory, int(manifest["segment"]))
    for rank, segment in enumerate(segments):
        path = directory / _segment_name(segment)
        data = path.read_bytes()
        _, good, payloads = _scan_bytes(data)
        if good < len(data) and rank != len(segments) - 1:
            raise WalCorruption(
                f"sealed segment {path.name} is damaged at offset {good}")
        yield from payloads


class DeltaLog:
    """Segmented append-only log with manifest-driven checkpoints.

    Opening the log performs crash recovery: garbage segments older
    than the manifest are deleted, a torn tail on the final segment is
    truncated (see module docstring), and the scan summary lands in
    :attr:`recovery`.  Appends optionally pass through an
    ``IngestFault`` (``on_append`` may truncate the wire bytes or
    raise ``OSError``; ``after_append`` may simulate a crash) so the
    chaos suite can manufacture torn tails and full disks on demand.
    """

    def __init__(self, directory: str | pathlib.Path,
                 fsync_every: int = 1, fault=None):
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_every = int(fsync_every)
        self._fault = fault
        manifest = read_manifest(self.directory)
        if manifest is None:
            manifest = {"version": MANIFEST_VERSION, "segment": 0,
                        "meta": {}}
            write_manifest(self.directory, manifest)
        if int(manifest.get("version", -1)) != MANIFEST_VERSION:
            raise WalError(f"unsupported manifest version: "
                           f"{manifest.get('version')!r}")
        self.manifest = manifest
        start = int(manifest["segment"])
        for entry in list(self.directory.iterdir()):
            match = _SEGMENT_RE.match(entry.name)
            if match and int(match.group(1)) < start:
                entry.unlink()  # folded into a base by a checkpoint
        segments = _live_segments(self.directory, start)
        if not segments:
            (self.directory / _segment_name(start)).touch()
            _fsync_dir(self.directory)
            segments = [start]
        if segments != list(range(segments[0], segments[-1] + 1)):
            raise WalCorruption(
                f"segment sequence has holes: {segments}")
        self._segment_records: dict[int, int] = {}
        truncated_bytes = 0
        truncated_segment = None
        total_records = 0
        total_bytes = 0
        for rank, segment in enumerate(segments):
            path = self.directory / _segment_name(segment)
            data = path.read_bytes()
            records, good, _ = _scan_bytes(data)
            total_bytes += len(data)
            if good < len(data):
                if rank != len(segments) - 1:
                    raise WalCorruption(
                        f"sealed segment {path.name} is damaged "
                        f"at offset {good}")
                with open(path, "rb+") as handle:
                    handle.truncate(good)
                    handle.flush()
                    os.fsync(handle.fileno())
                truncated_bytes = len(data) - good
                truncated_segment = segment
            self._segment_records[segment] = records
            total_records += records
        self.recovery = LogRecovery(
            segments=len(segments), records=total_records,
            bytes_scanned=total_bytes, truncated_bytes=truncated_bytes,
            truncated_segment=truncated_segment)
        self.segment = segments[-1]
        path = self.directory / _segment_name(self.segment)
        self._offset = path.stat().st_size
        self._handle = open(path, "ab", buffering=0)
        self._unsynced = 0
        self._append_index = 0
        self.appends = 0
        self.syncs = 0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @property
    def synced(self) -> bool:
        """True when every acknowledged record has been fsynced."""
        return self._unsynced == 0

    @property
    def lag_records(self) -> int:
        """Records not yet folded into a base (since last checkpoint)."""
        return sum(self._segment_records.values())

    def disk_bytes(self) -> int:
        """Bytes the log holds on disk (segments, manifest, bases) —
        the WAL's entry in the memory/storage ledger."""
        total = 0
        try:
            for entry in self.directory.iterdir():
                try:
                    if entry.is_file():
                        total += entry.stat().st_size
                except OSError:
                    continue
        except OSError:
            return total
        return total

    def append(self, payload: bytes, sync: bool | None = None
               ) -> LogPosition:
        """Durably append one record; returns where it landed.

        ``sync=None`` follows the batched-fsync policy; ``True``
        forces an immediate fsync, ``False`` defers it.  On any write
        failure the segment is rolled back to its pre-append offset
        and :class:`WalWriteError` is raised — the log never retains a
        half-written record from a *surviving* process.
        """
        if self._handle is None:
            raise WalError("log is closed")
        data = encode_record(payload)
        record_index = self._append_index
        start = self._offset
        try:
            wire = data
            if self._fault is not None:
                wire = self._fault.on_append(record_index, data)
            written = self._handle.write(wire)
            if written != len(wire):
                raise OSError(28, "short write")
        except OSError as exc:
            self._rollback(start)
            raise WalWriteError(
                f"append failed and was rolled back: {exc}") from exc
        self._offset = start + len(wire)
        if len(wire) < len(data):
            # A torn record exists on disk only because the process
            # died mid-write.  Persist the damage so the next open
            # sees exactly what a real crash would leave, then let the
            # fault simulate the death.
            os.fsync(self._handle.fileno())
            if self._fault is not None:
                self._fault.after_append(record_index)
            raise WalError("fault tore a record without crashing")
        self._append_index += 1
        self.appends += 1
        self._segment_records[self.segment] = (
            self._segment_records.get(self.segment, 0) + 1)
        self._unsynced += 1
        if sync or (sync is None and self._unsynced >= self.fsync_every):
            self.sync()
        if self._fault is not None:
            self._fault.after_append(record_index)
        return LogPosition(self.segment, start, record_index)

    def _rollback(self, offset: int) -> None:
        os.ftruncate(self._handle.fileno(), offset)
        os.fsync(self._handle.fileno())
        self._offset = offset

    def sync(self) -> None:
        """Flush the batched fsync now."""
        if self._handle is None or self._unsynced == 0:
            return
        os.fsync(self._handle.fileno())
        self._unsynced = 0
        self.syncs += 1

    # ------------------------------------------------------------------
    # Replay / rotation / checkpointing
    # ------------------------------------------------------------------
    def replay(self):
        """Yield every live payload in append order (already clean)."""
        for segment in sorted(self._segment_records):
            path = self.directory / _segment_name(segment)
            _, _, payloads = _scan_bytes(path.read_bytes())
            yield from payloads

    def rotate(self) -> int:
        """Seal the current segment and open the next one."""
        if self._handle is None:
            raise WalError("log is closed")
        self.sync()
        self._handle.close()
        self.segment += 1
        path = self.directory / _segment_name(self.segment)
        self._handle = open(path, "ab", buffering=0)
        _fsync_dir(self.directory)
        self._offset = 0
        self._segment_records[self.segment] = 0
        return self.segment

    def checkpoint(self, meta: dict, segment: int | None = None) -> None:
        """Atomically advance the manifest and drop folded segments.

        ``segment`` becomes the first live segment (defaults to the
        current one); everything older is deleted — its records are,
        by contract, folded into the base snapshot named in ``meta``.
        The manifest write is the commit point of a compaction.
        """
        if segment is None:
            segment = self.segment
        manifest = {"version": MANIFEST_VERSION, "segment": int(segment),
                    "meta": meta}
        write_manifest(self.directory, manifest)
        self.manifest = manifest
        for old in [seg for seg in self._segment_records if seg < segment]:
            path = self.directory / _segment_name(old)
            if path.exists():
                path.unlink()
            del self._segment_records[old]
        _fsync_dir(self.directory)

    def status(self) -> dict:
        segments = sorted(self._segment_records)
        return {
            "directory": str(self.directory),
            "segment": self.segment,
            "segments": segments,
            "lag_records": self.lag_records,
            "appends": self.appends,
            "syncs": self.syncs,
            "synced": self.synced,
            "manifest": dict(self.manifest),
        }

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None
