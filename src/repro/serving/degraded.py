"""Model-free degraded-mode ranking.

When the embed stage is broken (circuit open, retries exhausted) or
over its deadline slice, the service still answers: this ranker scores
corpus rows by lexical overlap with the query, using nothing but the
raw recipe payloads — no model forward pass, no index, no floating
point that can be poisoned by a sick model.

* ingredient queries (fridge search) rank by Jaccard overlap between
  the query ingredient set and each recipe's ingredient set;
* recipe queries rank by Jaccard overlap over the union of
  ingredients and title/instruction tokens;
* image queries carry no text, so degraded mode returns a
  deterministic class-filtered slate in corpus order (documented
  best-effort: availability over relevance).

Distances are ``1 - overlap`` so results sort ascending exactly like
the cosine distances of the healthy path.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import RecipeDataset
from ..data.encoding import EncodedCorpus
from ..data.schema import Recipe
from ..text import tokenize

__all__ = ["DegradedRanker"]


class DegradedRanker:
    """Lexical fallback ranker over one corpus generation.

    Built eagerly alongside each engine generation (at service start
    and on every hot-swap) so the fallback path never has to touch the
    model even to warm up.
    """

    def __init__(self, dataset: RecipeDataset, corpus: EncodedCorpus):
        self._class_ids = np.asarray(corpus.true_class_ids, dtype=np.int64)
        # Per-class candidate rows, computed once: under brownout the
        # ranker serves *every* request, so the per-query flatnonzero
        # scan would become the new hot path.
        self._candidate_cache: dict[int | None, np.ndarray] = {}
        self._ingredients: list[set[str]] = []
        self._tokens: list[set[str]] = []
        for row in range(len(corpus)):
            recipe = dataset[int(corpus.recipe_indices[row])]
            ingredients = {name.lower() for name in recipe.ingredients}
            tokens = set(tokenize(recipe.title))
            for sentence in recipe.instructions:
                tokens.update(tokenize(sentence))
            self._ingredients.append(ingredients)
            self._tokens.append(tokens | ingredients)

    def __len__(self) -> int:
        return len(self._ingredients)

    # -- queries -------------------------------------------------------
    def rank_ingredients(self, ingredients: list[str], k: int = 5,
                         class_id: int | None = None
                         ) -> tuple[np.ndarray, np.ndarray]:
        """Fridge search without a model: ingredient-set overlap."""
        query = {name.lower() for name in ingredients}
        return self._rank(query, self._ingredients, k, class_id)

    def rank_recipe(self, recipe: Recipe, k: int = 5,
                    class_id: int | None = None
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Recipe query without a model: ingredient + text overlap."""
        query = {name.lower() for name in recipe.ingredients}
        query.update(tokenize(recipe.title))
        for sentence in recipe.instructions:
            query.update(tokenize(sentence))
        return self._rank(query, self._tokens, k, class_id)

    def rank_default(self, k: int = 5, class_id: int | None = None
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Text-free fallback (image queries): class-filtered corpus
        order with sentinel distance 1.0."""
        rows = self._candidates(class_id)[:k]
        return rows, np.ones(len(rows))

    # -- internals -----------------------------------------------------
    def _candidates(self, class_id: int | None) -> np.ndarray:
        key = None if class_id is None else int(class_id)
        rows = self._candidate_cache.get(key)
        if rows is None:
            if key is None:
                rows = np.arange(len(self._class_ids))
            else:
                rows = np.flatnonzero(self._class_ids == key)
            self._candidate_cache[key] = rows
        if rows.size == 0:
            raise ValueError(f"no items of class {class_id} in corpus")
        return rows

    def _rank(self, query: set[str], pools: list[set[str]], k: int,
              class_id: int | None) -> tuple[np.ndarray, np.ndarray]:
        if k < 1:
            raise ValueError("k must be >= 1")
        rows = self._candidates(class_id)
        scores = np.zeros(rows.size)
        for position, row in enumerate(rows):
            pool = pools[int(row)]
            if query and pool:
                overlap = len(query & pool)
                if overlap:
                    scores[position] = overlap / len(query | pool)
        order = np.argsort(-scores, kind="stable")[:k]
        return rows[order], 1.0 - scores[order]
