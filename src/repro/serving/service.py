"""Fault-contained serving layer over :class:`RecipeSearchEngine`.

The engine itself is a bare library: a slow or NaN-poisoned embed, an
oversized burst of queries, or a corpus refresh mid-flight all fail
hard.  :class:`ResilientSearchService` wraps it in the containment a
production deployment needs:

* **admission control** — a bounded in-flight counter sheds excess
  load up front with a structured ``shed`` outcome instead of queueing
  unboundedly;
* **deadlines** — every request carries a cooperative time budget
  threaded through embed → index → materialize
  (:mod:`~repro.serving.deadline`);
* **retries + circuit breakers** — transient stage faults retry with
  exponential backoff and jitter; persistent faults trip a
  per-dependency breaker (:mod:`~repro.serving.retry`) so a broken
  model stops burning everyone's budget;
* **graceful degradation** — with the embed or index stage
  unavailable, requests are answered by the model-free
  :class:`~repro.serving.degraded.DegradedRanker` and marked
  ``degraded=True``;
* **sharded fan-out** — configured with ``shards > 1``, each
  generation's indexes are served by an
  :class:`~repro.serving.cluster.IndexCluster` (replicated shards,
  hedged requests, failover, anti-entropy); a fan-out that loses
  shards degrades to a ``partial`` outcome carrying
  ``shards_answered``/``shards_total`` instead of failing;
* **hot-swap** — :meth:`ResilientSearchService.swap_corpus` builds a
  new corpus+index generation aside, canary-validates it, and swaps a
  single reference under the lock (:mod:`~repro.serving.hotswap`);
* **streaming ingest** — configured with an ``ingest_log`` directory,
  :meth:`ResilientSearchService.ingest` /
  :meth:`~ResilientSearchService.delete` append crash-safe WAL records
  and apply them to a delta overlay merged exactly into every search
  (:mod:`~repro.serving.ingest`);
  :meth:`~ResilientSearchService.compact_ingest` folds the deltas into
  a new canary-validated base generation;
* **outcome records** — every request, including shed and timed-out
  ones, produces a :class:`RequestOutcome`; the public search methods
  never raise for operational faults;
* **telemetry** — every request runs inside a
  :class:`~repro.obs.tracing.Span` with one child span per stage
  (admit → embed → index → materialize, or the degraded fallback),
  feeding
  per-stage latency histograms, deadline-remaining histograms, outcome
  counters by status, breaker-state gauges, and hot-swap events into
  the shared :class:`~repro.obs.Telemetry` registry.

All time and randomness are injected (``clock``, ``sleep``, ``rng``)
so chaos tests run on a fake clock with zero real sleeping.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from collections import Counter, deque
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from ..core.engine import RecipeSearchEngine, SearchResult
from ..data.schema import Recipe
from ..obs import LATENCY_BUCKETS, Telemetry
from ..obs.drift import DriftMonitor, DriftReference
from ..obs.memledger import MemoryLedger, ndarray_bytes, ring_bytes
from ..obs.profiler import SamplingProfiler
from ..robustness.faults import SimulatedCrash
from .admission import (SHED_REASONS, AdmissionConfig,
                        AdmissionController, AdmissionDecision)
from .cluster import ClusterConfig, ClusterResult, IndexCluster
from .deadline import Deadline, DeadlineExceeded
from .degraded import DegradedRanker
from .hotswap import EngineGeneration, SwapReport, run_canaries
from .ingest import (IngestAck, IngestConfig, IngestError, IngestOp,
                     Ingestor, payload_to_recipe, recipe_to_payload)
from .retry import CircuitBreaker, CircuitState, RetryPolicy
from .wal import WalWriteError

__all__ = ["ServiceConfig", "RequestOutcome", "ServiceResponse",
           "IngestOutcome", "ResilientSearchService", "STATUSES",
           "INGEST_STATUSES", "BREAKER_STATE_VALUES", "SHED_REASONS"]

#: Every request resolves to exactly one of these.
STATUSES = ("ok", "partial", "degraded", "shed", "timeout", "invalid",
            "error")

#: Every ingest/delete call resolves to exactly one of these.
INGEST_STATUSES = ("ok", "invalid", "error", "unavailable")

#: Gauge encoding of breaker states (closed is the healthy zero).
BREAKER_STATE_VALUES = {CircuitState.CLOSED: 0,
                        CircuitState.HALF_OPEN: 1,
                        CircuitState.OPEN: 2}


class _StageUnavailable(RuntimeError):
    """Internal: a resilient stage gave up (breaker open, retries
    exhausted, or its budget slice drained); triggers the degraded
    fallback rather than failing the request."""

    def __init__(self, stage: str, reason: str):
        super().__init__(f"{stage} unavailable: {reason}")
        self.stage = stage
        self.reason = reason


class _IngestEngine(RecipeSearchEngine):
    """Engine variant that can materialize streamed rows.

    With ingest on, result rows may lie beyond the frozen corpus
    (streamed adds) or belong to corpus rows whose payload an upsert
    superseded; both resolve through the ingestor's live payload
    store.  Canary validation and generation hooks call
    ``engine.materialize`` directly, so the engine itself — not just
    the service request path — must know how.
    """

    def __init__(self, model, featurizer, dataset, corpus, indexes,
                 ingestor: Ingestor):
        super().__init__(model, featurizer, dataset, corpus,
                         indexes=indexes)
        self._ingestor = ingestor

    def materialize(self, rows, distances):
        corpus_len = len(self.corpus)
        results = []
        for row, distance in zip(rows, distances):
            row = int(row)
            payload = self._ingestor.payloads.get(row)
            if payload is not None or row >= corpus_len:
                results.append(SearchResult(
                    recipe=payload_to_recipe(payload, row),
                    distance=float(distance), corpus_row=row))
            else:
                results.extend(super().materialize(
                    np.array([row]), np.array([float(distance)])))
        return results


@dataclass(frozen=True)
class ServiceConfig:
    """Resilience knobs; the defaults suit interactive serving."""

    deadline: float = 1.0              # seconds per request
    embed_budget_fraction: float = 0.5  # embed's slice of the budget
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failure_threshold: int = 3
    breaker_reset_after: float = 5.0   # seconds open before half-open
    breaker_half_open_successes: int = 2
    max_inflight: int = 8              # admission bound; excess is shed
    #: Adaptive overload control (token buckets, fair queuing, AIMD
    #: concurrency, brownout ladder).  ``None`` keeps the legacy
    #: static ``max_inflight`` counter with immediate shedding.
    admission: AdmissionConfig | None = None
    canary_queries: int = 3            # per hot-swap validation
    outcome_log_size: int = 512        # ring buffer of RequestOutcomes
    degraded_enabled: bool = True
    #: ``shards > 1`` serves each generation's indexes from an
    #: :class:`~repro.serving.cluster.IndexCluster` with this many
    #: shards and ``replicas`` copies of each; 1 keeps the monolithic
    #: single-index path.
    shards: int = 1
    replicas: int = 2
    #: Full cluster tuning; when given it wins over the ``shards`` /
    #: ``replicas`` shorthand (and enables the cluster path whenever
    #: its ``num_shards`` calls for one).
    cluster: ClusterConfig | None = None


@dataclass(frozen=True)
class RequestOutcome:
    """Structured record of one request, whatever its fate."""

    request_id: int
    kind: str                 # ingredients | recipe | image | without
    status: str               # one of STATUSES
    degraded: bool
    attempts: int             # embed-stage attempts actually made
    generation: int           # engine generation that served it
    latency: float            # seconds, admission to response
    stage: str | None = None  # stage the request fell over at, if any
    error: str | None = None  # human-readable fault description
    #: Per-stage wall time in milliseconds, from the request span's
    #: child spans (admit / embed / index / materialize / degraded).
    #: Stages a request never reached are absent.
    stage_ms: dict = field(default_factory=dict)
    #: Cluster fan-out coverage; ``None`` outside the cluster path.
    #: ``shards_answered < shards_total`` is exactly the ``partial``
    #: status: the answer covers only the shards that made it.
    shards_total: int | None = None
    shards_answered: int | None = None
    #: Which tenant the request was billed to ("default" when the
    #: caller named none).
    tenant: str = "default"
    #: For ``shed`` outcomes, one of
    #: :data:`~repro.serving.admission.SHED_REASONS` — rate-limit vs
    #: queue-full vs in-queue expiry are different operator actions.
    shed_reason: str | None = None
    #: Where this request's deadline budget came from: ``"default"``
    #: (the service config — nobody chose it), ``"caller"`` (an
    #: explicit in-process argument), or ``"header"`` (the gateway's
    #: ``X-Deadline-Ms``).  Distinguishes a deliberately tight budget
    #: from a silently defaulted one when reading timeout outcomes.
    deadline_source: str = "default"


@dataclass(frozen=True)
class ServiceResponse:
    """What callers get back — results plus the outcome record."""

    results: tuple[SearchResult, ...]
    degraded: bool
    generation: int
    outcome: RequestOutcome

    @property
    def ok(self) -> bool:
        """Did the request produce an answer (possibly degraded or
        covering only part of the corpus)?"""
        return self.outcome.status in ("ok", "partial", "degraded")


@dataclass(frozen=True)
class IngestOutcome:
    """Structured record of one streaming mutation, whatever its fate.

    Like search, the ingest entry points never raise for operational
    faults — a full disk or an unknown id comes back as a status here
    (the one exception is :class:`SimulatedCrash`, which by definition
    models the process dying and must propagate).  ``epoch`` is the
    delta epoch the mutation landed in; a compaction bumps it together
    with the serving generation.
    """

    op: str                   # add | delete | compact
    status: str               # one of INGEST_STATUSES
    item_id: int | None
    generation: int
    epoch: int
    latency: float
    durable: bool = False
    replaced: bool = False
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class _RequestTrace:
    """Mutable per-request bookkeeping shared across stages."""

    __slots__ = ("attempts",)

    def __init__(self):
        self.attempts = 0


class _StaticAdmission:
    """The legacy bounded-counter admission path behind the same
    acquire/release surface as :class:`AdmissionController`, so the
    request pipeline has exactly one shape.  No queue, no tenants, no
    brownout: excess load sheds immediately."""

    brownout = None

    def __init__(self, max_inflight: int):
        self._max_inflight = int(max_inflight)
        self._lock = threading.Lock()
        self._inflight = 0

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def limit(self) -> int:
        return self._max_inflight

    def acquire(self, tenant: str, criticality: str | None,
                deadline: Deadline) -> AdmissionDecision:
        criticality = criticality or "user"
        with self._lock:
            if self._inflight < self._max_inflight:
                self._inflight += 1
                return AdmissionDecision(True, tenant, criticality)
        return AdmissionDecision(
            False, tenant, criticality, reason="inflight_limit",
            detail=f"load shed: {self._max_inflight} requests "
                   f"already in flight")

    def release(self, latency_s: float) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)

    def snapshot(self) -> dict:
        with self._lock:
            return {"mode": "static", "limit": self._max_inflight,
                    "inflight": self._inflight, "queued": 0}


class ResilientSearchService:
    """Wrap an engine in deadlines, breakers, shedding, and hot-swap.

    Parameters
    ----------
    engine:
        The initial :class:`RecipeSearchEngine` (generation 0).
    config:
        Resilience knobs; defaults are sensible for tests and demos.
    clock, sleep, rng:
        Injectable time and jitter sources (fake them under test).
    faults:
        Optional :class:`~repro.robustness.faults.ServingFault` hook
        object; production passes ``None``.
    cluster_faults:
        Optional :class:`~repro.robustness.faults.ClusterFault` hook
        object threaded into every generation's clusters (only
        meaningful with ``shards > 1``).
    telemetry:
        Optional shared :class:`~repro.obs.Telemetry`.  A private
        in-memory instance (on the service clock) is created when
        omitted, so the metrics and spans below always exist.
    drift_reference:
        Optional training-time
        :class:`~repro.obs.drift.DriftReference`; when given, every
        successful index-stage result feeds the service's
        :class:`~repro.obs.drift.DriftMonitor` and PSI drift scores
        are exported per signal.  Without it the monitor is inert.
    ingest_log:
        Optional directory for the streaming-ingest write-ahead log.
        When given, the service boots by *recovering* from it — folded
        base snapshot (if a compaction committed) plus log replay —
        and exposes :meth:`ingest` / :meth:`delete` /
        :meth:`compact_ingest`.  Search then runs over the exact
        base ∪ delta merge.  Without it, the ingest entry points
        answer ``unavailable``.
    ingest_config:
        Optional :class:`~repro.serving.ingest.IngestConfig` (fsync
        batching, auto-compaction threshold).
    ingest_faults:
        Optional :class:`~repro.robustness.faults.IngestFault` hook
        object threaded into the WAL and the compaction protocol.
    """

    def __init__(self, engine: RecipeSearchEngine,
                 config: ServiceConfig | None = None, *,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 rng: random.Random | None = None,
                 faults=None, cluster_faults=None,
                 telemetry: Telemetry | None = None,
                 drift_reference: DriftReference | None = None,
                 ingest_log=None,
                 ingest_config: IngestConfig | None = None,
                 ingest_faults=None):
        self._config = config or ServiceConfig()
        self._clock = clock
        self._sleep = sleep
        self._rng = rng or random.Random(0)
        self._faults = faults
        self._cluster_faults = cluster_faults
        self._lock = threading.Lock()
        # Serializes mutations (ingest/delete/compaction commit)
        # against each other; queries never take it.  Lock order is
        # always ingest lock -> service lock, never the reverse.
        self._ingest_lock = threading.RLock()
        self._next_request_id = 0
        self._next_ingest_id = 0
        self._status_counts: Counter[str] = Counter()
        self.telemetry = telemetry or Telemetry(clock=clock)
        self._setup_metrics()
        #: The admission control plane: adaptive (token buckets, fair
        #: queuing, AIMD concurrency, brownout ladder) when the config
        #: carries an :class:`AdmissionConfig`, else the legacy static
        #: counter behind the same acquire/release surface.
        if self._config.admission is not None:
            self.admission = AdmissionController(
                self._config.admission, clock=clock, sleep=sleep,
                registry=self.telemetry.registry,
                events=self.telemetry.events,
                tracer=self.telemetry.tracer)
        else:
            self.admission = _StaticAdmission(self._config.max_inflight)
        self.drift = DriftMonitor(
            drift_reference, registry=self.telemetry.registry,
            on_scores=lambda scores: self.telemetry.events.emit(
                "drift", **scores))
        #: Generation-change hooks, called as ``hook(generation,
        #: engine)`` after every successful hot-swap; dict returns are
        #: merged into the swap report's ``quality_baseline``.  The
        #: golden probe registers here to re-baseline per generation.
        self.on_generation: list[Callable] = []
        self.ingestor: Ingestor | None = None
        if ingest_log is not None:
            self.ingestor = Ingestor(
                ingest_log,
                {"image": engine.image_index,
                 "recipe": engine.recipe_index},
                config=ingest_config, telemetry=self.telemetry,
                faults=ingest_faults)
            # Rebuild the engine over the ingestor's recovered bases
            # (the caller's indexes, or the folded snapshot when a
            # committed compaction superseded them — adopted verbatim,
            # no re-encode) with payload-aware materialize on top.
            engine = _IngestEngine(
                engine.model, engine.featurizer, engine.dataset,
                engine.corpus,
                (self.ingestor.bases["image"],
                 self.ingestor.bases["recipe"]),
                self.ingestor)
        self._active = self._make_generation(0, engine)
        # Trace link from the most recent ingest span to the background
        # compaction it may trigger (see compact_ingest).
        self._last_ingest_ctx = None
        if self.ingestor is not None:
            self._replay_overlay_into_clusters(self._active)
        self.embed_breaker = CircuitBreaker(
            "embed", self._config.breaker_failure_threshold,
            self._config.breaker_reset_after,
            self._config.breaker_half_open_successes, clock=clock,
            on_transition=self._on_breaker_transition)
        self.index_breaker = CircuitBreaker(
            "index", self._config.breaker_failure_threshold,
            self._config.breaker_reset_after,
            self._config.breaker_half_open_successes, clock=clock,
            on_transition=self._on_breaker_transition)
        for dependency in ("embed", "index"):
            self._m_breaker_state.labels(dependency=dependency).set(0)
        self._m_generation.set(0)
        self.outcomes: deque[RequestOutcome] = deque(
            maxlen=self._config.outcome_log_size)
        self.ingest_outcomes: deque[IngestOutcome] = deque(
            maxlen=self._config.outcome_log_size)
        self.swaps: list[SwapReport] = []
        #: Per-component memory ledger + sampling profiler.  The
        #: ledger is always live (reporters are just callbacks); the
        #: profiler is constructed idle and started by the CLI's
        #: ``--profile-hz``, an alert-triggered capture window, or a
        #: direct ``start_profiler`` call.
        self.memory = MemoryLedger(registry=self.telemetry.registry,
                                   clock=clock)
        self.profiler = SamplingProfiler(
            tracer=self.telemetry.tracer,
            registry=self.telemetry.registry)
        self._register_memory_reporters()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _register_memory_reporters(self) -> None:
        """Teach the ledger where this service's bytes live: index
        rows, ingest overlay + WAL-on-disk, telemetry ring buffers,
        admission queue, outcome logs.  Every reporter reads the
        *current* generation through ``self`` so hot-swaps are
        reflected without re-registration."""
        def index_bytes() -> dict:
            engine = self._active.engine
            return {
                "image": ndarray_bytes(engine.image_index.embeddings,
                                       engine.image_index.ids,
                                       engine.image_index.class_ids),
                "recipe": ndarray_bytes(engine.recipe_index.embeddings,
                                        engine.recipe_index.ids,
                                        engine.recipe_index.class_ids),
            }

        self.memory.register("index", index_bytes)
        if self.ingestor is not None:
            self.memory.register("overlay", lambda: sum(
                overlay.retained_bytes()
                for overlay in self.ingestor.overlays.values()))
            self.memory.register("wal_disk",
                                 self.ingestor.log.disk_bytes)
        self.memory.register("tracer_ring",
                             self.telemetry.tracer.retained_bytes)
        self.memory.register("event_ring",
                             self.telemetry.events.retained_bytes)
        if self.telemetry.sampler is not None:
            self.memory.register(
                "trace_sampler", self.telemetry.sampler.retained_bytes)
        admission_bytes = getattr(self.admission, "retained_bytes",
                                  None)
        if admission_bytes is not None:
            self.memory.register("admission_queue", admission_bytes)
        self.memory.register("outcome_ring", lambda: (
            ring_bytes(self.outcomes)
            + ring_bytes(self.ingest_outcomes)))

    def start_profiler(self, hz: float | None = None
                       ) -> "SamplingProfiler":
        """Start continuous sampling (``--profile-hz`` entry point)."""
        if hz is not None:
            self.profiler.set_hz(hz)
        self.profiler.start()
        return self.profiler

    def _setup_metrics(self) -> None:
        registry = self.telemetry.registry
        self._m_requests = registry.counter(
            "serving_requests_total", "requests by kind and outcome",
            labels=("kind", "status"))
        self._m_request_latency = registry.histogram(
            "serving_request_seconds",
            "request latency, admission to response",
            buckets=LATENCY_BUCKETS)
        self._m_stage_latency = registry.histogram(
            "serving_stage_seconds", "per-stage latency",
            labels=("stage",), buckets=LATENCY_BUCKETS)
        self._m_deadline_remaining = registry.histogram(
            "serving_deadline_remaining_seconds",
            "request budget left when each stage started",
            labels=("stage",), buckets=LATENCY_BUCKETS)
        self._m_attempts = registry.counter(
            "serving_stage_attempts_total",
            "dependency call attempts, including retries",
            labels=("stage",))
        self._m_breaker_state = registry.gauge(
            "serving_breaker_state",
            "0 closed, 1 half-open, 2 open", labels=("dependency",))
        self._m_breaker_transitions = registry.counter(
            "serving_breaker_transitions_total",
            "breaker state changes", labels=("dependency", "state"))
        self._m_inflight = registry.gauge(
            "serving_inflight", "requests currently admitted")
        self._m_generation = registry.gauge(
            "serving_generation", "active engine generation")
        self._m_swaps = registry.counter(
            "serving_swaps_total", "hot-swap attempts by result",
            labels=("result",))
        self._m_canaries = registry.counter(
            "serving_canaries_total", "canary queries run during swaps")
        self._m_ingest = registry.counter(
            "ingest_requests_total",
            "streaming ingest requests by op and outcome",
            labels=("op", "status"))
        self._m_shed = registry.counter(
            "requests_shed_total",
            "requests shed at admission by reason and tenant",
            labels=("reason", "tenant"))

    def _on_breaker_transition(self, name: str,
                               state: CircuitState) -> None:
        self._m_breaker_state.labels(dependency=name).set(
            BREAKER_STATE_VALUES[state])
        self._m_breaker_transitions.labels(dependency=name,
                                           state=state.value).inc()
        self.telemetry.events.emit("breaker", dependency=name,
                                   state=state.value)

    @contextlib.contextmanager
    def _stage_span(self, stage: str, budget: Deadline):
        """Child span + latency/deadline histograms for one stage."""
        remaining = max(budget.remaining(), 0.0)
        self._m_deadline_remaining.labels(stage=stage).observe(remaining)
        start = self._clock()
        with self.telemetry.tracer.span(
                stage, deadline_remaining_s=remaining) as span:
            try:
                yield span
            finally:
                # The trace id rides along as an OpenMetrics exemplar:
                # a hot p99 bucket links straight to a kept trace.
                self._m_stage_latency.labels(stage=stage).observe(
                    self._clock() - start, trace_id=span.trace_id)

    # ------------------------------------------------------------------
    # Public search API — never raises for operational faults
    # ------------------------------------------------------------------
    def search_by_ingredients(self, ingredients: list[str], k: int = 5,
                              class_name: str | None = None,
                              deadline: float | None = None,
                              tenant: str = "default",
                              criticality: str | None = None,
                              deadline_source: str | None = None
                              ) -> ServiceResponse:
        """Resilient fridge search (ingredient list → dishes)."""
        ingredients = list(ingredients)
        return self._serve(
            "ingredients", k, class_name, deadline,
            embed=lambda engine: engine.embed_ingredients(ingredients),
            fallback=lambda ranker, class_id, k: ranker.rank_ingredients(
                ingredients, k, class_id),
            which_index="image", tenant=tenant, criticality=criticality,
            deadline_source=deadline_source)

    def search_by_recipe(self, recipe: Recipe, k: int = 5,
                         class_name: str | None = None,
                         deadline: float | None = None,
                         tenant: str = "default",
                         criticality: str | None = None,
                         deadline_source: str | None = None
                         ) -> ServiceResponse:
        """Resilient recipe → images search."""
        return self._serve(
            "recipe", k, class_name, deadline,
            embed=lambda engine: engine.embed_recipe(recipe),
            fallback=lambda ranker, class_id, k: ranker.rank_recipe(
                recipe, k, class_id),
            which_index="image", tenant=tenant, criticality=criticality,
            deadline_source=deadline_source)

    def search_by_image(self, image: np.ndarray, k: int = 5,
                        class_name: str | None = None,
                        deadline: float | None = None,
                        tenant: str = "default",
                        criticality: str | None = None,
                        deadline_source: str | None = None
                        ) -> ServiceResponse:
        """Resilient image → recipes search.

        Degraded mode has no pixels-to-text bridge, so the fallback is
        a deterministic class-filtered slate (availability over
        relevance — documented semantics).
        """
        return self._serve(
            "image", k, class_name, deadline,
            embed=lambda engine: engine.embed_image(image),
            fallback=lambda ranker, class_id, k: ranker.rank_default(
                k, class_id),
            which_index="recipe", tenant=tenant, criticality=criticality,
            deadline_source=deadline_source)

    def search_without(self, recipe: Recipe, ingredient: str, k: int = 5,
                       class_name: str | None = None,
                       deadline: float | None = None,
                       tenant: str = "default",
                       criticality: str | None = None,
                       deadline_source: str | None = None
                       ) -> ServiceResponse:
        """Resilient dietary-filter search (§5.3)."""
        edited = recipe.without_ingredient(ingredient)
        return self._serve(
            "without", k, class_name, deadline,
            embed=lambda engine: engine.embed_recipe(edited),
            fallback=lambda ranker, class_id, k: ranker.rank_recipe(
                edited, k, class_id),
            which_index="image", tenant=tenant, criticality=criticality,
            deadline_source=deadline_source)

    # ------------------------------------------------------------------
    # Generations
    # ------------------------------------------------------------------
    def _cluster_config(self) -> ClusterConfig | None:
        """The effective cluster topology, or ``None`` for the
        monolithic single-index path."""
        if self._config.cluster is not None:
            return self._config.cluster
        if self._config.shards > 1:
            return ClusterConfig(num_shards=self._config.shards,
                                 replication=self._config.replicas)
        return None

    def _make_generation(self, generation: int,
                         engine: RecipeSearchEngine) -> EngineGeneration:
        """Assemble one serving generation: engine + fallback, plus
        fresh clusters over both indexes when sharding is on."""
        fallback = DegradedRanker(engine.dataset, engine.corpus)
        cluster_config = self._cluster_config()
        if cluster_config is None:
            return EngineGeneration(generation, engine, fallback)
        return EngineGeneration(
            generation, engine, fallback,
            image_cluster=IndexCluster(
                engine.image_index, cluster_config, name="image",
                clock=self._clock, telemetry=self.telemetry,
                faults=self._cluster_faults),
            recipe_cluster=IndexCluster(
                engine.recipe_index, cluster_config, name="recipe",
                clock=self._clock, telemetry=self.telemetry,
                faults=self._cluster_faults))

    # ------------------------------------------------------------------
    # Hot-swap
    # ------------------------------------------------------------------
    def swap_corpus(self, corpus, dataset=None,
                    canary_queries: int | None = None,
                    drift_reference: DriftReference | None = None
                    ) -> SwapReport:
        """Atomically replace the serving corpus+indexes.

        Builds the candidate generation aside, canary-validates it,
        and only then swaps the active-generation reference.  On any
        failure the old generation keeps serving and the report says
        ``rolled_back=True``.  Never raises.

        ``drift_reference`` installs the new model/corpus generation's
        training-time sketches into the drift monitor; omitted, the
        previous reference carries over (live sketches still reset —
        drift is always measured within one generation).  After a
        successful swap every ``on_generation`` hook runs and their
        dict returns land in the report's ``quality_baseline``.
        """
        started = self._clock()
        old = self._active
        if self.ingestor is not None:
            # A wholesale corpus replacement would silently discard the
            # delta log's acknowledged writes; folding is the only
            # legal path to a new base while ingest is on.
            report = SwapReport(
                ok=False, generation=old.generation, canaries_run=0,
                failures=("corpus hot-swap is disabled while streaming "
                          "ingest is active; fold deltas with "
                          "compact_ingest() instead",),
                rolled_back=True)
            return self._record_swap(report, started)
        if dataset is None:
            dataset = old.engine.dataset
        canaries = (self._config.canary_queries
                    if canary_queries is None else canary_queries)
        try:
            # A poisoned corpus must surface as a canary veto, not as
            # FP warnings escaping from the side build.
            with np.errstate(all="ignore"):
                engine = RecipeSearchEngine(
                    old.engine.model, old.engine.featurizer, dataset,
                    corpus)
                candidate = self._make_generation(
                    old.generation + 1, engine)
        except Exception as exc:
            report = SwapReport(
                ok=False, generation=old.generation, canaries_run=0,
                failures=(f"candidate build failed: "
                          f"{type(exc).__name__}: {exc}",),
                rolled_back=True)
            return self._record_swap(report, started)
        run, failures = run_canaries(candidate, canaries)
        if failures:
            report = SwapReport(ok=False, generation=old.generation,
                                canaries_run=run,
                                failures=tuple(failures), rolled_back=True)
        else:
            with self._lock:
                self._active = candidate
            # The index dependency was replaced wholesale; its breaker
            # history belongs to the retired generation.
            self.index_breaker.reset()
            self.drift.start_generation(
                drift_reference if drift_reference is not None
                else self.drift.reference)
            report = SwapReport(ok=True, generation=candidate.generation,
                                canaries_run=run, failures=(),
                                rolled_back=False,
                                quality_baseline=self._run_generation_hooks(
                                    candidate))
        return self._record_swap(report, started)

    def _run_generation_hooks(self,
                              generation: EngineGeneration) -> dict | None:
        """Invoke ``on_generation`` hooks; merge their dict returns.

        A failing hook must not fail the swap (the new generation is
        already serving) — it is recorded in the baseline instead.
        """
        if not self.on_generation:
            return None
        baseline: dict = {}
        for hook in list(self.on_generation):
            try:
                payload = hook(generation.generation, generation.engine)
            except Exception as exc:
                baseline.setdefault("hook_failures", []).append(
                    f"{type(exc).__name__}: {exc}")
            else:
                if isinstance(payload, dict):
                    baseline.update(payload)
        return baseline or None

    def _record_swap(self, report: SwapReport,
                     started: float) -> SwapReport:
        report = replace(report, duration_s=self._clock() - started)
        self.swaps.append(report)
        self._m_swaps.labels(
            result="swapped" if report.ok else "rolled_back").inc()
        if report.canaries_run:
            self._m_canaries.inc(report.canaries_run)
        self._m_generation.set(report.generation)
        self.telemetry.events.emit(
            "swap", message=report.summary(), ok=report.ok,
            generation=report.generation, canaries=report.canaries_run,
            rolled_back=report.rolled_back,
            duration_ms=report.duration_s * 1000.0,
            quality_baseline=report.quality_baseline)
        return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self._active.generation

    @property
    def engine(self) -> RecipeSearchEngine:
        """The active generation's engine (read-only handle)."""
        return self._active.engine

    def stats(self) -> dict:
        """Operational counters for dashboards and tests."""
        stage_latency = {}
        for key, child in self._m_stage_latency.children():
            count = child.count
            if count == 0:
                continue
            total_ms = child.sum * 1000.0
            quantiles = child.quantiles((0.5, 0.95, 0.99))
            stage_latency[key[0]] = {
                "count": count,
                "total_ms": total_ms,
                "mean_ms": total_ms / count,
                "p50_ms": quantiles[0.5] * 1000.0,
                "p95_ms": quantiles[0.95] * 1000.0,
                "p99_ms": quantiles[0.99] * 1000.0,
            }
        with self._lock:
            active = self._active
            stats = {
                "requests": self._next_request_id,
                "inflight": self.admission.inflight,
                "admission": self.admission.snapshot(),
                "generation": active.generation,
                "statuses": dict(self._status_counts),
                "embed_breaker": self.embed_breaker.state.value,
                "index_breaker": self.index_breaker.state.value,
                "swaps": len(self.swaps),
                "stage_latency_ms": stage_latency,
            }
        stats["drift"] = self.drift.summary()
        stats["memory"] = self.memory.snapshot()
        profile = self.profiler.snapshot()
        stats["profiler"] = {key: profile[key] for key in
                             ("running", "hz", "samples", "windows",
                              "self_overhead")}
        if self.ingestor is not None:
            stats["ingest"] = self.ingestor.status()
        if active.image_cluster is not None:
            stats["cluster"] = {
                "image": active.image_cluster.describe(),
                "recipe": active.recipe_cluster.describe(),
            }
        return stats

    # ------------------------------------------------------------------
    # Request pipeline
    # ------------------------------------------------------------------
    def _serve(self, kind: str, k: int, class_name: str | None,
               deadline_s: float | None, embed, fallback,
               which_index: str, tenant: str = "default",
               criticality: str | None = None,
               deadline_source: str | None = None) -> ServiceResponse:
        started = self._clock()
        generation = self._active  # snapshot: the whole request uses it
        # An explicit source (the gateway says "header") wins; else the
        # presence of a caller-chosen budget decides.
        deadline_source = deadline_source or (
            "caller" if deadline_s is not None else "default")
        budget = Deadline(deadline_s or self._config.deadline,
                          clock=self._clock)
        with self.telemetry.tracer.span(
                "request", kind=kind,
                generation=generation.generation) as span:
            with self._lock:
                request_id = self._next_request_id
                self._next_request_id += 1
            span.set_attribute("request_id", request_id)
            # The admit span covers any fair-queue wait, so queue time
            # shows up as admit-stage latency, not as mystery slack.
            with self._stage_span("admit", budget):
                decision = self.admission.acquire(tenant, criticality,
                                                  budget)
            if not decision.admitted:
                return self._finish(
                    request_id, kind, "shed", generation, started,
                    stage="admission", span=span, error=decision.detail,
                    tenant=tenant, shed_reason=decision.reason,
                    deadline_source=deadline_source)
            self._m_inflight.set(self.admission.inflight)
            trace = _RequestTrace()
            try:
                try:
                    # Brownout effects, evaluated once per request
                    # against the ladder the admission plane steps.
                    brownout = self.admission.brownout
                    k_effective = k
                    hedge = None
                    force_degraded = False
                    if brownout is not None:
                        if brownout.active("hedge_off"):
                            hedge = False
                        if brownout.active("shrink_k"):
                            k_effective = max(
                                1, min(k, brownout.config.k_cap))
                        force_degraded = (
                            brownout.active("degraded")
                            and self._config.degraded_enabled)
                    class_id = generation.engine.resolve_class(class_name)
                    degraded_reason = None
                    fan_out = None
                    try:
                        if force_degraded:
                            raise _StageUnavailable(
                                "admission",
                                f"brownout ladder at level "
                                f"{brownout.level}: serving model-free")
                        # A deadline that died between grant and here
                        # must not burn an embed call.
                        budget.check("queue")
                        with self._stage_span("embed", budget):
                            vector = self._embed_stage(
                                generation, request_id, embed, budget,
                                trace)
                        with self._stage_span("index", budget):
                            rows, distances, fan_out = self._index_stage(
                                generation, request_id, vector,
                                k_effective, class_id, which_index,
                                budget, hedge)
                        status = ("partial"
                                  if fan_out is not None and fan_out.partial
                                  else "ok")
                        # Feed the drift monitor from the healthy
                        # path only — degraded answers have no model
                        # geometry to judge.
                        self.drift.observe_query(vector, distances)
                    except _StageUnavailable as exc:
                        fan_out = None
                        budget.check("degraded-fallback")
                        if not self._config.degraded_enabled:
                            return self._finish(
                                request_id, kind, "error", generation,
                                started, attempts=trace.attempts,
                                stage=exc.stage, error=str(exc),
                                span=span, tenant=tenant,
                                deadline_source=deadline_source)
                        with self._stage_span("degraded", budget):
                            rows, distances = fallback(
                                generation.fallback, class_id,
                                k_effective)
                        status = "degraded"
                        degraded_reason = str(exc)
                    budget.check("materialize")
                    with self._stage_span("materialize", budget):
                        results = generation.engine.materialize(
                            rows, distances)
                    return self._finish(
                        request_id, kind, status, generation, started,
                        results=results, attempts=trace.attempts,
                        error=degraded_reason, span=span,
                        fan_out=fan_out, tenant=tenant,
                        deadline_source=deadline_source)
                except DeadlineExceeded as exc:
                    return self._finish(
                        request_id, kind, "timeout", generation, started,
                        attempts=trace.attempts, stage=exc.stage,
                        error=str(exc), span=span, tenant=tenant,
                        deadline_source=deadline_source)
                except ValueError as exc:
                    return self._finish(
                        request_id, kind, "invalid", generation, started,
                        attempts=trace.attempts, error=str(exc),
                        span=span, tenant=tenant,
                        deadline_source=deadline_source)
                except Exception as exc:  # containment: no fault escapes
                    return self._finish(
                        request_id, kind, "error", generation, started,
                        attempts=trace.attempts,
                        error=f"{type(exc).__name__}: {exc}", span=span,
                        tenant=tenant, deadline_source=deadline_source)
            finally:
                self.admission.release(self._clock() - started)
                self._m_inflight.set(self.admission.inflight)

    def _embed_stage(self, generation: EngineGeneration, request_id: int,
                     embed, budget: Deadline,
                     trace: _RequestTrace) -> np.ndarray:
        """Embed with retries/backoff behind the embed breaker.

        The stage only consumes ``embed_budget_fraction`` of the
        remaining request budget for *retrying*: once the slice drains
        without a usable vector, it gives up so degraded mode can
        still answer inside the request deadline.  A slow-but-healthy
        embed that finishes within the overall budget is used as-is.
        """
        breaker = self.embed_breaker
        policy = self._config.retry
        slice_budget = budget.sub(self._config.embed_budget_fraction)
        last = "no attempts made"
        for attempt in range(policy.max_attempts):
            budget.check("embed")
            if slice_budget.expired:
                raise _StageUnavailable(
                    "embed", f"stage budget drained after "
                             f"{trace.attempts} attempts ({last})")
            if not breaker.allow():
                raise _StageUnavailable("embed", "circuit open")
            trace.attempts += 1
            self._m_attempts.labels(stage="embed").inc()
            vector = None
            try:
                if self._faults is not None:
                    self._faults.on_embed_start(request_id)
                candidate = embed(generation.engine)
                if self._faults is not None:
                    candidate = self._faults.on_embed_result(
                        request_id, candidate)
            except ValueError:
                raise  # caller error, not a dependency fault
            except DeadlineExceeded:
                raise
            except Exception as exc:
                breaker.record_failure()
                last = f"{type(exc).__name__}: {exc}"
            else:
                if np.all(np.isfinite(candidate)):
                    breaker.record_success()
                    budget.check("embed")  # slow success may blow it
                    return np.asarray(candidate)
                breaker.record_failure()
                last = "non-finite embedding vector"
            budget.check("embed")
            if attempt + 1 < policy.max_attempts and not slice_budget.expired:
                self._sleep(budget.clamp(policy.delay(attempt, self._rng)))
        raise _StageUnavailable("embed", f"retries exhausted ({last})")

    def _index_stage(self, generation: EngineGeneration, request_id: int,
                     vector: np.ndarray, k: int, class_id: int | None,
                     which_index: str, budget: Deadline,
                     hedge: bool | None = None
                     ) -> tuple[np.ndarray, np.ndarray,
                                ClusterResult | None]:
        """Index query with retries behind the index breaker.

        Non-finite distances (a corrupted index) count as failures;
        FP warnings are contained here on purpose — the guard *is* the
        containment.  With sharding on, the query fans out through the
        generation's :class:`IndexCluster` instead and the returned
        :class:`ClusterResult` reports shard coverage (``None`` on the
        monolithic path).
        """
        cluster = (generation.image_cluster if which_index == "image"
                   else generation.recipe_cluster)
        if cluster is not None:
            return self._cluster_stage(cluster, request_id, vector, k,
                                       class_id, budget, hedge)
        breaker = self.index_breaker
        policy = self._config.retry
        if self.ingestor is not None:
            # The overlay answers the exact base ∪ delta merge with the
            # same query() signature as the monolithic index.
            index = self.ingestor.overlays[which_index]
        else:
            index = (generation.engine.image_index
                     if which_index == "image"
                     else generation.engine.recipe_index)
        last = "no attempts made"
        for attempt in range(policy.max_attempts):
            budget.check("index")
            if not breaker.allow():
                raise _StageUnavailable("index", "circuit open")
            self._m_attempts.labels(stage="index").inc()
            try:
                if self._faults is not None:
                    self._faults.on_index_start(request_id, index)
                with np.errstate(all="ignore"):
                    rows, distances = index.query(vector, k=k,
                                                  class_id=class_id)
            except ValueError:
                raise
            except Exception as exc:
                breaker.record_failure()
                last = f"{type(exc).__name__}: {exc}"
            else:
                if np.all(np.isfinite(distances)):
                    breaker.record_success()
                    return rows, distances, None
                breaker.record_failure()
                last = "non-finite distances from index"
            budget.check("index")
            if attempt + 1 < policy.max_attempts:
                self._sleep(budget.clamp(policy.delay(attempt, self._rng)))
        raise _StageUnavailable("index", f"retries exhausted ({last})")

    def _cluster_stage(self, cluster: IndexCluster, request_id: int,
                       vector: np.ndarray, k: int,
                       class_id: int | None, budget: Deadline,
                       hedge: bool | None = None
                       ) -> tuple[np.ndarray, np.ndarray, ClusterResult]:
        """One fan-out through the generation's cluster.

        No service-level retry loop: the cluster already failed over
        through every live replica of every shard, so a second pass
        could only re-run the identical chain.  The index breaker
        watches whole-fan-out health — a fan-out no shard answers is a
        dependency failure; one that lost *some* shards still answered
        (the partial contract) and counts as a success.
        """
        breaker = self.index_breaker
        if not breaker.allow():
            raise _StageUnavailable("index", "circuit open")
        self._m_attempts.labels(stage="index").inc()
        if self._faults is not None:
            self._faults.on_index_start(request_id, cluster)
        result = cluster.query(vector, k=k, class_id=class_id,
                               deadline=budget, hedge=hedge)
        if result.shards_answered == 0:
            breaker.record_failure()
            raise _StageUnavailable(
                "index",
                f"no shards answered (0/{result.shards_total})")
        breaker.record_success()
        return result.ids, result.distances, result

    # ------------------------------------------------------------------
    # Streaming ingest — never raises for operational faults
    # ------------------------------------------------------------------
    def ingest(self, recipe: Recipe, image: np.ndarray | None = None,
               class_name: str | None = None) -> IngestOutcome:
        """Durably add one recipe (and optional dish image) to serving.

        The write is acknowledged only after it is applied to the WAL
        and the in-memory overlay; per the durability contract it
        survives a crash once the log record hits the OS (fsynced per
        the configured batching policy — ``durable`` on the outcome
        says whether this write's batch has been synced).  Operational
        faults (disk full, bad input) come back as structured outcomes
        with ``status`` in :data:`INGEST_STATUSES`; this method never
        raises for them.
        """
        started = self._clock()
        generation = self._active
        with self.telemetry.tracer.span("ingest", op="add") as span:
            self._last_ingest_ctx = span.context()
            if self.ingestor is None:
                return self._finish_ingest(
                    "add", "unavailable", None, generation, started,
                    span=span, error="streaming ingest is not enabled "
                                     "(no ingest_log configured)")
            try:
                with np.errstate(all="ignore"):
                    class_id = generation.engine.resolve_class(class_name)
                    if class_id is None:
                        class_id = int(recipe.true_class_id)
                    recipe_vec = generation.engine.embed_recipe(recipe)
                    if image is not None:
                        image_vec = generation.engine.embed_image(image)
                    else:
                        # No dish photo yet: park the item at the
                        # recipe embedding so both indexes stay id-
                        # aligned; a later upsert with pixels moves it.
                        image_vec = recipe_vec
            except ValueError as exc:
                return self._finish_ingest(
                    "add", "invalid", None, generation, started,
                    span=span, error=str(exc))
            except Exception as exc:
                return self._finish_ingest(
                    "add", "error", None, generation, started, span=span,
                    error=f"{type(exc).__name__}: {exc}")
            payload = recipe_to_payload(recipe)
            payload["class_id"] = int(class_id)
            try:
                with self._ingest_lock:
                    ack = self.ingestor.add(
                        {"image": image_vec, "recipe": recipe_vec},
                        class_id=int(class_id), payload=payload)
                    self._apply_ack_to_clusters(generation, ack)
            except SimulatedCrash:
                raise  # chaos-suite process death, not an outcome
            except WalWriteError as exc:
                return self._finish_ingest(
                    "add", "error", None, generation, started, span=span,
                    error=str(exc))
            except (IngestError, ValueError) as exc:
                return self._finish_ingest(
                    "add", "invalid", None, generation, started,
                    span=span, error=str(exc))
            self.drift.observe_query(
                np.asarray(recipe_vec, dtype=np.float64), np.empty(0))
            return self._finish_ingest(
                "add", "ok", ack, generation, started, span=span)

    def delete(self, item_id: int) -> IngestOutcome:
        """Durably tombstone one item (base or streamed).

        Deleting an id that is not live is ``invalid``, not an error —
        the caller raced another delete or guessed wrong.
        """
        started = self._clock()
        generation = self._active
        with self.telemetry.tracer.span("ingest", op="delete") as span:
            self._last_ingest_ctx = span.context()
            if self.ingestor is None:
                return self._finish_ingest(
                    "delete", "unavailable", None, generation, started,
                    span=span, error="streaming ingest is not enabled "
                                     "(no ingest_log configured)")
            try:
                with self._ingest_lock:
                    ack = self.ingestor.delete(int(item_id))
                    self._apply_ack_to_clusters(generation, ack)
            except SimulatedCrash:
                raise
            except WalWriteError as exc:
                return self._finish_ingest(
                    "delete", "error", int(item_id), generation, started,
                    span=span, error=str(exc))
            except KeyError as exc:
                return self._finish_ingest(
                    "delete", "invalid", int(item_id), generation,
                    started, span=span, error=str(exc.args[0]))
            return self._finish_ingest(
                "delete", "ok", ack, generation, started, span=span)

    def compact_ingest(self,
                       canary_queries: int | None = None) -> SwapReport:
        """Fold the delta overlay into a new frozen base, canary-first.

        The fold is built aside and canary-validated exactly like
        :meth:`swap_corpus`; only then does the WAL checkpoint commit
        it (the manifest write is the single commit point — dying on
        either side of it recovers without loss or double-apply).
        Writes that land while canaries run are replayed onto the new
        generation before it goes live, so a query stream racing the
        swap observes every acknowledged item exactly once.  Never
        raises for operational faults.
        """
        started = self._clock()
        old = self._active
        if self.ingestor is None:
            report = SwapReport(
                ok=False, generation=old.generation, canaries_run=0,
                failures=("streaming ingest is not enabled (no "
                          "ingest_log configured)",),
                rolled_back=True)
            return self._record_swap(report, started)
        canaries = (self._config.canary_queries
                    if canary_queries is None else canary_queries)
        tracer = self.telemetry.tracer
        # The compaction thread has no active span of its own; adopt
        # the triggering ingest's context so the fold shows up in that
        # trace instead of starting an orphan root.  A caller already
        # inside a span (CLI, tests) keeps its own lineage.
        link = (self._last_ingest_ctx if tracer.current() is None
                else None)
        with tracer.attach(link), \
                tracer.span("compaction", generation=old.generation):
            ticket = None
            try:
                ticket = self.ingestor.begin_compaction()
                with np.errstate(all="ignore"):
                    engine = _IngestEngine(
                        old.engine.model, old.engine.featurizer,
                        old.engine.dataset, old.engine.corpus,
                        (ticket.folded["image"],
                         ticket.folded["recipe"]),
                        self.ingestor)
                    candidate = self._make_generation(
                        old.generation + 1, engine)
                run, failures = run_canaries(candidate, canaries)
                if failures:
                    self.ingestor.abort_compaction(ticket)
                    report = SwapReport(
                        ok=False, generation=old.generation,
                        canaries_run=run, failures=tuple(failures),
                        rolled_back=True)
                    return self._record_swap(report, started)
                with self._ingest_lock:
                    _, replayed = self.ingestor.commit_compaction(ticket)
                    for op, key, replaced_key in replayed:
                        self._apply_replayed_to_clusters(
                            candidate, op, key, replaced_key)
                    with self._lock:
                        self._active = candidate
                self.index_breaker.reset()
                self.drift.start_generation(self.drift.reference)
                report = SwapReport(
                    ok=True, generation=candidate.generation,
                    canaries_run=run, failures=(), rolled_back=False,
                    quality_baseline=self._run_generation_hooks(
                        candidate))
                return self._record_swap(report, started)
            except SimulatedCrash:
                raise  # chaos-suite process death, not an outcome
            except Exception as exc:
                if ticket is not None:
                    with contextlib.suppress(Exception):
                        self.ingestor.abort_compaction(ticket)
                report = SwapReport(
                    ok=False, generation=old.generation, canaries_run=0,
                    failures=(f"compaction failed: "
                              f"{type(exc).__name__}: {exc}",),
                    rolled_back=True)
                return self._record_swap(report, started)

    def _apply_ack_to_clusters(self, generation: EngineGeneration,
                               ack: IngestAck) -> None:
        """Mirror one acknowledged delta into the sharded clusters."""
        self._apply_replayed_to_clusters(generation, ack.op, ack.key,
                                         ack.replaced_key)

    def _apply_replayed_to_clusters(self, generation: EngineGeneration,
                                    op: IngestOp, key: int,
                                    replaced_key: int | None) -> None:
        if generation.image_cluster is None:
            return
        clusters = {"image": generation.image_cluster,
                    "recipe": generation.recipe_cluster}
        for name, cluster in clusters.items():
            if op.kind == "add":
                if replaced_key is not None:
                    cluster.apply_delete(op.item_id, replaced_key)
                cluster.apply_add(op.item_id, op.vectors[name],
                                  op.class_id, key)
            else:
                cluster.apply_delete(op.item_id, key)

    def _replay_overlay_into_clusters(
            self, generation: EngineGeneration) -> None:
        """Boot-time replay: project recovered deltas into clusters.

        The clusters were just built over the recovered *base*, so the
        overlay's tombstones and live delta rows must be re-applied on
        top — same order as recovery (deletes of base items first,
        then adds keyed by their overlay slots, which ``apply_add``
        gap-fills past dead slots).
        """
        if generation.image_cluster is None:
            return
        clusters = {"image": generation.image_cluster,
                    "recipe": generation.recipe_cluster}
        for name, cluster in clusters.items():
            overlay = self.ingestor.overlays[name]
            for item_id, key in overlay.dead_base_items():
                cluster.apply_delete(item_id, key)
            for item_id, row, class_id, key in overlay.delta_entries():
                cluster.apply_add(item_id, row, class_id, key)

    def _finish_ingest(self, op: str, status: str, ack, generation,
                       started: float, *, span=None,
                       error: str | None = None) -> IngestOutcome:
        latency = self._clock() - started
        if isinstance(ack, IngestAck):
            item_id, epoch = ack.item_id, ack.epoch
            durable, replaced = ack.durable, ack.replaced
        else:
            item_id, epoch = ack, (self.ingestor.epoch
                                   if self.ingestor is not None else 0)
            durable = replaced = False
        outcome = IngestOutcome(
            op=op, status=status, item_id=item_id,
            generation=generation.generation, epoch=epoch,
            latency=latency, durable=durable, replaced=replaced,
            error=error)
        self.ingest_outcomes.append(outcome)
        self._next_ingest_id += 1
        self._m_ingest.labels(op=op, status=status).inc()
        if span is not None:
            span.set_attribute("status", status)
        self.telemetry.events.emit(
            "ingest", op=op, status=status, item_id=item_id,
            epoch=epoch, durable=durable,
            latency_ms=latency * 1000.0, error=error,
            level="info" if status == "ok" else "warn")
        return outcome

    def _finish(self, request_id: int, kind: str, status: str,
                generation: EngineGeneration, started: float, *,
                results=(), attempts: int = 0, stage: str | None = None,
                error: str | None = None, span=None,
                fan_out: ClusterResult | None = None,
                tenant: str = "default",
                shed_reason: str | None = None,
                deadline_source: str = "default") -> ServiceResponse:
        latency = self._clock() - started
        # Stage wall times come straight off the request span's closed
        # children, so the outcome record and the trace always agree.
        stage_ms: dict[str, float] = {}
        if span is not None:
            for child in span.children:
                stage_ms[child.name] = (stage_ms.get(child.name, 0.0)
                                        + child.duration * 1000.0)
            span.set_attribute("status", status)
            span.set_attribute("latency_s", latency)
        outcome = RequestOutcome(
            request_id=request_id, kind=kind, status=status,
            degraded=(status == "degraded"), attempts=attempts,
            generation=generation.generation,
            latency=latency, stage=stage, error=error,
            stage_ms=stage_ms,
            shards_total=(None if fan_out is None
                          else fan_out.shards_total),
            shards_answered=(None if fan_out is None
                             else fan_out.shards_answered),
            tenant=tenant, shed_reason=shed_reason,
            deadline_source=deadline_source)
        with self._lock:
            self.outcomes.append(outcome)
            self._status_counts[status] += 1
        self._m_requests.labels(kind=kind, status=status).inc()
        if status == "shed":
            self._m_shed.labels(reason=shed_reason or "inflight_limit",
                                tenant=tenant).inc()
        self._m_request_latency.observe(
            latency, trace_id=span.trace_id if span is not None
            else None)
        return ServiceResponse(
            results=tuple(results), degraded=outcome.degraded,
            generation=generation.generation, outcome=outcome)
