"""Cooperative per-request deadlines.

A :class:`Deadline` is created at admission time and threaded through
every stage of a request (embed → index → materialize).  Stages call
:meth:`Deadline.check` at their boundaries; a blown budget raises
:class:`DeadlineExceeded`, which the service maps to a structured
``timeout`` outcome rather than an unhandled exception.

Timeouts are *cooperative*: a stage is never preempted mid-computation.
The budget is checked between units of work, so a single slow stage
overruns by at most its own duration — acceptable for in-process
serving, and it keeps every code path single-threaded and
deterministic.

The clock is injectable so tests drive time with a fake clock instead
of real sleeps.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Deadline", "DeadlineExceeded"]


class DeadlineExceeded(RuntimeError):
    """A request ran out of budget at ``stage``."""

    def __init__(self, stage: str, budget: float, elapsed: float):
        super().__init__(
            f"deadline of {budget:.3f}s exceeded at stage {stage!r} "
            f"(elapsed {elapsed:.3f}s)")
        self.stage = stage
        self.budget = budget
        self.elapsed = elapsed


class Deadline:
    """A monotonically draining time budget for one request."""

    def __init__(self, budget: float,
                 clock: Callable[[], float] = time.monotonic):
        if budget <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget = float(budget)
        self._clock = clock
        self._start = clock()
        # Precomputed expiry instant: the expired fast path is one
        # clock read and one comparison, cheap enough for the
        # admission queue to gate every dequeue on it.
        self._expires_at = self._start + self.budget

    @property
    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> float:
        return self.budget - self.elapsed

    @property
    def expired(self) -> bool:
        """Exactly-zero remaining counts as expired: a request granted
        at the boundary has no budget left to do anything with."""
        return self._clock() >= self._expires_at

    def remaining_fraction(self) -> float:
        """Remaining budget as a fraction of the original, in [0, 1]."""
        return min(max(self.remaining() / self.budget, 0.0), 1.0)

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is gone."""
        if self.expired:
            raise DeadlineExceeded(stage, self.budget, self.elapsed)

    def clamp(self, seconds: float) -> float:
        """Bound a proposed sleep so it cannot outlive the budget."""
        return max(0.0, min(seconds, self.remaining()))

    def sub(self, fraction: float) -> "Deadline":
        """A child deadline over ``fraction`` of the remaining budget.

        Used to give the embed stage a bounded slice of the request
        budget: when the slice drains, the service stops retrying the
        model and falls back to degraded mode while the parent budget
        still has room to answer.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        return Deadline(max(self.remaining() * fraction, 1e-9),
                        clock=self._clock)
