"""Zero-downtime corpus/index hot-swap.

A corpus refresh must never be observable as a half-updated index.
The protocol:

1. **Build aside** — a full new :class:`RecipeSearchEngine` (both
   nearest-neighbour indexes) and its :class:`DegradedRanker` are
   constructed off to the side while the old generation keeps serving.
2. **Canary** — the candidate generation answers a handful of
   self-queries drawn from its own corpus; empty results or non-finite
   distances mark the candidate bad.
3. **Swap or roll back** — on success the service's active-generation
   pointer is replaced under its lock (a single reference assignment);
   on canary failure the candidate is discarded and the old generation
   keeps serving, untouched.

In-flight requests snapshot the generation once at admission, so a
request started on generation *n* completes entirely on generation
*n* — mixed-generation results are impossible by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.engine import RecipeSearchEngine
from .degraded import DegradedRanker

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .cluster import IndexCluster

__all__ = ["EngineGeneration", "SwapReport", "run_canaries"]


@dataclass(frozen=True)
class EngineGeneration:
    """One immutable serving generation under a generation id.

    Always carries the engine and its degraded fallback; when the
    service is configured with ``shards > 1`` it also carries the two
    sharded clusters (fridge/recipe queries hit the image cluster,
    image queries the recipe cluster).  Clusters are rebuilt from
    scratch for every generation — hot-swap replaces the whole
    topology atomically, replica health included.
    """

    generation: int
    engine: RecipeSearchEngine
    fallback: DegradedRanker
    image_cluster: IndexCluster | None = None
    recipe_cluster: IndexCluster | None = None


@dataclass(frozen=True)
class SwapReport:
    """Outcome of one :meth:`ResilientSearchService.swap_corpus` call.

    ``generation`` is the generation *active after the call* — the new
    one on success, the surviving old one on rollback.  ``duration_s``
    covers build-aside + canaries + the swap itself (service clock),
    so slow corpus refreshes are visible in the telemetry.
    """

    ok: bool
    generation: int
    canaries_run: int
    failures: tuple[str, ...]
    rolled_back: bool
    duration_s: float = 0.0
    #: Offline quality numbers recorded at swap time by generation
    #: hooks (e.g. the golden probe's baseline MedR/R@K) — what online
    #: metrics for this generation are judged against.  ``None`` when
    #: no hook is attached or the swap rolled back.
    quality_baseline: dict | None = None

    def summary(self) -> str:
        verdict = ("swapped" if self.ok
                   else f"rolled back ({len(self.failures)} failures)")
        return (f"swap -> generation {self.generation}: {verdict} "
                f"after {self.canaries_run} canaries "
                f"in {self.duration_s * 1000:.1f}ms")


def run_canaries(candidate: EngineGeneration, num_queries: int = 3
                 ) -> tuple[int, list[str]]:
    """Validate a candidate generation with self-queries.

    Recipe canaries: embed the first ``num_queries`` corpus recipes and
    query the image index; each must return a non-empty, finite,
    ascending-distance result list.  One ingredient canary exercises
    the fridge path (skipped if the sampled ingredients fall outside
    the trained vocabulary — an input property, not an engine fault).

    Returns ``(canaries_run, failures)``; an empty failure list means
    the candidate is safe to promote.
    """
    engine = candidate.engine
    failures: list[str] = []
    rows = min(int(num_queries), len(engine))
    run = 0
    # A poisoned candidate produces NaN distances; the point of the
    # canary is to *observe* them, so FP warnings must not escape.
    with np.errstate(all="ignore"):
        for row in range(rows):
            recipe = engine.dataset[int(engine.corpus.recipe_indices[row])]
            run += 1
            try:
                results = engine.search_by_recipe(
                    recipe, k=min(3, len(engine)))
            except Exception as exc:  # any canary crash is a veto
                failures.append(f"recipe canary row {row}: "
                                f"{type(exc).__name__}: {exc}")
                continue
            if not results:
                failures.append(f"recipe canary row {row}: empty results")
            elif not all(math.isfinite(r.distance) for r in results):
                failures.append(f"recipe canary row {row}: "
                                f"non-finite distances")
            else:
                distances = [r.distance for r in results]
                if distances != sorted(distances):
                    failures.append(f"recipe canary row {row}: "
                                    f"unsorted distances")
        if rows:
            recipe = engine.dataset[int(engine.corpus.recipe_indices[0])]
            if recipe.ingredients:
                run += 1
                try:
                    results = engine.search_by_ingredients(
                        recipe.ingredients[:2], k=min(3, len(engine)))
                    if not all(math.isfinite(r.distance) for r in results):
                        failures.append(
                            "ingredient canary: non-finite distances")
                except ValueError:
                    run -= 1  # out-of-vocabulary query: not a veto
                except Exception as exc:
                    failures.append(f"ingredient canary: "
                                    f"{type(exc).__name__}: {exc}")
    return run, failures
