"""Streaming corpus ingest: delta overlay over a frozen base index.

The paper's corpus is static; a production recipe service is not.
This module makes the corpus *incrementally* mutable without giving up
the repo's bitwise-exactness discipline:

- Every ``add``/``delete`` is first appended to a crash-safe
  write-ahead log (:mod:`repro.serving.wal`), then applied to a
  :class:`DeltaOverlay` — a tombstone mask over the frozen base
  :class:`~repro.retrieval.index.NearestNeighborIndex` plus an
  append-only block of new rows.
- Search is an exact base ∪ delta merge: both sides return
  ``(distance, merge-key)`` pairs and the cluster's lexsort merge
  (:func:`~repro.serving.sharding.merge_topk`) combines them.  Merge
  keys are order-isomorphic to positions in the *effective* corpus
  (live base rows in order, then live delta rows in slot order), so
  the merged result is bitwise identical to a monolithic index rebuilt
  from the same effective corpus — the property the hypothesis suite
  pins.
- Recovery replays the log over the base to reach bitwise-identical
  state: rows are normalized exactly once, at ingest time, and the
  *normalized* float64 bytes are what the log stores.
- Compaction folds the overlay into a new base snapshot with
  exactly-once semantics: the manifest checkpoint is the commit
  point.  Crash before it → old base + full log replay; crash after →
  new base + only the post-rotation segment.  No loss, no
  double-apply, in either case.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import threading
import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..data.schema import Recipe
from ..obs import Telemetry
from ..retrieval.distance import cosine_distances_to, normalize_rows
from ..retrieval.index import NearestNeighborIndex
from .sharding import merge_topk
from .wal import DeltaLog, LogPosition, read_manifest, replay_segments

__all__ = ["IngestError", "IngestOp", "IngestAck", "IngestConfig",
           "CompactionTicket", "CompactionReport", "DeltaOverlay",
           "Ingestor", "CompactionThread", "encode_op", "decode_op",
           "recipe_to_payload", "payload_to_recipe", "scan_log"]

_OP_ADD = 1
_OP_DELETE = 2
_OP_HEAD = struct.Struct("<Bq")     # (op code, item id)
_ADD_HEAD = struct.Struct("<qB")    # (class id, vector count)
_VEC_HEAD = struct.Struct("<I")     # payload/vector length prefix


class IngestError(RuntimeError):
    """Streaming-ingest failure that is not a WAL-layer fault."""


@dataclass(frozen=True)
class IngestOp:
    """One logged mutation, exactly as it replays.

    ``vectors`` maps index name -> already-normalized float64 row; the
    normalized bytes are what the log persists, so replay reproduces
    distances bit for bit without re-normalizing.
    """

    kind: str                                # "add" | "delete"
    item_id: int
    class_id: int = -1
    vectors: Mapping[str, np.ndarray] | None = None
    payload: dict | None = None


@dataclass(frozen=True)
class IngestAck:
    """Acknowledgement for one applied mutation.

    ``durable`` reports whether the batched fsync has covered the
    record yet (always true with ``fsync_every=1``).  ``key`` is the
    merge key the item now occupies (``replaced_key`` the one an
    upsert tombstoned) — what the cluster needs to mirror the change
    into its shards.
    """

    op: IngestOp
    item_id: int
    epoch: int
    replaced: bool
    durable: bool
    position: LogPosition
    key: int
    replaced_key: int | None = None


@dataclass(frozen=True)
class IngestConfig:
    """Tunables for the ingest pipeline."""

    #: Batched-fsync policy: acknowledge after the OS write, make
    #: durable every N records.  1 (default) = every ack is durable.
    fsync_every: int = 1
    #: Delta rows (adds + tombstones) that trigger the background
    #: compaction thread; ``None`` leaves compaction manual.
    compact_at_delta_rows: int | None = 256


@dataclass(frozen=True)
class CompactionTicket:
    """Sealed state handed from ``begin_compaction`` to commit/abort."""

    epoch: int
    folded: Mapping[str, NearestNeighborIndex]
    payloads: dict
    sealed_segment: int
    live_items: int


@dataclass(frozen=True)
class CompactionReport:
    """What one committed compaction folded."""

    epoch: int
    live_items: int
    folded_tombstones: int
    pending_replayed: int
    base_file: str


# ----------------------------------------------------------------------
# Op codec — fixed little-endian framing inside the WAL payload
# ----------------------------------------------------------------------
def encode_op(op: IngestOp) -> bytes:
    """Serialize one op to the WAL payload format (bitwise stable)."""
    if op.kind == "delete":
        return _OP_HEAD.pack(_OP_DELETE, op.item_id)
    if op.kind != "add":
        raise IngestError(f"unknown op kind: {op.kind!r}")
    if not op.vectors:
        raise IngestError("add op carries no vectors")
    buf = bytearray(_OP_HEAD.pack(_OP_ADD, op.item_id))
    names = sorted(op.vectors)
    buf += _ADD_HEAD.pack(op.class_id, len(names))
    for name in names:
        encoded = name.encode("utf-8")
        row = np.ascontiguousarray(op.vectors[name], dtype=np.float64)
        buf += struct.pack("<B", len(encoded)) + encoded
        buf += _VEC_HEAD.pack(row.size) + row.tobytes()
    blob = (b"" if op.payload is None
            else json.dumps(op.payload, sort_keys=True).encode("utf-8"))
    buf += _VEC_HEAD.pack(len(blob)) + blob
    return bytes(buf)


def decode_op(payload: bytes) -> IngestOp:
    """Inverse of :func:`encode_op`."""
    code, item_id = _OP_HEAD.unpack_from(payload, 0)
    offset = _OP_HEAD.size
    if code == _OP_DELETE:
        return IngestOp("delete", item_id)
    if code != _OP_ADD:
        raise IngestError(f"unknown op code: {code}")
    class_id, count = _ADD_HEAD.unpack_from(payload, offset)
    offset += _ADD_HEAD.size
    vectors: dict[str, np.ndarray] = {}
    for _ in range(count):
        (name_len,) = struct.unpack_from("<B", payload, offset)
        offset += 1
        name = payload[offset:offset + name_len].decode("utf-8")
        offset += name_len
        (size,) = _VEC_HEAD.unpack_from(payload, offset)
        offset += _VEC_HEAD.size
        row = np.frombuffer(payload, dtype=np.float64, count=size,
                            offset=offset).copy()
        offset += size * 8
        vectors[name] = row
    (blob_len,) = _VEC_HEAD.unpack_from(payload, offset)
    offset += _VEC_HEAD.size
    blob = payload[offset:offset + blob_len]
    extra = None if blob_len == 0 else json.loads(blob.decode("utf-8"))
    return IngestOp("add", item_id, class_id, vectors, extra)


# ----------------------------------------------------------------------
# Recipe <-> payload (what materialization needs, sans pixels)
# ----------------------------------------------------------------------
def recipe_to_payload(recipe: Recipe) -> dict:
    """The materializable subset of a recipe (pixels are not logged)."""
    return {
        "recipe_id": recipe.recipe_id,
        "title": recipe.title,
        "class_id": recipe.class_id,
        "true_class_id": recipe.true_class_id,
        "ingredients": list(recipe.ingredients),
        "instructions": list(recipe.instructions),
    }


def payload_to_recipe(payload: dict | None, item_id: int) -> Recipe:
    """Rebuild a servable recipe from a logged payload.

    The image was never persisted, so a placeholder pixel block stands
    in — search ranks by the logged embedding, not by pixels.  A
    missing payload (raw-vector ingest) still yields a well-formed
    stub so materialization can never raise.
    """
    payload = payload or {}
    return Recipe(
        recipe_id=str(payload.get("recipe_id", f"ingest-{item_id}")),
        title=str(payload.get("title", f"ingested item {item_id}")),
        class_id=payload.get("class_id"),
        true_class_id=int(payload.get("true_class_id", -1)),
        ingredients=list(payload.get("ingredients", ())),
        instructions=list(payload.get("instructions", ())),
        image=np.zeros((3, 1, 1)),
    )


# ----------------------------------------------------------------------
# Delta overlay
# ----------------------------------------------------------------------
class DeltaOverlay:
    """Tombstone mask + appended rows over one frozen base index.

    Merge-key scheme: base rows keep their base positions
    ``0..len(base)-1``; delta rows get ``len(base) + slot`` with slots
    assigned monotonically and never reused.  Deletion preserves the
    relative order of survivors, so keys are order-isomorphic to
    positions in the effective corpus and the ``(distance, key)``
    lexsort merge reproduces a monolithic rebuild's stable-argsort
    order exactly.

    Thread model: one writer (the ingest lock) and any number of
    racing readers.  Every mutation publishes row contents *before*
    bumping the published length ``_slots``, and readers snapshot
    ``_slots`` first — a racing query sees either the pre- or post-op
    corpus, never a torn row.
    """

    def __init__(self, base: NearestNeighborIndex):
        ids = np.asarray(base.ids)
        if len(np.unique(ids)) != len(ids):
            raise IngestError("base index ids must be unique for ingest")
        self.base = base
        self.offset = len(base)
        self._base_live = np.ones(len(base), dtype=bool)
        self._key_of = {int(item): int(pos)
                        for pos, item in enumerate(ids)}
        dim = base.embeddings.shape[1]
        capacity = 16
        self._rows = np.zeros((capacity, dim))
        self._ids = np.zeros(capacity, dtype=np.int64)
        self._class = np.full(capacity, -1, dtype=np.int64)
        self._live = np.zeros(capacity, dtype=bool)
        self._slots = 0

    # -- bookkeeping ---------------------------------------------------
    @property
    def delta_rows(self) -> int:
        """Physical delta rows (live adds) currently overlaid."""
        return int(np.count_nonzero(self._live[:self._slots]))

    @property
    def tombstones(self) -> int:
        """Dead rows (base + delta) the next fold will drop."""
        dead_base = self.offset - int(np.count_nonzero(self._base_live))
        dead_delta = self._slots - self.delta_rows
        return dead_base + dead_delta

    @property
    def live_count(self) -> int:
        return int(np.count_nonzero(self._base_live)) + self.delta_rows

    def retained_bytes(self) -> int:
        """Bytes held by the overlay's delta arrays and liveness
        bookkeeping (capacity, not just live rows — grown arrays stay
        allocated until the next fold)."""
        return int(self._rows.nbytes + self._ids.nbytes
                   + self._class.nbytes + self._live.nbytes
                   + self._base_live.nbytes)

    def is_live(self, item_id: int) -> bool:
        return int(item_id) in self._key_of

    def key_for(self, item_id: int) -> int:
        return self._key_of[int(item_id)]

    def row_for_key(self, key: int) -> np.ndarray:
        if key < self.offset:
            return self.base.embeddings[key]
        return self._rows[key - self.offset]

    # -- mutation (single writer) --------------------------------------
    def add(self, item_id: int, row: np.ndarray, class_id: int = -1
            ) -> int | None:
        """Overlay one already-normalized row; returns the merge key
        an upsert tombstoned (``None`` for a fresh add)."""
        item_id = int(item_id)
        replaced_key = None
        if item_id in self._key_of:
            replaced_key = self._tombstone(item_id)
        slot = self._slots
        if slot == len(self._rows):
            self._grow()
        self._rows[slot] = np.asarray(row, dtype=np.float64)
        self._ids[slot] = item_id
        self._class[slot] = int(class_id)
        self._live[slot] = True
        self._slots = slot + 1
        self._key_of[item_id] = self.offset + slot
        return replaced_key

    def delete(self, item_id: int) -> int:
        """Tombstone one live item; returns its (now dead) merge key."""
        item_id = int(item_id)
        if item_id not in self._key_of:
            raise KeyError(f"item {item_id} is not live")
        return self._tombstone(item_id)

    def _tombstone(self, item_id: int) -> int:
        key = self._key_of.pop(item_id)
        if key < self.offset:
            self._base_live[key] = False
        else:
            self._live[key - self.offset] = False
        return key

    def _grow(self) -> None:
        capacity = len(self._rows) * 2
        for name in ("_rows", "_ids", "_class", "_live"):
            old = getattr(self, name)
            grown = np.zeros((capacity,) + old.shape[1:], dtype=old.dtype)
            grown[:len(old)] = old
            setattr(self, name, grown)

    # -- queries (racing readers) --------------------------------------
    def query(self, vector: np.ndarray, k: int = 5,
              class_id: int | None = None
              ) -> tuple[np.ndarray, np.ndarray]:
        """Exact base ∪ delta top-``k`` as ``(item ids, distances)``."""
        keys, distances = self.query_keys(vector, k, class_id)
        return self.resolve_ids(keys), distances

    def query_keys(self, vector: np.ndarray, k: int = 5,
                   class_id: int | None = None
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` as ``(merge keys, distances)``."""
        base_part = self.base.query_positions(
            vector, k=k, class_id=class_id, mask=self._base_live)
        slots = self._slots          # snapshot before reading arrays
        selector = self._live[:slots]
        if class_id is not None:
            selector = selector & (self._class[:slots] == class_id)
        live = np.flatnonzero(selector)
        if live.size:
            distances = cosine_distances_to(self._rows[:slots][live],
                                            vector)
            order = np.argsort(distances, kind="stable")[:k]
            delta_part = ((self.offset + live[order]).astype(np.int64),
                          distances[order])
        else:
            delta_part = (np.empty(0, dtype=np.int64),
                          np.empty(0, dtype=np.float64))
        return merge_topk([base_part, delta_part], k)

    def resolve_ids(self, keys: np.ndarray) -> np.ndarray:
        """Map merge keys back to item ids."""
        keys = np.asarray(keys, dtype=np.int64)
        ids = np.empty(len(keys), dtype=np.int64)
        in_base = keys < self.offset
        ids[in_base] = self.base.ids[keys[in_base]]
        ids[~in_base] = self._ids[keys[~in_base] - self.offset]
        return ids

    # -- folding / replication -----------------------------------------
    def fold(self) -> NearestNeighborIndex:
        """The effective corpus as one frozen index, rows verbatim."""
        survivors = np.flatnonzero(self._base_live)
        folded = self.base.subset(survivors)
        slots = self._slots
        live = np.flatnonzero(self._live[:slots])
        if live.size == 0:
            return folded
        classes = (None if folded.class_ids is None
                   else self._class[:slots][live].copy())
        return folded.append_rows(self._rows[:slots][live].copy(),
                                  self._ids[:slots][live].copy(),
                                  classes)

    def dead_base_items(self) -> list[tuple[int, int]]:
        """``(item id, merge key)`` for every tombstoned base row."""
        dead = np.flatnonzero(~self._base_live)
        return [(int(self.base.ids[pos]), int(pos)) for pos in dead]

    def delta_entries(self):
        """Yield ``(item id, row, class id, merge key)`` per live slot."""
        slots = self._slots
        for slot in np.flatnonzero(self._live[:slots]):
            yield (int(self._ids[slot]), self._rows[slot],
                   int(self._class[slot]), self.offset + int(slot))


# ----------------------------------------------------------------------
# Ingestor — WAL + overlays + compaction protocol
# ----------------------------------------------------------------------
def _fsync_dir(directory: pathlib.Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_base_snapshot(path: pathlib.Path,
                         indexes: Mapping[str, NearestNeighborIndex],
                         payloads: dict, meta: dict) -> None:
    """Atomically persist folded bases (+ payload map) as one npz."""
    arrays: dict[str, np.ndarray] = {}
    for name, index in indexes.items():
        arrays[f"{name}__embeddings"] = index.embeddings
        arrays[f"{name}__ids"] = index.ids
        if index.class_ids is not None:
            arrays[f"{name}__class_ids"] = index.class_ids
    blob = json.dumps({str(k): v for k, v in payloads.items()},
                      sort_keys=True).encode("utf-8")
    arrays["__payloads"] = np.frombuffer(blob, dtype=np.uint8)
    head = json.dumps({"names": sorted(indexes), **meta},
                      sort_keys=True).encode("utf-8")
    arrays["__meta"] = np.frombuffer(head, dtype=np.uint8)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        np.savez(handle, **arrays)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _load_base_snapshot(path: pathlib.Path
                        ) -> tuple[dict, dict]:
    """Inverse of :func:`_write_base_snapshot` — rows adopted verbatim."""
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(data["__meta"].tobytes().decode("utf-8"))
        raw = data["__payloads"].tobytes().decode("utf-8") or "{}"
        payloads = {int(k): v for k, v in json.loads(raw).items()}
        indexes = {}
        for name in meta["names"]:
            classes = (data[f"{name}__class_ids"]
                       if f"{name}__class_ids" in data.files else None)
            indexes[name] = NearestNeighborIndex.from_normalized(
                data[f"{name}__embeddings"], data[f"{name}__ids"],
                classes)
    return indexes, payloads


class Ingestor:
    """Durable streaming mutations over a set of frozen base indexes.

    ``bases`` maps index name (``"image"``/``"recipe"`` for the
    engine) to the external base the log was opened over.  The first
    open fingerprints that base into the manifest; later opens verify
    the fingerprint (a log replays only over the corpus it was written
    against) and, once a compaction has committed, load the folded
    base snapshot instead — the external base is then only a
    compatibility check.

    All mutation entry points are serialized by an internal lock;
    queries go straight to the overlays, lock-free.
    """

    def __init__(self, log_dir: str | pathlib.Path,
                 bases: Mapping[str, NearestNeighborIndex], *,
                 config: IngestConfig | None = None,
                 telemetry: Telemetry | None = None,
                 faults=None):
        self.config = config or IngestConfig()
        self.telemetry = telemetry or Telemetry()
        self._faults = faults
        self._lock = threading.RLock()
        self.directory = pathlib.Path(log_dir)
        self._setup_metrics()
        self.log = DeltaLog(self.directory,
                            fsync_every=self.config.fsync_every,
                            fault=faults)
        fingerprint = {name: [int(len(index)),
                              int(index.embeddings.shape[1])]
                       for name, index in sorted(bases.items())}
        meta = dict(self.log.manifest.get("meta") or {})
        if not meta:
            meta = {"epoch": 0, "base": None, "external": fingerprint}
            self.log.checkpoint(meta, segment=self.log.segment)
        elif meta.get("external") != fingerprint:
            raise IngestError(
                f"ingest log at {self.directory} was written over a "
                f"different base corpus (expected {meta.get('external')},"
                f" got {fingerprint})")
        self._external = fingerprint
        self.epoch = int(meta.get("epoch", 0))
        self._base_file = meta.get("base")
        if self._base_file:
            folded, payloads = _load_base_snapshot(
                self.directory / self._base_file)
            if sorted(folded) != sorted(bases):
                raise IngestError("base snapshot index names diverge "
                                  "from the engine's")
            self.bases = folded
            self.payloads = payloads
        else:
            self.bases = dict(bases)
            self.payloads = {}
        self._clean_stale_bases()
        self.overlays = {name: DeltaOverlay(index)
                         for name, index in self.bases.items()}
        self._names = sorted(self.bases)
        self.next_id = 1 + max(
            (int(index.ids.max()) for index in self.bases.values()
             if len(index)), default=-1)
        replayed = 0
        for payload in self.log.replay():
            self._apply(decode_op(payload))
            replayed += 1
        self._pending: list[IngestOp] = []
        self.recovery = {
            "epoch": self.epoch,
            "base": self._base_file or "external",
            "replayed_records": replayed,
            "truncated_bytes": self.log.recovery.truncated_bytes,
            "truncated_segment": self.log.recovery.truncated_segment,
        }
        self._m_recovered.inc(replayed)
        self._m_torn.inc(self.log.recovery.truncated_bytes)
        self.telemetry.events.emit(
            "ingest_recovery", level="info", **self.recovery)
        self._update_gauges()

    # -- plumbing ------------------------------------------------------
    def _setup_metrics(self) -> None:
        registry = self.telemetry.registry
        self._m_ops = registry.counter(
            "ingest_ops_total", "Applied ingest mutations",
            labels=("op",))
        self._m_compactions = registry.counter(
            "ingest_compactions_total", "Compaction outcomes",
            labels=("result",))
        self._m_recovered = registry.counter(
            "ingest_recovered_records_total",
            "Log records replayed at startup")
        self._m_torn = registry.counter(
            "ingest_torn_bytes_truncated_total",
            "Torn-tail bytes truncated during recovery")
        self._g_delta = registry.gauge(
            "ingest_delta_rows", "Live delta rows per index",
            labels=("index",))
        self._g_tombstones = registry.gauge(
            "ingest_tombstones", "Dead rows awaiting the next fold",
            labels=("index",))
        self._g_lag = registry.gauge(
            "ingest_log_lag_records",
            "Log records not yet folded into a base")
        self._g_segments = registry.gauge(
            "ingest_log_segments", "Live write-ahead-log segments")
        self._g_epoch = registry.gauge(
            "ingest_epoch", "Committed compaction epoch")

    def _update_gauges(self) -> None:
        for name, overlay in self.overlays.items():
            self._g_delta.labels(index=name).set(overlay.delta_rows)
            self._g_tombstones.labels(index=name).set(overlay.tombstones)
        self._g_lag.set(self.log.lag_records)
        self._g_segments.set(len(self.log.status()["segments"]))
        self._g_epoch.set(self.epoch)

    def _on_compaction(self, phase: str) -> None:
        self.telemetry.events.emit("compaction", level="info",
                                   phase=phase, epoch=self.epoch)
        if self._faults is not None:
            self._faults.on_compaction(phase)

    def _apply(self, op: IngestOp) -> tuple[int, int | None]:
        """Apply one decoded op to the overlays; returns the merge key
        it now occupies and the key an upsert/delete retired."""
        first = self.overlays[self._names[0]]
        if op.kind == "add":
            if op.vectors is None or set(op.vectors) != set(self._names):
                raise IngestError("add op vectors diverge from indexes")
            replaced_key = None
            for name in self._names:
                replaced_key = self.overlays[name].add(
                    op.item_id, op.vectors[name], op.class_id)
            if op.payload is not None:
                self.payloads[op.item_id] = op.payload
            else:
                self.payloads.pop(op.item_id, None)
            self.next_id = max(self.next_id, op.item_id + 1)
            return first.key_for(op.item_id), replaced_key
        try:
            key = None
            for name in self._names:
                key = self.overlays[name].delete(op.item_id)
        except KeyError as exc:
            raise IngestError(
                f"log replays a delete of a non-live item: {exc}"
            ) from exc
        self.payloads.pop(op.item_id, None)
        return key, key

    # -- mutations -----------------------------------------------------
    def add(self, vectors: Mapping[str, np.ndarray], *,
            item_id: int | None = None, class_id: int = -1,
            payload: dict | None = None) -> IngestAck:
        """Log then apply one add (or upsert, if ``item_id`` is live).

        ``vectors`` holds one *raw* embedding per index; they are
        normalized here, exactly once — the normalized bytes are what
        the log stores and every later fold copies verbatim.
        """
        with self._lock:
            if set(vectors) != set(self._names):
                raise IngestError(
                    f"vectors must cover exactly {self._names}; "
                    f"got {sorted(vectors)}")
            normalized = {}
            for name in self._names:
                dim = self.bases[name].embeddings.shape[1]
                row = np.asarray(vectors[name],
                                 dtype=np.float64).reshape(-1)
                if row.shape[0] != dim:
                    raise IngestError(
                        f"{name} vector has dim {row.shape[0]}, "
                        f"index expects {dim}")
                if not np.all(np.isfinite(row)):
                    raise IngestError(f"{name} vector is non-finite")
                with np.errstate(all="ignore"):
                    row = normalize_rows(row[None])[0]
                if not np.all(np.isfinite(row)):
                    raise IngestError(
                        f"{name} vector is non-finite after normalize")
                normalized[name] = row
            if item_id is None:
                item_id = self.next_id
            op = IngestOp("add", int(item_id), int(class_id),
                          normalized, payload)
            return self._log_and_apply(op)

    def delete(self, item_id: int) -> IngestAck:
        """Log then apply one tombstone; ``KeyError`` if not live."""
        with self._lock:
            first = self.overlays[self._names[0]]
            if not first.is_live(item_id):
                raise KeyError(f"item {int(item_id)} is not live")
            return self._log_and_apply(IngestOp("delete", int(item_id)))

    def _log_and_apply(self, op: IngestOp) -> IngestAck:
        first = self.overlays[self._names[0]]
        replaced = op.kind == "add" and first.is_live(op.item_id)
        position = self.log.append(encode_op(op))
        key, replaced_key = self._apply(op)
        self._pending.append(op)
        self._m_ops.labels(op=op.kind).inc()
        self._update_gauges()
        return IngestAck(op=op, item_id=op.item_id, epoch=self.epoch,
                         replaced=replaced, durable=self.log.synced,
                         position=position, key=key,
                         replaced_key=replaced_key)

    # -- compaction ----------------------------------------------------
    def begin_compaction(self) -> CompactionTicket:
        """Seal the log and fold the overlays into candidate bases.

        Queries keep hitting the *live* overlays; mutations landing
        after the rotation go to the next segment and are tracked as
        pending — they replay onto the folded state at commit.
        """
        with self._lock:
            sealed = self.log.segment
            self.log.rotate()
            folded = {name: overlay.fold()
                      for name, overlay in self.overlays.items()}
            payloads = dict(self.payloads)
            self._pending = []
            live = len(folded[self._names[0]])
            tombstones = sum(o.tombstones for o in self.overlays.values())
        ticket = CompactionTicket(
            epoch=self.epoch + 1, folded=folded, payloads=payloads,
            sealed_segment=sealed, live_items=live)
        self._folded_tombstones = tombstones
        self._on_compaction("folded")
        return ticket

    def commit_compaction(self, ticket: CompactionTicket
                          ) -> tuple[CompactionReport,
                                     list[tuple[IngestOp, int,
                                                int | None]]]:
        """Persist the fold and promote it; exactly-once by manifest.

        Returns the report plus the pending ops (with the merge keys
        they re-acquired on the fresh overlays) so the service can
        mirror them into a candidate cluster topology.
        """
        base_file = f"base-{ticket.epoch:06d}.npz"
        _write_base_snapshot(self.directory / base_file, ticket.folded,
                             ticket.payloads,
                             {"epoch": ticket.epoch})
        self._on_compaction("base_written")
        with self._lock:
            self.log.checkpoint(
                {"epoch": ticket.epoch, "base": base_file,
                 "external": self._external},
                segment=self.log.segment)
            self._on_compaction("manifest_written")
            old_base = self._base_file
            self._base_file = base_file
            self.bases = dict(ticket.folded)
            self.overlays = {name: DeltaOverlay(index)
                             for name, index in self.bases.items()}
            self.payloads = dict(ticket.payloads)
            pending = list(self._pending)
            replayed = [(op,) + self._apply(op) for op in pending]
            self.epoch = ticket.epoch
            if old_base and old_base != base_file:
                stale = self.directory / old_base
                if stale.exists():
                    stale.unlink()
            self._update_gauges()
        self._m_compactions.labels(result="committed").inc()
        self._on_compaction("committed")
        report = CompactionReport(
            epoch=ticket.epoch, live_items=ticket.live_items,
            folded_tombstones=getattr(self, "_folded_tombstones", 0),
            pending_replayed=len(replayed), base_file=base_file)
        return report, replayed

    def abort_compaction(self, ticket: CompactionTicket) -> None:
        """Discard a fold (e.g. canary veto).  Nothing to roll back:
        the manifest never moved, the live overlays were never
        touched, and the extra segment rotation is harmless — the next
        fold simply covers it too."""
        del ticket
        self._m_compactions.labels(result="aborted").inc()
        self._on_compaction("aborted")

    def compact(self) -> CompactionReport:
        """Fold and commit without external validation (CLI path)."""
        ticket = self.begin_compaction()
        report, _ = self.commit_compaction(ticket)
        return report

    def _clean_stale_bases(self) -> None:
        for entry in self.directory.glob("base-*.npz*"):
            if entry.name != self._base_file:
                entry.unlink()

    # -- introspection -------------------------------------------------
    def status(self) -> dict:
        with self._lock:
            first = self.overlays[self._names[0]]
            return {
                "epoch": self.epoch,
                "base": self._base_file or "external",
                "next_id": self.next_id,
                "live_items": first.live_count,
                "delta_rows": {name: overlay.delta_rows
                               for name, overlay
                               in self.overlays.items()},
                "tombstones": first.tombstones,
                "payloads": len(self.payloads),
                "log": self.log.status(),
                "recovery": dict(self.recovery),
            }

    def close(self) -> None:
        self.log.close()


def scan_log(log_dir: str | pathlib.Path) -> dict:
    """Read-only summary of an ingest log (no model, no mutation)."""
    directory = pathlib.Path(log_dir)
    counts = {"add": 0, "delete": 0}
    records = 0
    for payload in replay_segments(directory):
        op = decode_op(payload)
        counts[op.kind] += 1
        records += 1
    manifest = read_manifest(directory) or {}
    meta = manifest.get("meta") or {}
    return {
        "directory": str(directory),
        "records": records,
        "adds": counts["add"],
        "deletes": counts["delete"],
        "epoch": int(meta.get("epoch", 0)),
        "base": meta.get("base") or "external",
        "segment": int(manifest.get("segment", 0)),
    }


class CompactionThread:
    """Background fold trigger: compacts the service's overlay when it
    grows past ``compact_at_delta_rows`` (checked every ``interval``).

    Failures are recorded, not raised — a broken compaction must not
    take the maintenance loop down with it.  ``stop()`` joins the
    thread.
    """

    def __init__(self, service, interval: float = 0.25,
                 sleep=time.sleep):
        self._service = service
        self._interval = float(interval)
        self._sleep = sleep
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="ingest-compaction")
        self.errors: list[str] = []
        self.reports = []

    def start(self) -> "CompactionThread":
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                ingestor = self._service.ingestor
                threshold = (ingestor.config.compact_at_delta_rows
                             if ingestor is not None else None)
                if threshold is not None and ingestor is not None:
                    status = ingestor.status()
                    load = (max(status["delta_rows"].values(), default=0)
                            + status["tombstones"])
                    if load >= threshold:
                        self.reports.append(
                            self._service.compact_ingest())
            except Exception as exc:  # survive and report
                self.errors.append(f"{type(exc).__name__}: {exc}")
            self._sleep(self._interval)

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)
