"""Hardened HTTP front door for the resilient search service.

Every containment layer built so far stops at the process boundary:
breakers, brownout, fair queuing and WAL recovery all assume the
request already *arrived*.  Production retrieval systems mostly die at
the wire instead — slow clients holding sockets open, half-sent
bodies, restart storms — so the gateway's job is to make the socket
path as crash-only as the service behind it.  Stdlib-only (raw
``socket`` + ``threading``; no frameworks), four layers:

* **wire armor** — per-socket read/write timeouts, bounded header and
  body sizes, a slowloris reaper that evicts connections stalled
  mid-request, a bounded accept backlog with load-shed *at accept*
  when the connection table or the admission queue is saturated, and
  malformed requests answered with a structured 400 (never a
  traceback on the wire);
* **graceful drain** — SIGTERM flips readiness (``/readyz`` → 503),
  stops accepting, lets every accepted request finish under a drain
  deadline (late arrivals on kept-alive connections get a clean 503
  with ``Connection: close``), syncs the ingest WAL, flushes
  telemetry, and returns — crash-only exit, restart recovers via the
  existing WAL replay;
* **swap-aware result cache** — :class:`ResultCache`, LRU+TTL keyed
  on ``(tenant, query fingerprint)`` with the serving generation
  stored per entry: a hot-swap invalidates implicitly because a
  generation mismatch is never served as fresh.  Under brownout or an
  open breaker the gateway may serve an expired or past-generation
  entry flagged ``stale: true`` (*stale-while-revalidate*) instead of
  failing the caller;
* **observability** — request/connection/cache metrics in the shared
  registry, and every HTTP request wrapped in an ``http_request``
  span so the service's per-stage spans join the whole-path traces.

Tenancy rides on ``X-Api-Key`` (mapped straight onto the PR 7
admission plane's token buckets and fair-queue lanes), criticality on
``X-Criticality``, and the client deadline on ``X-Deadline-Ms`` —
clamped to a server maximum and propagated into the same cooperative
:class:`~repro.serving.deadline.Deadline` the in-process path uses,
with ``deadline_source`` recorded on the outcome so a silently
defaulted budget is distinguishable from a caller-chosen one.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import signal
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..obs import LATENCY_BUCKETS, Telemetry
from .ingest import payload_to_recipe
from .retry import CircuitState
from .service import ResilientSearchService

__all__ = ["GatewayConfig", "CacheConfig", "ResultCache",
           "query_fingerprint", "normalize_search_request",
           "parse_deadline_header", "Gateway", "GatewayError",
           "BadRequest", "STATUS_CODES", "SHED_STATUS_CODES"]

#: Service outcome status → HTTP status code (non-shed outcomes).
STATUS_CODES = {"ok": 200, "partial": 200, "degraded": 200,
                "timeout": 504, "invalid": 400, "error": 500}

#: Shed reason → HTTP status code.  Rate-limited tenants get 429 (the
#: client itself is over budget); every other shed is the server
#: protecting itself, which is 503 + Retry-After.
SHED_STATUS_CODES = {"rate_limit": 429, "queue_full": 503,
                     "expired": 503, "brownout": 503,
                     "inflight_limit": 503}

_REASON_PHRASES = {200: "OK", 400: "Bad Request", 401: "Unauthorized",
                   404: "Not Found", 405: "Method Not Allowed",
                   408: "Request Timeout", 413: "Payload Too Large",
                   429: "Too Many Requests", 431: "Request Header "
                   "Fields Too Large", 500: "Internal Server Error",
                   503: "Service Unavailable", 504: "Gateway Timeout"}

# Connection phases, used by the reaper to tell a stalled *request*
# (head/body — slowloris territory) from a quiet keep-alive (idle).
_IDLE, _HEAD, _BODY, _HANDLE = "idle", "head", "body", "handle"


class GatewayError(RuntimeError):
    """Gateway lifecycle misuse (double start, start after drain)."""


class BadRequest(Exception):
    """Malformed wire input; becomes a structured 4xx, never a 500."""

    def __init__(self, status: int, reason: str, detail: str):
        super().__init__(detail)
        self.status = status
        self.reason = reason
        self.detail = detail


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CacheConfig:
    """Result-cache knobs.

    ``ttl_s`` bounds how long an entry may be served as *fresh*;
    ``stale_ttl_s`` extends past that (and past a generation bump) how
    long it may still be served as an explicitly flagged stale answer
    under brownout/breaker-open.  ``capacity`` is entries, evicted LRU.
    """

    capacity: int = 256
    ttl_s: float = 30.0
    stale_ttl_s: float = 300.0
    enabled: bool = True

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if self.ttl_s <= 0 or self.stale_ttl_s < 0:
            raise ValueError("ttl_s must be positive and stale_ttl_s "
                             "non-negative")


@dataclass(frozen=True)
class GatewayConfig:
    """Wire-armor, drain, auth and cache knobs for one gateway."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0 = ephemeral (read .port after start)
    #: ``api_key -> tenant`` map.  Empty disables auth: the tenant
    #: then comes from ``X-Tenant`` (or "default"), which is what the
    #: demos and load generators use.  Non-empty makes ``X-Api-Key``
    #: mandatory; unknown keys get a 401.
    api_keys: Mapping[str, str] = field(default_factory=dict)
    # -- wire armor -------------------------------------------------
    max_header_bytes: int = 8192
    max_body_bytes: int = 65536
    read_timeout_s: float = 5.0       # per-recv socket timeout
    #: A request's head (request line + headers) must fully arrive
    #: within this window of its first byte — the slowloris bound.
    header_deadline_s: float = 2.0
    body_deadline_s: float = 5.0      # ... and the body within this
    idle_timeout_s: float = 5.0       # keep-alive idle limit
    reaper_interval_s: float = 0.25
    max_connections: int = 64         # beyond this, shed at accept
    accept_backlog: int = 16
    #: Shed at accept when the admission plane already has at least
    #: this many requests queued — the wire should not pile more load
    #: onto a saturated fair queue.  ``None`` disables the check.
    shed_at_queue_depth: int | None = 512
    # -- deadlines --------------------------------------------------
    max_deadline_ms: float = 10000.0  # clamp for X-Deadline-Ms
    retry_after_s: float = 1.0        # Retry-After on 429/503
    # -- drain ------------------------------------------------------
    drain_deadline_s: float = 5.0
    # -- cache ------------------------------------------------------
    cache: CacheConfig = field(default_factory=CacheConfig)

    def __post_init__(self):
        if self.max_header_bytes < 256 or self.max_body_bytes < 1:
            raise ValueError("header/body byte bounds are too small")
        if self.max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if self.max_deadline_ms <= 0:
            raise ValueError("max_deadline_ms must be positive")
        if self.drain_deadline_s <= 0:
            raise ValueError("drain_deadline_s must be positive")


# ----------------------------------------------------------------------
# Query fingerprint + request normalization
# ----------------------------------------------------------------------
def _canonical(value):
    """Whitespace-insensitive canonical form of a JSON value."""
    if isinstance(value, str):
        return " ".join(value.split())
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)  # 5.0 and 5 ask for the same k
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def query_fingerprint(request: Mapping) -> str:
    """Stable digest of one search request's *semantics*.

    Two bodies that parse to the same request — whatever their key
    order, inter-token whitespace, or ``5`` vs ``5.0`` spelling —
    fingerprint identically, because the digest is taken over a
    canonical sorted-key JSON encoding of the normalized value, not
    over the wire bytes.
    """
    canonical = json.dumps(_canonical(dict(request)), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


def normalize_search_request(payload) -> dict:
    """Validate a /search body and reduce it to explicit semantics.

    Returns the normalized request dict the fingerprint is taken over:
    every field present, defaults filled in, strings whitespace-
    normalized.  Raises :class:`BadRequest` for anything malformed.
    """
    if not isinstance(payload, dict):
        raise BadRequest(400, "bad_body",
                          "request body must be a JSON object")
    kind = None
    ingredients = payload.get("ingredients")
    recipe_id = payload.get("recipe_id")
    without = payload.get("without")
    if ingredients is not None:
        if (not isinstance(ingredients, list) or not ingredients
                or not all(isinstance(i, str) for i in ingredients)):
            raise BadRequest(400, "bad_body", "'ingredients' must be "
                              "a non-empty list of strings")
        kind = "ingredients"
    elif recipe_id is not None:
        if isinstance(recipe_id, bool) or not isinstance(recipe_id, int):
            raise BadRequest(400, "bad_body",
                              "'recipe_id' must be an integer")
        kind = "without" if without is not None else "recipe"
        if without is not None and not isinstance(without, str):
            raise BadRequest(400, "bad_body",
                              "'without' must be a string")
    else:
        raise BadRequest(400, "bad_body", "search needs either "
                          "'ingredients' or 'recipe_id'")
    k = payload.get("k", 5)
    if isinstance(k, bool) or not isinstance(k, (int, float)) \
            or int(k) != k or not 1 <= int(k) <= 100:
        raise BadRequest(400, "bad_body",
                          "'k' must be an integer in [1, 100]")
    class_name = payload.get("class_name")
    if class_name is not None and not isinstance(class_name, str):
        raise BadRequest(400, "bad_body",
                          "'class_name' must be a string or null")
    return _canonical({
        "kind": kind,
        "ingredients": ingredients if kind == "ingredients" else None,
        "recipe_id": recipe_id if kind != "ingredients" else None,
        "without": without if kind == "without" else None,
        "k": int(k),
        "class_name": class_name,
    })


def parse_deadline_header(raw: str | None, max_deadline_ms: float
                          ) -> tuple[float | None, str]:
    """``X-Deadline-Ms`` → ``(deadline_seconds | None, source)``.

    Absent header → ``(None, "default")`` (the service default budget
    applies).  A non-numeric or non-positive value is a caller error
    (400), never silently defaulted.  Oversized values clamp to the
    server maximum — a client cannot buy an unbounded budget.
    """
    if raw is None or not raw.strip():
        return None, "default"
    try:
        value_ms = float(raw.strip())
    except ValueError:
        raise BadRequest(400, "bad_deadline",
                          f"X-Deadline-Ms must be numeric, got {raw!r}")
    if not value_ms > 0 or value_ms != value_ms:  # NaN guard
        raise BadRequest(400, "bad_deadline",
                          "X-Deadline-Ms must be a positive number of "
                          "milliseconds")
    return min(value_ms, max_deadline_ms) / 1000.0, "header"


# ----------------------------------------------------------------------
# Swap-aware LRU+TTL result cache
# ----------------------------------------------------------------------
class _CacheEntry:
    __slots__ = ("body", "generation", "stored_at")

    def __init__(self, body: dict, generation: int, stored_at: float):
        self.body = body
        self.generation = generation
        self.stored_at = stored_at


class ResultCache:
    """LRU+TTL cache of serialized search responses, per tenant.

    Keys are ``(tenant, query fingerprint)``; the generation that
    produced an entry is stored *in* the entry and compared at read
    time, so a hot-swap invalidates the whole cache implicitly — a
    past-generation entry can never be served as fresh.  ``get`` with
    ``allow_stale=True`` (the gateway sets it only under brownout or
    an open breaker) may instead return an expired or past-generation
    entry within ``stale_ttl_s`` of its expiry, tagged ``"stale"`` so
    the caller can flag it on the wire.  Thread-safe.
    """

    def __init__(self, config: CacheConfig | None = None, *,
                 clock: Callable[[], float] = time.monotonic,
                 registry=None):
        self.config = config or CacheConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, str], _CacheEntry] = \
            OrderedDict()
        self._m_events = None
        if registry is not None:
            self._m_events = registry.counter(
                "gateway_cache_events_total",
                "result-cache traffic by event",
                labels=("event",))

    def _event(self, event: str) -> None:
        if self._m_events is not None:
            self._m_events.labels(event=event).inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def retained_bytes(self) -> int:
        """Estimated bytes held by cached result bodies (memory
        ledger entry for the gateway's cache)."""
        from ..obs.memledger import ring_bytes

        with self._lock:
            bodies = [entry.body for entry in self._entries.values()]
        # _CacheEntry is slotted: estimate the retained bodies plus a
        # small fixed per-entry overhead for the entry + key tuple.
        return ring_bytes(bodies) + len(bodies) * 96

    def get(self, tenant: str, fingerprint: str, generation: int, *,
            allow_stale: bool = False) -> tuple[dict, str] | None:
        """Look up one query; ``(body, "fresh"|"stale")`` or ``None``."""
        key = (tenant, fingerprint)
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._event("miss")
                return None
            age = now - entry.stored_at
            if age > self.config.ttl_s + self.config.stale_ttl_s:
                # Too old even for stale-serving: drop it.
                del self._entries[key]
                self._event("miss")
                return None
            fresh = (entry.generation == generation
                     and age <= self.config.ttl_s)
            if fresh:
                self._entries.move_to_end(key)
                self._event("hit")
                return dict(entry.body), "fresh"
            if allow_stale:
                self._event("stale_hit")
                return dict(entry.body), "stale"
            self._event("miss")
            return None

    def put(self, tenant: str, fingerprint: str, generation: int,
            body: dict) -> None:
        key = (tenant, fingerprint)
        with self._lock:
            self._entries[key] = _CacheEntry(dict(body), generation,
                                             self._clock())
            self._entries.move_to_end(key)
            self._event("store")
            while len(self._entries) > self.config.capacity:
                self._entries.popitem(last=False)
                self._event("evict")

    def invalidate(self) -> int:
        """Drop everything (ops hammer); returns entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
        if dropped:
            self._event("invalidate")
        return dropped


# ----------------------------------------------------------------------
# Connection bookkeeping
# ----------------------------------------------------------------------
class _Connection:
    """One accepted socket's state, shared with the reaper.

    ``phase`` + ``phase_started`` are what the reaper judges: a
    connection sitting in ``head``/``body`` past the corresponding
    deadline is a slowloris and gets its socket closed from under the
    worker (the blocked ``recv`` then raises and the worker exits).
    All mutation happens under ``lock``.
    """

    __slots__ = ("sock", "addr", "lock", "phase", "phase_started",
                 "requests", "closed")

    def __init__(self, sock: socket.socket, addr, now: float):
        self.sock = sock
        self.addr = addr
        self.lock = threading.Lock()
        self.phase = _IDLE
        self.phase_started = now
        self.requests = 0
        self.closed = False

    def enter(self, phase: str, now: float) -> None:
        with self.lock:
            self.phase = phase
            self.phase_started = now

    def kill(self) -> bool:
        """Close the socket out from under the worker (reaper/drain)."""
        with self.lock:
            if self.closed:
                return False
            self.closed = True
        with contextlib.suppress(OSError):
            self.sock.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self.sock.close()
        return True


# ----------------------------------------------------------------------
# The gateway
# ----------------------------------------------------------------------
class Gateway:
    """Threaded stdlib HTTP front-end over a ResilientSearchService.

    Parameters
    ----------
    service:
        The :class:`ResilientSearchService` to expose.  Tenancy,
        criticality and deadlines map straight onto its admission
        plane and cooperative deadlines.
    config:
        :class:`GatewayConfig`; the defaults suit tests and demos.
    telemetry:
        Optional shared :class:`~repro.obs.Telemetry`; defaults to the
        *service's* telemetry so gateway spans and service spans land
        in one trace and one registry.
    clock:
        Injectable monotonic clock for cache TTLs and drain
        accounting.  The socket timeouts always use real time — the
        wire is real even when the clock under test is not.

    Endpoints: ``POST /search``, ``POST /ingest``, ``POST /delete``
    (or ``DELETE /items/<id>``), ``GET /stats``, ``GET /metrics``
    (Prometheus text), ``GET /healthz`` (liveness), ``GET /readyz``
    (readiness — 503 while draining).
    """

    def __init__(self, service: ResilientSearchService,
                 config: GatewayConfig | None = None, *,
                 telemetry: Telemetry | None = None,
                 clock: Callable[[], float] = time.monotonic):
        self.service = service
        self.config = config or GatewayConfig()
        self.telemetry = telemetry or service.telemetry
        self._clock = clock
        self._lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._port: int | None = None
        self._accept_thread: threading.Thread | None = None
        self._reaper_thread: threading.Thread | None = None
        self._workers: set[threading.Thread] = set()
        self._conns: set[_Connection] = set()
        self._inflight_requests = 0
        self._started = False
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._stop_reaper = threading.Event()
        self._drain_owner = False
        self._drain_reason: str | None = None
        self._prev_handlers: dict[int, object] = {}
        self.cache = ResultCache(self.config.cache, clock=clock,
                                 registry=self.telemetry.registry)
        memory = getattr(self.service, "memory", None)
        if memory is not None:
            memory.register("result_cache", self.cache.retained_bytes)
        self._setup_metrics()

    # -- metrics -----------------------------------------------------
    def _setup_metrics(self) -> None:
        registry = self.telemetry.registry
        self._m_requests = registry.counter(
            "gateway_requests_total", "HTTP requests by route and code",
            labels=("route", "code"))
        self._m_request_seconds = registry.histogram(
            "gateway_request_seconds",
            "wall time per HTTP request, first byte to response",
            buckets=LATENCY_BUCKETS)
        self._m_connections = registry.counter(
            "gateway_connections_total",
            "connection lifecycle events",
            labels=("event",))  # accepted/shed_at_accept/reaped/closed
        self._m_active = registry.gauge(
            "gateway_active_connections", "sockets currently open")
        self._m_active.set(0)
        self._m_inflight = registry.gauge(
            "gateway_inflight_requests",
            "requests currently being handled")
        self._m_inflight.set(0)
        self._m_malformed = registry.counter(
            "gateway_malformed_total",
            "wire-level rejections by reason",
            labels=("reason",))
        self._m_draining = registry.gauge(
            "gateway_draining", "1 while the gateway is draining")
        self._m_draining.set(0)
        self._m_drain_seconds = registry.gauge(
            "gateway_drain_seconds",
            "how long the last graceful drain took")

    # -- lifecycle ---------------------------------------------------
    @property
    def port(self) -> int:
        if self._port is None:
            raise GatewayError("gateway is not started")
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    @property
    def ready(self) -> bool:
        return self._started and not self._draining.is_set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def start(self) -> "Gateway":
        with self._lock:
            if self._started:
                raise GatewayError("gateway already started")
            if self._draining.is_set():
                raise GatewayError("gateway already drained; build a "
                                   "new one (crash-only restart)")
            self._started = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(self.config.accept_backlog)
        self._listener = listener
        self._port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="gateway-accept", daemon=True)
        self._reaper_thread = threading.Thread(
            target=self._reaper_loop, name="gateway-reaper", daemon=True)
        self._accept_thread.start()
        self._reaper_thread.start()
        self.telemetry.events.emit(
            "gateway", message=f"listening on {self.url}",
            host=self.config.host, port=self.port)
        return self

    def __enter__(self) -> "Gateway":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.drain(reason="context-exit")
        return False

    def install_signal_handlers(self,
                                signals=(signal.SIGTERM,
                                         signal.SIGINT)) -> None:
        """SIGTERM/SIGINT → graceful drain (main thread only).

        The handler only spawns the drainer thread — signal context
        does no real work — and chains nothing: drain is the whole
        shutdown story (crash-only: whatever it misses, WAL replay
        recovers).
        """
        for signum in signals:
            self._prev_handlers[signum] = signal.signal(
                signum, self._on_signal)

    def restore_signal_handlers(self) -> None:
        for signum, handler in self._prev_handlers.items():
            signal.signal(signum, handler)
        self._prev_handlers.clear()

    def _on_signal(self, signum, frame) -> None:
        threading.Thread(
            target=self.drain,
            kwargs={"reason": signal.Signals(signum).name},
            name="gateway-drainer", daemon=True).start()

    def drain(self, reason: str = "requested") -> bool:
        """Graceful drain; returns ``True`` for the thread that ran it.

        Readiness flips first, the listener closes (nothing new is
        accepted), idle keep-alive connections are closed, then every
        in-flight request gets until the drain deadline to finish —
        after which stragglers are cut.  Finally the ingest WAL is
        synced and telemetry flushed.  Idempotent: concurrent callers
        wait for the first drain to complete.
        """
        with self._lock:
            if self._drain_owner:
                owner = False
            else:
                owner = self._drain_owner = True
                self._drain_reason = reason
                self._draining.set()
        if not owner:
            self._drained.wait()
            return False
        started = self._clock()
        self._m_draining.set(1)
        self.telemetry.events.emit(
            "gateway_drain", message=f"drain started ({reason})",
            reason=reason, inflight=self._inflight_requests,
            connections=len(self._conns), level="warn")
        if self._listener is not None:
            # shutdown() before close(): a close alone does not wake a
            # thread blocked in accept() — the kernel socket survives
            # under the syscall's reference and keeps accepting.
            with contextlib.suppress(OSError):
                self._listener.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                self._listener.close()
        # Idle *keep-alive* connections hold no accepted request; close
        # them now so they cannot start new work mid-drain.  A freshly
        # accepted connection (no request served yet) is left to its
        # worker: its first request may already be on the wire, and it
        # must get a clean 503, not a reset.
        for conn in list(self._conns):
            with conn.lock:
                idle = conn.phase == _IDLE and conn.requests > 0
            if idle:
                conn.kill()
        deadline = time.monotonic() + self.config.drain_deadline_s
        for worker in list(self._workers):
            worker.join(timeout=max(0.0, deadline - time.monotonic()))
        # Past the deadline: cut whatever is left (crash-only).
        cut = 0
        for conn in list(self._conns):
            if conn.kill():
                cut += 1
        for worker in list(self._workers):
            worker.join(timeout=0.2)
        self._stop_reaper.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
        if self._reaper_thread is not None:
            self._reaper_thread.join(
                timeout=self.config.reaper_interval_s * 4 + 1.0)
        # Flush durable state: WAL first (acked writes), then spans.
        if self.service.ingestor is not None:
            with contextlib.suppress(Exception):
                self.service.ingestor.log.sync()
        duration = self._clock() - started
        self._m_drain_seconds.set(duration)
        self.telemetry.events.emit(
            "gateway_drain",
            message=f"drain finished in {duration * 1000:.1f}ms",
            reason=reason, duration_ms=duration * 1000.0,
            connections_cut=cut)
        with contextlib.suppress(Exception):
            self.telemetry.close()
        self._drained.set()
        return True

    def wait_drained(self, timeout: float | None = None) -> bool:
        return self._drained.wait(timeout)

    # -- accept / reap loops ----------------------------------------
    def _queue_saturated(self) -> bool:
        threshold = self.config.shed_at_queue_depth
        if threshold is None:
            return False
        try:
            return self.service.admission.snapshot().get(
                "queued", 0) >= threshold
        except Exception:
            return False

    def _accept_loop(self) -> None:
        while not self._draining.is_set():
            try:
                client, addr = self._listener.accept()
            except OSError:
                break  # listener closed by drain
            if self._draining.is_set():
                self._reject_at_accept(client, "draining")
                continue
            with self._lock:
                crowded = len(self._conns) >= self.config.max_connections
            if crowded or self._queue_saturated():
                reason = "max_connections" if crowded else "queue_full"
                self._reject_at_accept(client, reason)
                continue
            self._m_connections.labels(event="accepted").inc()
            conn = _Connection(client, addr, self._clock())
            with self._lock:
                self._conns.add(conn)
                self._m_active.set(len(self._conns))
            worker = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name=f"gateway-conn-{addr[1]}", daemon=True)
            with self._lock:
                self._workers.add(worker)
            worker.start()

    def _reject_at_accept(self, client: socket.socket,
                          reason: str) -> None:
        """Load-shed before a worker is even spawned: one canned 503.

        The write is best-effort on a short timeout — a shed path must
        never block the accept loop behind a slow victim.
        """
        self._m_connections.labels(event="shed_at_accept").inc()
        self._m_requests.labels(route="accept", code="503").inc()
        body = json.dumps({"error": "overloaded", "reason": reason})
        raw = (f"HTTP/1.1 503 Service Unavailable\r\n"
               f"Content-Type: application/json\r\n"
               f"Content-Length: {len(body)}\r\n"
               f"Retry-After: {self.config.retry_after_s:g}\r\n"
               f"Connection: close\r\n\r\n{body}").encode("ascii")
        with contextlib.suppress(OSError):
            client.settimeout(0.5)
            client.sendall(raw)
        with contextlib.suppress(OSError):
            client.close()

    def _reaper_loop(self) -> None:
        """Evict connections stalled mid-request (slowloris armor).

        Phase deadlines: ``head`` bytes must complete within
        ``header_deadline_s`` of the request's first byte, ``body``
        within ``body_deadline_s``, and an ``idle`` keep-alive may sit
        for ``idle_timeout_s``.  ``handle`` is never reaped — that is
        the service's deadline's job, and cutting a socket mid-
        response is exactly the reset the drain contract forbids.
        """
        limits = {_HEAD: self.config.header_deadline_s,
                  _BODY: self.config.body_deadline_s,
                  _IDLE: self.config.idle_timeout_s}
        while not self._stop_reaper.wait(self.config.reaper_interval_s):
            now = self._clock()
            for conn in list(self._conns):
                with conn.lock:
                    phase = conn.phase
                    age = now - conn.phase_started
                limit = limits.get(phase)
                if limit is None or age <= limit:
                    continue
                if phase in (_HEAD, _BODY):
                    self._m_connections.labels(event="reaped").inc()
                    self._m_malformed.labels(reason="slowloris").inc()
                    self.telemetry.events.emit(
                        "gateway_reap", phase=phase, age_s=age,
                        addr=str(conn.addr), level="warn")
                if conn.kill():
                    self._forget(conn)

    def _forget(self, conn: _Connection) -> None:
        with self._lock:
            self._conns.discard(conn)
            self._m_active.set(len(self._conns))

    # -- connection worker ------------------------------------------
    def _serve_connection(self, conn: _Connection) -> None:
        try:
            conn.sock.settimeout(self.config.read_timeout_s)
            buffer = b""
            while not conn.closed:
                if self._draining.is_set() and conn.requests > 0:
                    break  # keep-alive ends at drain
                try:
                    request, buffer = self._read_request(conn, buffer)
                except BadRequest as exc:
                    self._m_malformed.labels(reason=exc.reason).inc()
                    self._send_response(
                        conn, exc.status,
                        {"error": exc.reason, "detail": exc.detail},
                        close=True)
                    break
                except (OSError, ConnectionError):
                    break  # timeout, reap, or client went away
                if request is None:
                    break  # clean EOF between requests
                conn.requests += 1
                keep_alive = self._handle(conn, request)
                if not keep_alive:
                    break
        finally:
            conn.kill()
            self._forget(conn)
            self._m_connections.labels(event="closed").inc()
            with self._lock:
                self._workers.discard(threading.current_thread())

    def _read_request(self, conn: _Connection, buffer: bytes):
        """Read one full request (head + body) off the socket.

        Returns ``(request_dict | None, leftover_buffer)``; ``None``
        means clean EOF before any request byte.  Size bounds are
        enforced *while reading*, so an attacker cannot make the
        gateway buffer an unbounded head or body.
        """
        config = self.config
        # --- head ---
        conn.enter(_IDLE, self._clock())
        while b"\r\n\r\n" not in buffer:
            if len(buffer) > config.max_header_bytes:
                raise BadRequest(431, "oversize_header",
                                  f"request head exceeds "
                                  f"{config.max_header_bytes} bytes")
            chunk = conn.sock.recv(4096)
            if not chunk:
                if buffer:
                    raise BadRequest(400, "truncated_head",
                                      "connection closed mid-header")
                return None, b""
            if not buffer:
                conn.enter(_HEAD, self._clock())
            buffer += chunk
        head, _, buffer = buffer.partition(b"\r\n\r\n")
        if len(head) > config.max_header_bytes:
            raise BadRequest(431, "oversize_header",
                              f"request head exceeds "
                              f"{config.max_header_bytes} bytes")
        try:
            text = head.decode("iso-8859-1")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            raise BadRequest(400, "bad_head", "undecodable header")
        lines = text.split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise BadRequest(400, "bad_request_line",
                              f"malformed request line {lines[0]!r}")
        method, target, version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep or not name.strip():
                raise BadRequest(400, "bad_header",
                                  f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        # --- body ---
        length_raw = headers.get("content-length", "0")
        try:
            length = int(length_raw)
        except ValueError:
            raise BadRequest(400, "bad_content_length",
                              f"Content-Length must be an integer, "
                              f"got {length_raw!r}")
        if length < 0:
            raise BadRequest(400, "bad_content_length",
                              "Content-Length must be non-negative")
        if length > config.max_body_bytes:
            raise BadRequest(413, "oversize_body",
                              f"body of {length} bytes exceeds "
                              f"{config.max_body_bytes}")
        if length > len(buffer):
            conn.enter(_BODY, self._clock())
        while len(buffer) < length:
            chunk = conn.sock.recv(min(65536,
                                       length - len(buffer)))
            if not chunk:
                raise BadRequest(400, "truncated_body",
                                  f"connection closed after "
                                  f"{len(buffer)} of {length} body "
                                  f"bytes")
            buffer += chunk
        body, buffer = buffer[:length], buffer[length:]
        conn.enter(_HANDLE, self._clock())
        return {"method": method.upper(), "target": target,
                "version": version, "headers": headers,
                "body": body}, buffer

    # -- request handling -------------------------------------------
    def _handle(self, conn: _Connection, request: dict) -> bool:
        """Route one parsed request; returns keep-alive?"""
        started = self._clock()
        with self._lock:
            self._inflight_requests += 1
            self._m_inflight.set(self._inflight_requests)
        headers = request["headers"]
        wants_close = (headers.get("connection", "").lower() == "close"
                       or request["version"] == "HTTP/1.0")
        draining = self._draining.is_set()
        route = "unknown"
        try:
            with self.telemetry.tracer.span(
                    "http_request", method=request["method"],
                    target=request["target"]) as span:
                if draining and not self._is_health_route(request):
                    # The request arrived after drain began: clean 503,
                    # never a reset — the client can retry elsewhere.
                    status, body, extra = 503, {
                        "error": "draining",
                        "detail": "gateway is draining; retry "
                                  "against another instance"}, {
                        "Retry-After": f"{self.config.retry_after_s:g}"}
                    route = "draining"
                else:
                    status, body, extra, route = self._route(request)
                span.set_attribute("route", route)
                span.set_attribute("code", status)
        except BadRequest as exc:
            self._m_malformed.labels(reason=exc.reason).inc()
            status, body, extra = exc.status, {
                "error": exc.reason, "detail": exc.detail}, {}
            route = route if route != "unknown" else "bad_request"
        except Exception as exc:  # containment: never a traceback
            status, body, extra = 500, {
                "error": "internal",
                "detail": f"{type(exc).__name__}: {exc}"}, {}
        close = wants_close or self._draining.is_set() or status in (
            431, 413)
        sent = self._send_response(conn, status, body, close=close,
                                   extra=extra)
        elapsed = self._clock() - started
        self._m_requests.labels(route=route, code=str(status)).inc()
        self._m_request_seconds.observe(elapsed)
        with self._lock:
            self._inflight_requests -= 1
            self._m_inflight.set(self._inflight_requests)
        return sent and not close

    @staticmethod
    def _is_health_route(request: dict) -> bool:
        return request["target"].split("?", 1)[0] in ("/healthz",
                                                      "/readyz")

    def _route(self, request: dict):
        """Dispatch; returns ``(status, body, extra_headers, route)``."""
        method = request["method"]
        path = request["target"].split("?", 1)[0]
        if path == "/healthz":
            return 200, {"status": "alive"}, {}, "healthz"
        if path == "/readyz":
            if self.ready:
                return 200, {"ready": True}, {}, "readyz"
            return 503, {"ready": False, "draining": True}, {}, "readyz"
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "method_not_allowed"}, {}, \
                    "metrics"
            return 200, self.telemetry.registry.to_prometheus(), \
                {"Content-Type": "text/plain; version=0.0.4"}, "metrics"
        if path == "/stats":
            stats = self.service.stats()
            stats["gateway"] = self.describe()
            return 200, stats, {}, "stats"
        if path == "/search":
            if method != "POST":
                return 405, {"error": "method_not_allowed"}, {}, \
                    "search"
            return (*self._handle_search(request), "search")
        if path == "/ingest":
            if method != "POST":
                return 405, {"error": "method_not_allowed"}, {}, \
                    "ingest"
            return (*self._handle_ingest(request), "ingest")
        if path == "/delete" and method == "POST":
            payload = self._json_body(request)
            item_id = payload.get("item_id")
            if isinstance(item_id, bool) or not isinstance(item_id, int):
                raise BadRequest(400, "bad_body",
                                  "'item_id' must be an integer")
            return (*self._handle_delete(request, item_id), "delete")
        if path.startswith("/items/") and method == "DELETE":
            raw = path[len("/items/"):]
            try:
                item_id = int(raw)
            except ValueError:
                raise BadRequest(400, "bad_path",
                                  f"item id must be an integer, "
                                  f"got {raw!r}")
            return (*self._handle_delete(request, item_id), "delete")
        return 404, {"error": "not_found", "path": path}, {}, \
            "not_found"

    # -- auth + headers ---------------------------------------------
    def _authenticate(self, headers: Mapping[str, str]) -> str:
        """Resolve the tenant for this request (or raise 401)."""
        api_keys = self.config.api_keys
        if api_keys:
            key = headers.get("x-api-key")
            if key is None:
                raise BadRequest(401, "missing_api_key",
                                  "X-Api-Key header is required")
            tenant = api_keys.get(key)
            if tenant is None:
                raise BadRequest(401, "unknown_api_key",
                                  "unrecognized API key")
            return tenant
        return headers.get("x-tenant", "default") or "default"

    @staticmethod
    def _criticality(headers: Mapping[str, str]) -> str | None:
        raw = headers.get("x-criticality")
        if raw is None or not raw.strip():
            return None
        value = raw.strip().lower()
        from .admission import CRITICALITIES
        if value not in CRITICALITIES:
            raise BadRequest(400, "bad_criticality",
                              f"X-Criticality must be one of "
                              f"{CRITICALITIES}, got {raw!r}")
        return value

    @staticmethod
    def _json_body(request: dict) -> dict:
        if not request["body"]:
            raise BadRequest(400, "bad_body",
                              "request body must be JSON")
        try:
            payload = json.loads(request["body"].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(400, "bad_json",
                              f"body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise BadRequest(400, "bad_body",
                              "request body must be a JSON object")
        return payload

    # -- /search ------------------------------------------------------
    def _degradation_active(self) -> bool:
        """Is the backend shedding quality (brownout or open breaker)?

        This is the *only* condition under which an expired or
        past-generation cache entry may be served.
        """
        brownout = self.service.admission.brownout
        if brownout is not None and brownout.level > 0:
            return True
        return (self.service.embed_breaker.state is not
                CircuitState.CLOSED
                or self.service.index_breaker.state is not
                CircuitState.CLOSED)

    def _handle_search(self, request: dict):
        headers = request["headers"]
        tenant = self._authenticate(headers)
        criticality = self._criticality(headers)
        deadline_s, deadline_source = parse_deadline_header(
            headers.get("x-deadline-ms"), self.config.max_deadline_ms)
        normalized = normalize_search_request(self._json_body(request))
        fingerprint = query_fingerprint(normalized)
        generation = self.service.generation
        cache_on = self.config.cache.enabled and \
            headers.get("cache-control", "").lower() != "no-cache"
        if cache_on:
            cached = self.cache.get(tenant, fingerprint, generation)
            if cached is not None:
                body = cached[0]
                body["cache"] = "hit"
                body["stale"] = False
                return 200, body, {"X-Cache": "hit"}
        response = self._call_search(normalized, deadline_s,
                                     deadline_source, tenant,
                                     criticality)
        outcome = response.outcome
        if response.ok:
            body = self._search_body(response)
            if cache_on and outcome.status == "ok":
                self.cache.put(tenant, fingerprint,
                               outcome.generation, body)
            body["cache"] = "miss"
            return 200, body, {"X-Cache": "miss"}
        # The live path failed.  Under brownout/breaker-open an
        # expired or past-generation entry beats an error page —
        # stale-while-revalidate, explicitly flagged.
        if cache_on and self._degradation_active():
            stale = self.cache.get(tenant, fingerprint, generation,
                                   allow_stale=True)
            if stale is not None:
                body = stale[0]
                body["cache"] = "stale"
                body["stale"] = True
                body["stale_reason"] = (outcome.shed_reason
                                        or outcome.status)
                return 200, body, {"X-Cache": "stale",
                                   "Warning": "110 - response is "
                                   "stale"}
        status = self._status_code(outcome)
        body = {"error": outcome.status, "detail": outcome.error,
                "outcome": self._outcome_body(outcome)}
        extra = {}
        if status in (429, 503):
            extra["Retry-After"] = f"{self.config.retry_after_s:g}"
        return status, body, extra

    @staticmethod
    def _status_code(outcome) -> int:
        if outcome.status == "shed":
            return SHED_STATUS_CODES.get(outcome.shed_reason or "", 503)
        return STATUS_CODES.get(outcome.status, 500)

    def _call_search(self, normalized: dict, deadline_s: float | None,
                     deadline_source: str, tenant: str,
                     criticality: str | None):
        service = self.service
        kwargs = dict(k=normalized["k"],
                      class_name=normalized["class_name"],
                      deadline=deadline_s, tenant=tenant,
                      criticality=criticality,
                      deadline_source=deadline_source)
        if normalized["kind"] == "ingredients":
            return service.search_by_ingredients(
                normalized["ingredients"], **kwargs)
        recipe = self._resolve_recipe(normalized["recipe_id"])
        if normalized["kind"] == "without":
            return service.search_without(recipe, normalized["without"],
                                          **kwargs)
        return service.search_by_recipe(recipe, **kwargs)

    def _resolve_recipe(self, recipe_id: int):
        dataset = self.service.engine.dataset
        try:
            if recipe_id < 0:
                raise IndexError(recipe_id)
            return dataset[recipe_id]
        except (IndexError, KeyError):
            raise BadRequest(400, "bad_recipe_id",
                              f"recipe_id {recipe_id} is not in the "
                              f"dataset")

    @staticmethod
    def _outcome_body(outcome) -> dict:
        return {
            "status": outcome.status,
            "tenant": outcome.tenant,
            "shed_reason": outcome.shed_reason,
            "stage": outcome.stage,
            "attempts": outcome.attempts,
            "generation": outcome.generation,
            "latency_ms": outcome.latency * 1000.0,
            "deadline_source": outcome.deadline_source,
            "shards_answered": outcome.shards_answered,
            "shards_total": outcome.shards_total,
        }

    def _search_body(self, response) -> dict:
        results = [{
            "recipe_id": str(result.recipe.recipe_id),
            "title": result.recipe.title,
            "class_id": result.recipe.class_id,
            "distance": result.distance,
            "corpus_row": result.corpus_row,
        } for result in response.results]
        return {
            "status": response.outcome.status,
            "generation": response.generation,
            "degraded": response.degraded,
            "stale": False,
            "results": results,
            "outcome": self._outcome_body(response.outcome),
        }

    # -- /ingest, /delete ---------------------------------------------
    _INGEST_CODES = {"ok": 200, "invalid": 400, "error": 500,
                     "unavailable": 503}

    def _handle_ingest(self, request: dict):
        self._authenticate(request["headers"])
        payload = self._json_body(request)
        recipe_payload = payload.get("recipe")
        if not isinstance(recipe_payload, dict):
            raise BadRequest(400, "bad_body",
                              "'recipe' must be a JSON object")
        recipe = payload_to_recipe(recipe_payload, -1)
        outcome = self.service.ingest(
            recipe, class_name=payload.get("class_name"))
        return self._ingest_reply(outcome)

    def _handle_delete(self, request: dict, item_id: int):
        self._authenticate(request["headers"])
        outcome = self.service.delete(item_id)
        return self._ingest_reply(outcome)

    def _ingest_reply(self, outcome):
        status = self._INGEST_CODES.get(outcome.status, 500)
        body = {
            "op": outcome.op,
            "status": outcome.status,
            "item_id": outcome.item_id,
            "generation": outcome.generation,
            "epoch": outcome.epoch,
            "durable": outcome.durable,
            "replaced": outcome.replaced,
            "error": outcome.error,
        }
        extra = {"Retry-After": f"{self.config.retry_after_s:g}"} \
            if status == 503 else {}
        return status, body, extra

    # -- response writing ---------------------------------------------
    def _send_response(self, conn: _Connection, status: int, body,
                       *, close: bool = False,
                       extra: Mapping[str, str] | None = None) -> bool:
        """Serialize and send; ``False`` when the client went away."""
        extra = dict(extra or {})
        if isinstance(body, (dict, list)):
            payload = json.dumps(body).encode("utf-8")
            content_type = "application/json"
        else:
            payload = str(body).encode("utf-8")
            content_type = extra.pop("Content-Type", "text/plain")
        reason = _REASON_PHRASES.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(payload)}",
                f"Connection: {'close' if close else 'keep-alive'}"]
        for name, value in extra.items():
            head.append(f"{name}: {value}")
        raw = ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + payload
        try:
            conn.sock.settimeout(self.config.read_timeout_s)
            conn.sock.sendall(raw)
            return True
        except (OSError, ConnectionError):
            # DisconnectMidResponse territory: the client is gone.
            # Nothing to tell it; the connection just closes.
            self._m_connections.labels(event="send_failed").inc()
            return False

    # -- introspection ------------------------------------------------
    def describe(self) -> dict:
        with self._lock:
            connections = len(self._conns)
            inflight = self._inflight_requests
        return {
            "url": self.url if self._port is not None else None,
            "ready": self.ready,
            "draining": self.draining,
            "connections": connections,
            "inflight_requests": inflight,
            "cache_entries": len(self.cache),
            "cache_enabled": self.config.cache.enabled,
            "auth": bool(self.config.api_keys),
            "drain_reason": self._drain_reason,
        }
