"""Deterministic hash-by-id shard placement and exact top-k merging.

The cluster (:mod:`repro.serving.cluster`) splits a corpus index into
``N`` shards.  Placement must be a pure function of the item id —
never of insertion order, process, or ``PYTHONHASHSEED`` — so that a
replica rebuilt on another host lands every item on the same shard.
We use the splitmix64 finalizer, a well-mixed 64-bit permutation with
a one-line vectorized form.

Merging is the other half of the correctness contract: for any shard
layout, the globally merged top-k must be *bitwise identical* (ids and
distances) to querying one monolithic index.  Distances are identical
because shard indexes copy normalized rows verbatim and the query
kernel is shape-stable (see
:func:`~repro.retrieval.distance.cosine_distances_to`); order is
identical because the monolithic index breaks distance ties by row
position, and :func:`merge_topk` reproduces exactly that via a
``(distance, global position)`` lexicographic sort.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stable_hash64", "shard_of", "partition_positions",
           "merge_topk"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def stable_hash64(ids) -> np.ndarray:
    """splitmix64 finalizer over an array of (signed) 64-bit ids.

    Vectorized and process-stable: the same id always hashes to the
    same value, on any host, in any session.
    """
    z = np.asarray(ids, dtype=np.int64).astype(np.uint64) + _GOLDEN
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


def shard_of(item_id: int, num_shards: int) -> int:
    """Deterministic shard for one item id."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return int(stable_hash64(np.array([item_id]))[0]
               % np.uint64(num_shards))


def partition_positions(ids: np.ndarray,
                        num_shards: int) -> list[np.ndarray]:
    """Row positions per shard for an aligned id array.

    Returns ``num_shards`` position arrays (ascending within each
    shard — relative row order is preserved, which keeps per-shard tie
    breaking consistent with the monolithic index).  Every position
    appears in exactly one shard; shards may be empty for tiny
    corpora.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    assignment = stable_hash64(ids) % np.uint64(num_shards)
    return [np.flatnonzero(assignment == np.uint64(shard))
            for shard in range(num_shards)]


def merge_topk(parts, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-shard ``(positions, distances)`` pairs into a global
    top-``k``.

    ``parts`` is an iterable of pairs of aligned 1-D arrays, one pair
    per answering shard (empty pairs are fine).  The result is sorted
    by ``(distance, position)`` — the exact total order a monolithic
    stable argsort over candidate positions produces — and truncated
    to ``k``.  Returns ``(positions, distances)``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    pairs = [(np.asarray(p, dtype=np.int64),
              np.asarray(d, dtype=np.float64)) for p, d in parts]
    pairs = [(p, d) for p, d in pairs if p.size]
    if not pairs:
        return (np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64))
    positions = np.concatenate([p for p, __ in pairs])
    distances = np.concatenate([d for __, d in pairs])
    order = np.lexsort((positions, distances))[:k]
    return positions[order], distances[order]
