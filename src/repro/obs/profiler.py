"""Stdlib-only sampling profiler: where the CPU time actually goes.

A daemon sampler thread walks :func:`sys._current_frames` at a
configurable rate and folds each thread's Python stack into a bounded
collapsed-stack aggregate (Brendan Gregg's folded format:
``role;frame;frame;... count``).  Three tags make the samples
operationally useful rather than a flat heat map:

* **thread role** — threads are classified by name (gateway handlers,
  shard workers, compaction, the sampler itself), so a hot loop shows
  up *in the component that owns it*;
* **on-CPU vs blocked** — on Linux each sample diffs per-task CPU
  clocks from ``/proc/self/task/<tid>/stat``; a thread whose CPU clock
  advanced since the previous sample was running, one whose clock
  stalled was blocked (GIL wait, lock, socket, sleep).  Where procfs
  is unavailable a frame-name heuristic stands in;
* **request stage** — samples are paired with the tracer's open-span
  registry (:meth:`~repro.obs.tracing.Tracer.open_spans_by_thread`),
  splitting on-CPU vs blocked time per serving stage (admit, embed,
  index, materialize, ...), which is the question wall-clock spans
  alone cannot answer.

The profiler measures its own cost: every sampling pass is timed and
exposed as ``profiler_overhead_ratio`` plus a per-sample figure in
:meth:`SamplingProfiler.snapshot`, so the observer stays observable.

For incident response, :meth:`SamplingProfiler.capture_window` starts
a *bounded* sampling window (and a timer to stop it) — wired as an
``AlertManager.on_fire`` hook, an SLO page triggers a profile capture
whose aggregate lands in the flight-recorder bundle as
``profile.txt``.

Everything here is stdlib-only and samples *Python* frames: C
extensions (numpy kernels) attribute to the Python line that called
them, which is exactly the granularity the serving code needs.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Callable

__all__ = ["SamplingProfiler", "classify_thread", "proc_cpu_seconds",
           "parse_collapsed", "top_frames", "render_flame",
           "DEFAULT_HZ"]

DEFAULT_HZ = 61.0        # prime-ish: avoids lockstep with 10ms timers
MAX_STACK_DEPTH = 48

# Thread-name prefix -> role.  First match wins, so the more specific
# gateway-conn prefix precedes the gateway- control threads.
_ROLE_PREFIXES = (
    ("gateway-conn", "gateway_handler"),
    ("gateway-", "gateway_control"),
    ("shard-", "shard_worker"),
    ("hedge-", "shard_worker"),
    ("ingest-compaction", "compaction"),
    ("profiler", "profiler"),
    ("loadgen", "loadgen"),
    ("MainThread", "main"),
)

# Fallback blocked-detection when per-task CPU clocks are unavailable:
# a thread whose innermost Python frame is one of these well-known
# waiting functions is almost certainly off-CPU.
_BLOCKING_CO_NAMES = frozenset({
    "wait", "sleep", "acquire", "select", "poll", "recv", "recv_into",
    "recvfrom", "accept", "read", "readinto", "readline", "join",
    "_wait_for_tstate_lock", "sendall", "getaddrinfo", "settimeout",
})

try:
    _CLK_TCK = float(os.sysconf("SC_CLK_TCK"))
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _CLK_TCK = 100.0


def classify_thread(name: str) -> str:
    """Map a thread name to its serving role (``other`` if unknown)."""
    for prefix, role in _ROLE_PREFIXES:
        if name.startswith(prefix):
            return role
    return "other"


def proc_cpu_seconds(tids=None) -> dict[int, float] | None:
    """Per-task CPU seconds (user+sys) keyed by native thread id.

    Reads ``/proc/self/task/<tid>/stat``; returns ``None`` off Linux
    so callers fall back to the frame heuristic.  The sampler passes
    the native ids of the *Python* threads it is about to attribute,
    skipping BLAS/GC pool threads whose clocks it never reads; with
    ``tids=None`` every task is probed.  Raw ``os.open`` / ``os.read``
    keeps the per-thread cost to two syscalls — this runs once per
    sampling pass, inside the overhead budget.
    """
    task_dir = "/proc/self/task"
    if not os.path.isdir(task_dir):
        return None
    if tids is None:
        try:
            tids = os.listdir(task_dir)
        except OSError:
            return None
    out: dict[int, float] = {}
    for tid in tids:
        try:
            fd = os.open(f"{task_dir}/{tid}/stat", os.O_RDONLY)
            try:
                data = os.read(fd, 512)
            finally:
                os.close(fd)
            # comm (field 2) may contain spaces; split after its ')'.
            rest = data[data.rindex(b")") + 2:].split()
            utime, stime = int(rest[11]), int(rest[12])
            out[int(tid)] = (utime + stime) / _CLK_TCK
        except (OSError, ValueError, IndexError):
            continue
    return out


# frame-name cache keyed by code object: path-splitting every frame of
# every stack at 61 Hz is the sampler's single hottest line without it.
_NAME_CACHE: dict = {}
_NAME_CACHE_MAX = 8192


def _frame_name(frame) -> str:
    code = frame.f_code
    name = _NAME_CACHE.get(code)
    if name is None:
        module = os.path.splitext(
            os.path.basename(code.co_filename))[0]
        name = f"{module}.{code.co_name}"
        if len(_NAME_CACHE) >= _NAME_CACHE_MAX:   # dynamic code churn
            _NAME_CACHE.clear()
        _NAME_CACHE[code] = name
    return name


def _fold(frame, max_depth: int = MAX_STACK_DEPTH) -> list[str]:
    """Innermost frame -> root-first list of ``module.func`` names."""
    names: list[str] = []
    while frame is not None and len(names) < max_depth:
        names.append(_frame_name(frame))
        frame = frame.f_back
    names.reverse()
    return names


def _looks_blocked(frame) -> bool:
    return frame is not None and \
        frame.f_code.co_name in _BLOCKING_CO_NAMES


class SamplingProfiler:
    """Wall/CPU sampling profiler over ``sys._current_frames``.

    Parameters
    ----------
    hz:
        Target sampling rate; the sampler sleeps ``1/hz`` between
        passes and never tries to catch up after falling behind.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`; when present each
        sample is attributed to the sampled thread's innermost open
        span, producing the per-stage on-CPU/blocked split.
    registry:
        Optional :class:`~repro.obs.MetricsRegistry` for the
        ``profiler_*`` metric families.
    max_stacks:
        Bound on distinct collapsed stacks retained; further new
        stacks fold into a per-role ``<overflow>`` bucket so memory
        stays bounded under pathological stack churn.
    window_s:
        Default duration of an alert-triggered capture window.
    frames_fn, threads_fn, cpu_probe, clock:
        Injection points for deterministic tests; production uses
        ``sys._current_frames``, ``threading.enumerate``,
        :func:`proc_cpu_seconds` and ``time.monotonic``.
    """

    def __init__(self, hz: float = DEFAULT_HZ, *, tracer=None,
                 registry=None, max_stacks: int = 2048,
                 window_s: float = 10.0,
                 frames_fn: Callable[[], dict] = sys._current_frames,
                 threads_fn: Callable[[], list] = threading.enumerate,
                 cpu_probe: Callable[[list], dict | None] | None
                 = proc_cpu_seconds,
                 clock: Callable[[], float] = time.monotonic):
        self.hz = float(hz)
        self.interval = 1.0 / max(self.hz, 1e-6)
        self.tracer = tracer
        self.max_stacks = int(max_stacks)
        self.window_s = float(window_s)
        self._frames_fn = frames_fn
        self._threads_fn = threads_fn
        self._cpu_probe = cpu_probe
        self._clock = clock
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        # Aggregates survive stop/start; reset() clears them.  Stacks
        # are keyed by (role, frame, frame, ...) tuples of cached
        # strings — joining into folded lines happens at read time,
        # not 61 times a second on the sampler thread.
        self._stacks: dict[tuple, int] = {}
        self._roles: dict[tuple[str, str], int] = {}
        self._stages: dict[tuple[str, str], int] = {}
        self._samples = 0
        self._dropped = 0
        self._windows = 0
        self._overhead_s = 0.0
        self._active_wall_s = 0.0
        self._started_at: float | None = None
        self._last_cpu: dict[int, float] = {}
        self._window_deadline: float | None = None
        self._window_started = False
        self._own_ident: int | None = None
        # labels() takes the family lock on every call; the sampler
        # hits the same few (role, state) children 61 times a second,
        # so resolve each child once and reuse it.
        self._label_cache: dict[tuple, object] = {}
        self._metrics = None
        if registry is not None:
            self._metrics = {
                "samples": registry.counter(
                    "profiler_samples_total",
                    "profiler samples by thread role and cpu state",
                    labels=("role", "state")),
                "stages": registry.counter(
                    "profiler_stage_samples_total",
                    "profiler samples attributed to open request "
                    "stages", labels=("stage", "state")),
                "overhead": registry.gauge(
                    "profiler_overhead_ratio",
                    "fraction of wall time spent inside the sampler"),
                "stacks": registry.gauge(
                    "profiler_distinct_stacks",
                    "distinct collapsed stacks currently retained"),
                "windows": registry.counter(
                    "profiler_windows_total",
                    "bounded capture windows triggered (alerts)"),
            }

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def set_hz(self, hz: float) -> None:
        """Change the sampling rate (takes effect next interval)."""
        self.hz = float(hz)
        self.interval = 1.0 / max(self.hz, 1e-6)

    def start(self) -> bool:
        """Start the sampler thread; ``True`` if newly started."""
        with self._lock:
            if self.running:
                return False
            self._stop.clear()
            self._started_at = self._clock()
            self._thread = threading.Thread(
                target=self._loop, name="profiler-sampler", daemon=True)
            self._thread.start()
            return True

    def stop(self) -> bool:
        """Stop and join the sampler; ``True`` if it was running."""
        with self._lock:
            thread = self._thread
            if thread is None:
                return False
            self._stop.set()
            self._thread = None
            if self._started_at is not None:
                self._active_wall_s += max(
                    self._clock() - self._started_at, 0.0)
                self._started_at = None
        if thread.is_alive() and \
                thread is not threading.current_thread():
            thread.join(timeout=2.0)
        return True

    def reset(self) -> None:
        """Clear every aggregate (counts, stacks, overhead)."""
        with self._lock:
            self._stacks.clear()
            self._roles.clear()
            self._stages.clear()
            self._samples = 0
            self._dropped = 0
            self._overhead_s = 0.0
            self._active_wall_s = 0.0
            if self._started_at is not None:
                self._started_at = self._clock()
            self._last_cpu.clear()

    def _loop(self) -> None:
        self._own_ident = threading.get_ident()
        next_at = time.monotonic()
        while not self._stop.is_set():
            self.sample_once()
            next_at += self.interval
            delay = next_at - time.monotonic()
            if delay <= 0:
                next_at = time.monotonic()  # fell behind; no bursts
                continue
            self._stop.wait(delay)

    # -- one sampling pass ---------------------------------------------
    def sample_once(self) -> None:
        """Take one sample of every thread (callable directly in
        tests — the sampler thread just calls this in a loop)."""
        t0 = time.perf_counter()
        frames = self._frames_fn()
        threads = {t.ident: t for t in self._threads_fn()}
        cpu = None
        if self._cpu_probe is not None:
            native = [t.native_id for t in threads.values()
                      if getattr(t, "native_id", None) is not None]
            cpu = self._cpu_probe(native)
        open_spans = (self.tracer.open_spans_by_thread()
                      if self.tracer is not None else {})
        with self._lock:
            self._samples += 1
            for ident, frame in frames.items():
                thread = threads.get(ident)
                name = thread.name if thread is not None \
                    else f"thread-{ident}"
                role = ("profiler" if ident == self._own_ident
                        else classify_thread(name))
                state = self._thread_state(thread, frame, cpu)
                self._roles[(role, state)] = \
                    self._roles.get((role, state), 0) + 1
                if self._metrics is not None:
                    self._labeled("samples", role=role,
                                  state=state).inc()
                if role == "profiler":
                    continue     # own stack is pure overhead noise
                span = open_spans.get(ident)
                if span is not None:
                    key = (span.name, state)
                    self._stages[key] = self._stages.get(key, 0) + 1
                    if self._metrics is not None:
                        self._labeled("stages", stage=span.name,
                                      state=state).inc()
                self._record_stack(role, frame)
            if cpu is not None:
                self._last_cpu = cpu
            self._overhead_s += time.perf_counter() - t0
            if self._metrics is not None:
                self._metrics["overhead"].set(self._overhead_fraction())
                self._metrics["stacks"].set(len(self._stacks))

    def _labeled(self, family: str, **labels):
        key = (family,) + tuple(sorted(labels.items()))
        child = self._label_cache.get(key)
        if child is None:
            child = self._metrics[family].labels(**labels)
            self._label_cache[key] = child
        return child

    def _thread_state(self, thread, frame, cpu: dict | None) -> str:
        """``cpu`` or ``blocked`` for one sampled thread."""
        native = getattr(thread, "native_id", None)
        if cpu is not None and native is not None and native in cpu:
            last = self._last_cpu.get(native)
            if last is not None:
                return "cpu" if cpu[native] > last else "blocked"
        return "blocked" if _looks_blocked(frame) else "cpu"

    def _record_stack(self, role: str, frame) -> None:
        key = (role, *_fold(frame))
        if key not in self._stacks and \
                len(self._stacks) >= self.max_stacks:
            key = (role, "<overflow>")
            self._dropped += 1
        self._stacks[key] = self._stacks.get(key, 0) + 1

    # -- capture windows ------------------------------------------------
    def capture_window(self, duration_s: float | None = None) -> bool:
        """Sample for a bounded window; ``True`` if this call started
        the sampler (an already-running profiler just keeps going —
        the window then only extends bookkeeping, never stops it)."""
        duration = float(duration_s if duration_s is not None
                         else self.window_s)
        deadline = time.monotonic() + duration
        with self._lock:
            self._windows += 1
            if self._metrics is not None:
                self._metrics["windows"].inc()
            self._window_deadline = max(self._window_deadline or 0.0,
                                        deadline)
        started = self.start()
        if started:
            self._window_started = True
        timer = threading.Timer(duration + 0.05,
                                self._maybe_close_window)
        timer.daemon = True
        timer.start()
        return started

    def _maybe_close_window(self) -> None:
        with self._lock:
            deadline = self._window_deadline
            window_started = self._window_started
        if not window_started or deadline is None:
            return
        if time.monotonic() >= deadline:
            self._window_started = False
            self._window_deadline = None
            self.stop()

    def on_alert(self, alert) -> None:
        """``AlertManager.on_fire`` hook: page -> bounded profile."""
        self.capture_window()

    # -- inspection ------------------------------------------------------
    def _overhead_fraction(self) -> float:
        wall = self._active_wall_s
        if self._started_at is not None:
            wall += max(self._clock() - self._started_at, 0.0)
        if wall <= 0.0:
            return 0.0
        return min(self._overhead_s / wall, 1.0)

    def collapsed(self, max_lines: int | None = None) -> list[str]:
        """Aggregate as Brendan Gregg folded lines, hottest first."""
        with self._lock:
            items = sorted(self._stacks.items(),
                           key=lambda kv: (-kv[1], kv[0]))
        if max_lines is not None:
            items = items[:max_lines]
        return [f"{';'.join(key)} {count}" for key, count in items]

    def top(self, n: int = 15) -> list[dict]:
        """Hottest leaf frames by self samples."""
        return top_frames(self.collapsed(), n)

    def snapshot(self) -> dict:
        """JSON-ready summary of everything the sampler knows."""
        with self._lock:
            samples = self._samples
            overhead = self._overhead_s
            fraction = self._overhead_fraction()
            roles: dict[str, dict[str, int]] = {}
            for (role, state), count in sorted(self._roles.items()):
                roles.setdefault(role, {})[state] = count
            stages: dict[str, dict[str, int]] = {}
            for (stage, state), count in sorted(self._stages.items()):
                stages.setdefault(stage, {})[state] = count
            distinct = len(self._stacks)
            dropped = self._dropped
            windows = self._windows
        return {
            "running": self.running,
            "hz": self.hz,
            "samples": samples,
            "distinct_stacks": distinct,
            "dropped_stacks": dropped,
            "windows": windows,
            "roles": roles,
            "stages": stages,
            "self_overhead": {
                "seconds": overhead,
                "fraction": fraction,
                "per_sample_us": (overhead / samples * 1e6
                                  if samples else 0.0),
            },
            "top": self.top(10),
        }


# -- collapsed-profile post-processing (shared with the CLI) -----------

def parse_collapsed(lines) -> list[tuple[list[str], int]]:
    """Parse folded lines into ``(frames, count)`` pairs."""
    out: list[tuple[list[str], int]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        try:
            out.append((stack.split(";"), int(count)))
        except ValueError:
            continue
    return out


def top_frames(lines, n: int = 15) -> list[dict]:
    """Hottest leaf frames (self samples) from folded lines."""
    total = 0
    leaves: dict[str, int] = {}
    for frames, count in parse_collapsed(lines):
        total += count
        leaf = frames[-1] if frames else "?"
        leaves[leaf] = leaves.get(leaf, 0) + count
    ranked = sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
    return [{"frame": frame, "samples": count,
             "share": count / total if total else 0.0}
            for frame, count in ranked]


def render_flame(lines, width: int = 80, min_share: float = 0.01
                 ) -> str:
    """ASCII flame tree from folded lines: indentation is depth, the
    bar length is the subtree's share of all samples."""
    root: dict = {}
    total = 0
    for frames, count in parse_collapsed(lines):
        total += count
        node = root
        for frame in frames:
            entry = node.setdefault(frame, {"count": 0, "children": {}})
            entry["count"] += count
            node = entry["children"]
    if not total:
        return "(no samples)"
    out: list[str] = [f"total samples: {total}"]
    bar_width = max(width - 50, 10)

    def walk(children: dict, depth: int) -> None:
        ranked = sorted(children.items(),
                        key=lambda kv: (-kv[1]["count"], kv[0]))
        for frame, entry in ranked:
            share = entry["count"] / total
            if share < min_share:
                continue
            bar = "#" * max(int(share * bar_width), 1)
            label = ("  " * depth + frame)[:48]
            out.append(f"{label:<48} {entry['count']:>7} "
                       f"{share * 100:5.1f}% {bar}")
            walk(entry["children"], depth + 1)

    walk(root, 0)
    return "\n".join(out)
