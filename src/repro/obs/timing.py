"""Timers that feed histograms, as decorators or context managers.

``Timer`` is the glue between "I want to know how long this takes"
and the metrics layer: wrap a block (or decorate a function) and the
elapsed seconds are observed into a histogram, with the last reading
kept on :attr:`Timer.last` for callers that want the raw number.
"""

from __future__ import annotations

import functools
import time
from typing import Callable

__all__ = ["Timer"]


class Timer:
    """Measure elapsed seconds into an optional histogram.

    Usable three ways::

        with Timer(histogram):            # context manager
            work()

        @Timer(histogram)                 # decorator
        def work(): ...

        timer = Timer(); timer.start(); work(); timer.stop()

    ``histogram`` is anything with ``observe(seconds)`` — a
    :class:`~repro.obs.metrics.Histogram` child or family — and may be
    ``None`` to just measure.  ``callback`` (if given) receives each
    elapsed reading after the histogram does.
    """

    def __init__(self, histogram=None,
                 clock: Callable[[], float] = time.perf_counter,
                 callback: Callable[[float], None] | None = None):
        self.histogram = histogram
        self.clock = clock
        self.callback = callback
        self.last: float | None = None
        self._started: float | None = None

    # -- explicit ------------------------------------------------------
    def start(self) -> "Timer":
        self._started = self.clock()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("Timer.stop() without start()")
        elapsed = self.clock() - self._started
        self._started = None
        self._record(elapsed)
        return elapsed

    def _record(self, elapsed: float) -> None:
        self.last = elapsed
        if self.histogram is not None:
            self.histogram.observe(elapsed)
        if self.callback is not None:
            self.callback(elapsed)

    # -- context manager -----------------------------------------------
    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Failures are timed too: a slow *failing* stage is exactly
        # what a latency histogram must not hide.
        self.stop()
        return False

    # -- decorator -----------------------------------------------------
    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            start = self.clock()
            try:
                return fn(*args, **kwargs)
            finally:
                self._record(self.clock() - start)
        return wrapped
