"""Dependency-free telemetry: metrics, traces, timers, event logs.

The observability layer every other subsystem reports into:

* :mod:`~repro.obs.metrics` — thread-safe counters/gauges/histograms
  with Prometheus-text and JSON exposition;
* :mod:`~repro.obs.tracing` — context-manager spans with parent links
  and a bounded ring buffer, exportable as JSONL;
* :mod:`~repro.obs.timing` — histogram-feeding timers (decorator or
  context manager);
* :mod:`~repro.obs.events` — structured event log replacing bare
  ``print`` progress output.

:class:`Telemetry` bundles one of each around an optional shared JSONL
sink: pass ``jsonl_path`` and every span and event is appended to the
file as it happens, with a final metrics snapshot written on
:meth:`Telemetry.close` — the trace the CLI's ``--telemetry-jsonl``
flag and ``repro metrics dump`` operate on.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from typing import Callable

from .critpath import (SpanNode, TraceTree, aggregate, build_traces,
                       critical_path, kept_trace_tree, render_tree,
                       self_time, spans_from_jsonl)
from .drift import (DRIFT_REFERENCE_NAME, DRIFT_SIGNALS, DriftMonitor,
                    DriftReference, QuantileSketch, ks_statistic, psi)
from .events import EventLog
from .flight import FlightRecorder
from .memledger import (MemoryLedger, approx_bytes, ndarray_bytes,
                        ring_bytes, rss_bytes)
from .metrics import (DEFAULT_BUCKETS, LATENCY_BUCKETS, Counter, Gauge,
                      Histogram, MetricError, MetricsRegistry,
                      ParsedExposition, parse_prometheus,
                      quantile_from_counts)
from .probes import GoldenProbe, GoldenSet, ProbeQuery
from .profiler import (DEFAULT_HZ as DEFAULT_PROFILE_HZ,
                       SamplingProfiler, classify_thread,
                       parse_collapsed, render_flame, top_frames)
from .sanitize import is_finite_number, json_safe
from .slo import (DEFAULT_WINDOWS, SLO, Alert, AlertManager,
                  BurnRateWindow, default_serving_slos)
from .timing import Timer
from .tracing import (KeptTrace, Span, SpanRecord, TraceContext,
                      Tracer, TraceSampler)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricError", "MetricsRegistry",
    "DEFAULT_BUCKETS", "LATENCY_BUCKETS", "parse_prometheus",
    "ParsedExposition",
    "quantile_from_counts", "is_finite_number", "json_safe",
    "Span", "SpanRecord", "Tracer", "TraceContext", "TraceSampler",
    "KeptTrace", "Timer", "EventLog",
    "SpanNode", "TraceTree", "build_traces", "critical_path",
    "self_time", "aggregate", "render_tree", "spans_from_jsonl",
    "kept_trace_tree",
    "JsonlWriter", "Telemetry",
    "read_jsonl", "last_metrics_snapshot",
    "QuantileSketch", "psi", "ks_statistic", "DRIFT_SIGNALS",
    "DRIFT_REFERENCE_NAME", "DriftReference", "DriftMonitor",
    "ProbeQuery", "GoldenSet", "GoldenProbe",
    "SLO", "BurnRateWindow", "Alert", "AlertManager",
    "DEFAULT_WINDOWS", "default_serving_slos",
    "FlightRecorder",
    "SamplingProfiler", "DEFAULT_PROFILE_HZ", "classify_thread",
    "parse_collapsed", "top_frames", "render_flame",
    "MemoryLedger", "rss_bytes", "approx_bytes", "ring_bytes",
    "ndarray_bytes",
]


class JsonlWriter:
    """Append-only, thread-safe JSON-lines sink."""

    def __init__(self, path):
        self.path = path
        parent = pathlib.Path(path).parent
        if parent and not parent.exists():
            parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(path, "a")
        self.lines_written = 0

    def __call__(self, record: dict) -> None:
        line = json.dumps(json_safe(record), sort_keys=True,
                          default=str)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()     # crash-safe: every line lands
            self.lines_written += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class Telemetry:
    """One registry + tracer + event log sharing a JSONL sink.

    Every subsystem takes an optional ``Telemetry``; passing the same
    instance to the trainer and the service makes their metrics land
    in one registry and their spans in one trace.  Without
    ``jsonl_path`` everything stays in memory (ring buffers), which is
    the quiet default for library use.
    """

    def __init__(self, jsonl_path=None,
                 clock: Callable[[], float] = time.monotonic,
                 max_spans: int = 4096, max_events: int = 4096,
                 printer: Callable[[str], None] | None = None,
                 trace_sample_fraction: float | None = None):
        self.clock = clock
        self.writer = JsonlWriter(jsonl_path) if jsonl_path else None
        self.registry = MetricsRegistry()
        self.sampler = None
        if trace_sample_fraction is not None:
            self.sampler = TraceSampler(fraction=trace_sample_fraction,
                                        registry=self.registry)
        self.tracer = Tracer(clock=clock, max_spans=max_spans,
                             sink=self.writer, sampler=self.sampler)
        self.events = EventLog(max_events=max_events, clock=clock,
                               sink=self.writer, printer=printer)

    @property
    def jsonl_path(self):
        return self.writer.path if self.writer is not None else None

    def snapshot(self) -> dict:
        """Current registry state as the JSON exposition dict."""
        return self.registry.to_dict()

    def close(self) -> None:
        """Write the final metrics snapshot and release the sink."""
        if self.writer is not None:
            self.writer({"kind": "metrics", "ts": self.clock(),
                         "metrics": self.snapshot()})
            self.writer.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_jsonl(path) -> list[dict]:
    """Load every record of a telemetry JSONL trace."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def last_metrics_snapshot(path) -> dict | None:
    """The most recent ``{"kind": "metrics"}`` record's payload, or
    ``None`` if the trace has no snapshot (e.g. a crashed run)."""
    snapshot = None
    for record in read_jsonl(path):
        if record.get("kind") == "metrics":
            snapshot = record.get("metrics")
    return snapshot
