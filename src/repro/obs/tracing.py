"""In-process tracing: context-manager spans with parent links.

A :class:`Tracer` hands out :class:`Span` context managers.  Spans
opened while another span is active on the same thread become its
children (parenting is tracked with a thread-local stack, so serving
threads never share lineage by accident).  Crossing a thread boundary
is explicit: the submitting thread calls :meth:`Tracer.capture` to
snapshot its active span as a :class:`TraceContext`, and the worker
re-attaches it with ``with tracer.attach(ctx):`` so spans it opens
join the same trace instead of starting orphan roots.

Finished spans land in a bounded ring buffer in completion order —
children before parents — and, when the tracer has a sink, are also
emitted as JSONL events the moment they close, so a crash still
leaves a usable trace on disk.  Child records are attached to their
parent *by parent id under the tracer lock*, not by inspecting the
finishing thread's stack, so fan-out stages closed on worker threads
still land in ``parent.children``.

A :class:`TraceSampler` implements Dapper-style tail-based sampling:
spans buffer per trace until the root closes, then the whole trace is
kept at 100% when anything looks wrong (an errored span, a
shed/partial/degraded request, or a duration above the rolling p99 of
recent roots) and at a configured fraction otherwise.  Memory is
bounded at every stage and each decision increments
``traces_sampled_total{verdict}``.

Ids are monotonic counters, not random: traces stay deterministic
under test and cost nothing to allocate.
"""

from __future__ import annotations

import contextlib
import itertools
import random
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["SpanRecord", "Span", "TraceContext", "Tracer",
           "TraceSampler", "KeptTrace"]


@dataclass
class SpanRecord:
    """Immutable summary of one finished span."""

    name: str
    trace_id: int
    span_id: int
    parent_id: int | None
    start: float
    duration: float
    status: str = "ok"               # ok | error
    error: str | None = None
    attributes: dict = field(default_factory=dict)

    def to_event(self) -> dict:
        """JSONL-ready representation."""
        event = {"kind": "span", "name": self.name,
                 "trace_id": self.trace_id, "span_id": self.span_id,
                 "parent_id": self.parent_id, "start": self.start,
                 "duration_ms": self.duration * 1000.0,
                 "status": self.status}
        if self.error is not None:
            event["error"] = self.error
        if self.attributes:
            # Nested, not flattened: user attributes (e.g. "kind")
            # must never clobber the record's own fields.
            event["attributes"] = dict(self.attributes)
        return event

    @classmethod
    def from_event(cls, event: dict) -> "SpanRecord":
        """Inverse of :meth:`to_event` (tolerates missing fields)."""
        return cls(name=event.get("name", "?"),
                   trace_id=event.get("trace_id", 0),
                   span_id=event.get("span_id", 0),
                   parent_id=event.get("parent_id"),
                   start=float(event.get("start", 0.0)),
                   duration=float(event.get("duration_ms", 0.0)) / 1000.0,
                   status=event.get("status", "ok"),
                   error=event.get("error"),
                   attributes=dict(event.get("attributes", {})))


@dataclass(frozen=True)
class TraceContext:
    """Portable handle to an active span, safe to hand across threads.

    Only the ids travel — never the :class:`Span` object itself, whose
    mutable state belongs to the opening thread.  Attaching a context
    on another thread makes it the parent for spans opened there, and
    nothing more: the context cannot be closed, only detached.
    """

    trace_id: int
    span_id: int


class Span:
    """One unit of traced work; use as a context manager.

    Attribute mutation is allowed while the span is open
    (:meth:`set_attribute`); after close, :attr:`record` holds the
    frozen :class:`SpanRecord` and :attr:`children` the records of
    every direct child, in completion order — which is how the serving
    layer turns a request span into a per-stage latency breakdown.
    Children that close after this span does are dropped from
    ``children`` (the parent record is already frozen) but still reach
    the ring buffer and sink with the correct ``parent_id``.
    """

    __slots__ = ("_tracer", "name", "trace_id", "span_id", "parent_id",
                 "attributes", "children", "record", "_start")

    def __init__(self, tracer: "Tracer", name: str, trace_id: int,
                 span_id: int, parent_id: int | None, attributes: dict):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.children: list[SpanRecord] = []
        self.record: SpanRecord | None = None
        self._start: float | None = None

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    @property
    def duration(self) -> float | None:
        """Seconds, available once the span has closed."""
        return self.record.duration if self.record is not None else None

    def context(self) -> TraceContext:
        """This span's ids as a thread-portable :class:`TraceContext`."""
        return TraceContext(self.trace_id, self.span_id)

    def __enter__(self) -> "Span":
        self._start = self._tracer._clock()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._tracer._clock()
        self._tracer._pop(self)
        status, error = "ok", None
        if exc is not None:
            status = "error"
            error = f"{exc_type.__name__}: {exc}"
        self.record = SpanRecord(
            name=self.name, trace_id=self.trace_id,
            span_id=self.span_id, parent_id=self.parent_id,
            start=self._start, duration=end - self._start,
            status=status, error=error, attributes=dict(self.attributes))
        self._tracer._finish(self)
        return False  # never swallow exceptions


class Tracer:
    """Span factory with a bounded finished-span ring buffer."""

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 max_spans: int = 4096,
                 sink: Callable[[dict], None] | None = None,
                 sampler: "TraceSampler | None" = None):
        self._clock = clock
        self._sink = sink
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        # Per-thread span stacks, keyed by thread ident rather than
        # hidden in a threading.local: the owning thread is the only
        # writer, but the profiler reads a snapshot to pair samples
        # with the innermost open span (open_spans_by_thread).
        self._stacks: dict[int, list] = {}
        self.finished: deque[SpanRecord] = deque(maxlen=max_spans)
        # Spans currently open anywhere in the process, by span id.
        # _finish resolves parents here — not on the finishing
        # thread's stack — so cross-thread children attach correctly.
        self._open: dict[int, Span] = {}
        self._total_finished = 0
        self._exported = 0           # high-water mark for export_jsonl
        self.sampler = sampler

    # -- per-thread span stack ------------------------------------------
    def _stack(self) -> list:
        ident = threading.get_ident()
        stack = self._stacks.get(ident)
        if stack is None:
            stack = self._stacks[ident] = []
        return stack

    def current(self):
        """Active :class:`Span` or attached :class:`TraceContext`."""
        stack = self._stack()
        while stack:
            top = stack[-1]
            if isinstance(top, Span) and top.record is not None:
                # Closed on another thread: its __exit__ popped that
                # thread's stack, not ours.  Prune lazily so later
                # spans here don't parent to a finished span.
                stack.pop()
                continue
            return top
        return None

    def _push(self, span: Span) -> None:
        self._stack().append(span)
        with self._lock:
            self._open[span.span_id] = span

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:           # mis-nested exit; recover anyway
            stack.remove(span)
        if not stack:                 # don't leak dead threads' stacks
            self._stacks.pop(threading.get_ident(), None)

    def open_spans_by_thread(self) -> dict[int, Span]:
        """Innermost *open* span per thread ident — the registry the
        sampling profiler pairs stack samples with.  Stacks are only
        mutated by their owning threads; this reads shallow copies, so
        a torn read can at worst miss one span transition."""
        out: dict[int, Span] = {}
        for ident, stack in list(self._stacks.items()):
            for item in reversed(tuple(stack)):
                if isinstance(item, Span) and item.record is None:
                    out[ident] = item
                    break
        return out

    # -- cross-thread propagation --------------------------------------
    def capture(self) -> TraceContext | None:
        """Snapshot the calling thread's active span for hand-off.

        Returns ``None`` when no span is active, which :meth:`attach`
        accepts as a no-op — call sites never need to branch.
        """
        current = self.current()
        if current is None:
            return None
        return TraceContext(current.trace_id, current.span_id)

    @contextlib.contextmanager
    def attach(self, ctx: TraceContext | None):
        """Adopt a captured context as the calling thread's parent.

        Spans opened inside the ``with`` block become children of the
        captured span, in its trace.  Re-attaching the same context
        (even nested) is harmless; attaching ``None`` is a no-op.
        """
        if ctx is None:
            yield None
            return
        stack = self._stack()
        stack.append(ctx)
        try:
            yield ctx
        finally:
            if stack and stack[-1] is ctx:
                stack.pop()
            elif ctx in stack:        # mis-nested detach; recover
                stack.remove(ctx)
            if not stack:
                self._stacks.pop(threading.get_ident(), None)

    # -- span lifecycle ------------------------------------------------
    def span(self, name: str, **attributes) -> Span:
        """Create a child of the current thread's active span."""
        parent = self.current()
        with self._lock:
            span_id = next(self._ids)
            trace_id = (parent.trace_id if parent is not None
                        else next(self._ids))
        return Span(self, name, trace_id, span_id,
                    parent.span_id if parent is not None else None,
                    attributes)

    def record_span(self, name: str, start: float, duration: float,
                    status: str = "ok", **attributes) -> SpanRecord:
        """Record an already-measured interval as a closed span.

        For work whose extent was timed by other means — e.g. the
        admission queue measures enqueue→dequeue itself — this emits a
        child of the calling thread's active span without the
        open/close ceremony.
        """
        parent = self.current()
        with self._lock:
            span_id = next(self._ids)
            trace_id = (parent.trace_id if parent is not None
                        else next(self._ids))
        record = SpanRecord(
            name=name, trace_id=trace_id, span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            start=start, duration=duration, status=status,
            attributes=dict(attributes))
        self._emit(record)
        return record

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._open.pop(span.span_id, None)
        self._emit(span.record)

    def _emit(self, record: SpanRecord) -> None:
        with self._lock:
            parent = (self._open.get(record.parent_id)
                      if record.parent_id is not None else None)
            if parent is not None and parent.trace_id == record.trace_id:
                parent.children.append(record)
            self.finished.append(record)
            self._total_finished += 1
        if self._sink is not None:
            self._sink(record.to_event())
        if self.sampler is not None:
            self.sampler.observe(record)

    def retained_bytes(self) -> int:
        """Estimated bytes held by the finished-span ring buffer plus
        the open-span registry — how much memory tracing itself
        retains, for the memory ledger."""
        from .memledger import ring_bytes

        with self._lock:
            finished = list(self.finished)
            open_spans = list(self._open.values())
        return ring_bytes(finished) + ring_bytes(open_spans)

    # -- export --------------------------------------------------------
    def to_events(self) -> list[dict]:
        with self._lock:
            return [record.to_event() for record in self.finished]

    def records(self) -> list[SpanRecord]:
        """Snapshot of the ring buffer, oldest first."""
        with self._lock:
            return list(self.finished)

    def export_jsonl(self, path) -> int:
        """Append spans finished since the last export to ``path``.

        A high-water mark makes repeated exports (periodic flush plus
        a flight-recorder dump, say) append only fresh spans instead
        of duplicating the whole ring buffer; returns the count
        written.  Spans that aged out of the ring buffer between
        exports are lost, never re-sent.
        """
        import json

        with self._lock:
            fresh = min(self._total_finished - self._exported,
                        len(self.finished))
            events = [record.to_event()
                      for record in list(self.finished)[-fresh:]] \
                if fresh > 0 else []
            self._exported = self._total_finished
        with open(path, "a") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)


@dataclass
class KeptTrace:
    """One trace retained by the tail sampler, with its verdict."""

    trace_id: int
    verdict: str                     # error | flagged | slow | sampled
    root_name: str
    duration: float
    spans: list[SpanRecord] = field(default_factory=list)

    def to_event(self) -> dict:
        return {"kind": "trace", "trace_id": self.trace_id,
                "verdict": self.verdict, "root_name": self.root_name,
                "duration_ms": self.duration * 1000.0,
                "spans": [span.to_event() for span in self.spans]}


class TraceSampler:
    """Tail-based sampling: decide once the whole trace is visible.

    Spans buffer per trace id until the root span (``parent_id is
    None``) closes.  The finished trace is then kept with verdict

    * ``error``   — any span in the trace closed with an error;
    * ``flagged`` — the root's ``status`` attribute marks a degraded
      outcome (shed / partial / degraded / timeout / error);
    * ``slow``    — root duration above the rolling p99 of recent
      root durations (once enough history exists);
    * ``sampled`` — none of the above, but the coin flip landed
      inside ``fraction``;

    or discarded with verdict ``dropped``.  Traces evicted while still
    pending (memory bound hit before their root closed) count as
    ``evicted``.  Every decision increments
    ``traces_sampled_total{verdict}`` when a registry is attached.
    """

    FLAGGED = frozenset({"shed", "partial", "degraded", "timeout",
                         "error"})

    def __init__(self, fraction: float = 0.1, max_pending: int = 256,
                 max_kept: int = 64, max_spans_per_trace: int = 512,
                 p99_window: int = 256, min_history: int = 20,
                 registry=None, seed: int = 0):
        self.fraction = float(fraction)
        self.max_pending = int(max_pending)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self.min_history = int(min_history)
        self._lock = threading.Lock()
        self._pending: OrderedDict[int, list[SpanRecord]] = OrderedDict()
        self._decided: OrderedDict[int, KeptTrace | None] = OrderedDict()
        self._kept: deque[KeptTrace] = deque(maxlen=max_kept)
        self._durations: deque[float] = deque(maxlen=p99_window)
        self._rng = random.Random(seed)
        self._counter = None
        if registry is not None:
            self._counter = registry.counter(
                "traces_sampled_total",
                "tail-sampling decisions by verdict",
                labels=("verdict",))

    # -- ingest ---------------------------------------------------------
    def observe(self, record: SpanRecord) -> None:
        """Feed one finished span; decides the trace on root close."""
        verdicts: list[str] = []
        with self._lock:
            trace_id = record.trace_id
            if trace_id in self._decided:
                # Late arrival (e.g. a losing hedge lane finishing
                # after the request closed): ride the earlier verdict.
                kept = self._decided[trace_id]
                if kept is not None and \
                        len(kept.spans) < self.max_spans_per_trace:
                    kept.spans.append(record)
                return
            spans = self._pending.get(trace_id)
            if spans is None:
                spans = self._pending[trace_id] = []
                while len(self._pending) > self.max_pending:
                    evicted_id, _ = self._pending.popitem(last=False)
                    self._remember(evicted_id, None)
                    verdicts.append("evicted")
            if len(spans) < self.max_spans_per_trace:
                spans.append(record)
            if record.parent_id is None:
                verdicts.append(self._decide(record))
        for verdict in verdicts:
            if self._counter is not None:
                self._counter.labels(verdict=verdict).inc()

    def _decide(self, root: SpanRecord) -> str:
        """Close out ``root``'s trace; caller holds the lock."""
        spans = self._pending.pop(root.trace_id, [])
        verdict = None
        if any(span.status == "error" for span in spans):
            verdict = "error"
        elif str(root.attributes.get("status", "ok")) in self.FLAGGED:
            verdict = "flagged"
        elif (len(self._durations) >= self.min_history
              and root.duration > self._p99()):
            verdict = "slow"
        elif self._rng.random() < self.fraction:
            verdict = "sampled"
        self._durations.append(root.duration)
        if verdict is None:
            self._remember(root.trace_id, None)
            return "dropped"
        kept = KeptTrace(trace_id=root.trace_id, verdict=verdict,
                         root_name=root.name, duration=root.duration,
                         spans=spans)
        self._kept.append(kept)
        self._remember(root.trace_id, kept)
        return verdict

    def _remember(self, trace_id: int, kept: KeptTrace | None) -> None:
        self._decided[trace_id] = kept
        while len(self._decided) > 4 * self.max_pending:
            self._decided.popitem(last=False)

    def _p99(self) -> float:
        ordered = sorted(self._durations)
        index = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return ordered[index]

    # -- inspection ------------------------------------------------------
    def kept(self) -> list[KeptTrace]:
        """Retained traces, oldest first."""
        with self._lock:
            return list(self._kept)

    def get(self, trace_id: int) -> KeptTrace | None:
        with self._lock:
            for trace in self._kept:
                if trace.trace_id == trace_id:
                    return trace
        return None

    def pending_traces(self) -> int:
        with self._lock:
            return len(self._pending)

    def retained_bytes(self) -> int:
        """Estimated bytes buffered by tail sampling (pending spans
        awaiting a root, kept traces, and the decision cache)."""
        from .memledger import approx_bytes, ring_bytes

        with self._lock:
            pending = [span for spans in self._pending.values()
                       for span in spans]
            kept = [span for trace in self._kept
                    for span in trace.spans]
            decided = len(self._decided)
        return (ring_bytes(pending) + ring_bytes(kept)
                + decided * approx_bytes(0) * 2)

    def to_events(self) -> list[dict]:
        """Kept traces as JSONL-ready events (for flight bundles)."""
        return [trace.to_event() for trace in self.kept()]
