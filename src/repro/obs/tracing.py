"""In-process tracing: context-manager spans with parent links.

A :class:`Tracer` hands out :class:`Span` context managers.  Spans
opened while another span is active on the same thread become its
children (parenting is tracked with a thread-local stack, so serving
threads never share lineage by accident).  Finished spans land in a
bounded ring buffer in completion order — children before parents —
and, when the tracer has a sink, are also emitted as JSONL events the
moment they close, so a crash still leaves a usable trace on disk.

Ids are monotonic counters, not random: traces stay deterministic
under test and cost nothing to allocate.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["SpanRecord", "Span", "Tracer"]


@dataclass
class SpanRecord:
    """Immutable summary of one finished span."""

    name: str
    trace_id: int
    span_id: int
    parent_id: int | None
    start: float
    duration: float
    status: str = "ok"               # ok | error
    error: str | None = None
    attributes: dict = field(default_factory=dict)

    def to_event(self) -> dict:
        """JSONL-ready representation."""
        event = {"kind": "span", "name": self.name,
                 "trace_id": self.trace_id, "span_id": self.span_id,
                 "parent_id": self.parent_id, "start": self.start,
                 "duration_ms": self.duration * 1000.0,
                 "status": self.status}
        if self.error is not None:
            event["error"] = self.error
        if self.attributes:
            # Nested, not flattened: user attributes (e.g. "kind")
            # must never clobber the record's own fields.
            event["attributes"] = dict(self.attributes)
        return event


class Span:
    """One unit of traced work; use as a context manager.

    Attribute mutation is allowed while the span is open
    (:meth:`set_attribute`); after close, :attr:`record` holds the
    frozen :class:`SpanRecord` and :attr:`children` the records of
    every direct child, in completion order — which is how the serving
    layer turns a request span into a per-stage latency breakdown.
    """

    __slots__ = ("_tracer", "name", "trace_id", "span_id", "parent_id",
                 "attributes", "children", "record", "_start")

    def __init__(self, tracer: "Tracer", name: str, trace_id: int,
                 span_id: int, parent_id: int | None, attributes: dict):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.children: list[SpanRecord] = []
        self.record: SpanRecord | None = None
        self._start: float | None = None

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    @property
    def duration(self) -> float | None:
        """Seconds, available once the span has closed."""
        return self.record.duration if self.record is not None else None

    def __enter__(self) -> "Span":
        self._start = self._tracer._clock()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._tracer._clock()
        self._tracer._pop(self)
        status, error = "ok", None
        if exc is not None:
            status = "error"
            error = f"{exc_type.__name__}: {exc}"
        self.record = SpanRecord(
            name=self.name, trace_id=self.trace_id,
            span_id=self.span_id, parent_id=self.parent_id,
            start=self._start, duration=end - self._start,
            status=status, error=error, attributes=dict(self.attributes))
        self._tracer._finish(self)
        return False  # never swallow exceptions


class Tracer:
    """Span factory with a bounded finished-span ring buffer."""

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 max_spans: int = 4096,
                 sink: Callable[[dict], None] | None = None):
        self._clock = clock
        self._sink = sink
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self.finished: deque[SpanRecord] = deque(maxlen=max_spans)

    # -- thread-local span stack ---------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:           # mis-nested exit; recover anyway
            stack.remove(span)

    # -- span lifecycle ------------------------------------------------
    def span(self, name: str, **attributes) -> Span:
        """Create a child of the current thread's active span."""
        parent = self.current()
        with self._lock:
            span_id = next(self._ids)
            trace_id = (parent.trace_id if parent is not None
                        else next(self._ids))
        return Span(self, name, trace_id, span_id,
                    parent.span_id if parent is not None else None,
                    attributes)

    def _finish(self, span: Span) -> None:
        parent = self.current()
        if parent is not None and parent.span_id == span.parent_id:
            parent.children.append(span.record)
        with self._lock:
            self.finished.append(span.record)
        if self._sink is not None:
            self._sink(span.record.to_event())

    # -- export --------------------------------------------------------
    def to_events(self) -> list[dict]:
        with self._lock:
            return [record.to_event() for record in self.finished]

    def export_jsonl(self, path) -> int:
        """Append every buffered span to ``path``; returns the count."""
        import json

        events = self.to_events()
        with open(path, "a") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)
