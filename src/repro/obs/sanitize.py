"""Uniform non-finite sanitization for everything the obs layer emits.

JSON has no NaN/Inf, and a single non-finite float (a NaN MedR before
the first validation pass, an Inf norm from a poisoned batch) must not
make a telemetry line unparseable or poison a dashboard aggregate.
The policy is applied *uniformly* across the layer:

* :func:`json_safe` replaces non-finite floats with ``None`` anywhere
  inside a record — every JSONL line and every buffered event goes
  through it;
* the metric primitives (:class:`~repro.obs.metrics.Gauge`,
  :class:`~repro.obs.metrics.Counter`,
  :class:`~repro.obs.metrics.Histogram`) silently *drop* non-finite
  updates, keeping the last finite value, so no exposition ever
  contains NaN and no histogram sum is ever poisoned.
"""

from __future__ import annotations

import math

__all__ = ["is_finite_number", "json_safe"]


def is_finite_number(value) -> bool:
    """Is ``value`` a real, finite number (bools excluded)?"""
    if isinstance(value, bool):
        return False
    return isinstance(value, (int, float)) and math.isfinite(value)


def json_safe(value):
    """Replace non-finite floats (NaN MedR, Inf norms) with ``None``
    so every emitted record is strictly valid JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return value
