"""Uniform non-finite sanitization for everything the obs layer emits.

JSON has no NaN/Inf, and a single non-finite float (a NaN MedR before
the first validation pass, an Inf norm from a poisoned batch) must not
make a telemetry line unparseable or poison a dashboard aggregate.
The policy is applied *uniformly* across the layer:

* :func:`json_safe` replaces non-finite floats with ``None`` anywhere
  inside a record — every JSONL line and every buffered event goes
  through it;
* the metric primitives (:class:`~repro.obs.metrics.Gauge`,
  :class:`~repro.obs.metrics.Counter`,
  :class:`~repro.obs.metrics.Histogram`) silently *drop* non-finite
  updates, keeping the last finite value, so no exposition ever
  contains NaN and no histogram sum is ever poisoned.
"""

from __future__ import annotations

import math

__all__ = ["is_finite_number", "json_safe"]


def is_finite_number(value) -> bool:
    """Is ``value`` a real, finite number (bools excluded)?"""
    if isinstance(value, bool):
        return False
    return isinstance(value, (int, float)) and math.isfinite(value)


def json_safe(value):
    """Make ``value`` strictly ``json.dumps``-able, never raising.

    Non-finite floats (NaN MedR, Inf norms) become ``None``; dict
    keys that JSON cannot encode are stringified; sets become lists;
    numpy scalars/arrays collapse via ``item()``/``tolist()`` without
    importing numpy; anything else falls back to ``str`` — so a stray
    Path or enum in a stats dict degrades to text instead of taking
    the telemetry line (or a flight bundle) down with a TypeError.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, int):
        return value
    if isinstance(value, dict):
        return {(key if isinstance(key, (str, int, float, bool))
                 or key is None else str(key)): json_safe(item)
                for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(item) for item in value]
    # Duck-typed numpy without the import: arrays expose tolist(),
    # scalars expose item(); both resolve to plain python values.
    for collapse in ("tolist", "item"):
        method = getattr(value, collapse, None)
        if callable(method):
            try:
                return json_safe(method())
            except Exception:            # noqa: BLE001
                break
    return str(value)
