"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLO` declares an error budget over a metric already in the
registry — no new instrumentation, just a reading rule:

* ``availability`` — bad/total from a status-labelled request counter
  (bad = shed/timeout/error);
* ``latency`` — bad = histogram observations above a threshold
  (a p99 target of 50 ms with budget 0.01 means "at most 1 % of
  requests slower than 50 ms");
* ``ceiling`` — bad = evaluation ticks where a gauge exceeds a
  ceiling (online MedR, drift score).  Quality signals have no
  per-request counter, so the tick itself is the unit of account.

All three reduce to one cumulative ``(bad, total)`` pair, which is
what makes multi-window burn rates (the Google SRE alerting pattern)
uniform: burn = (Δbad/Δtotal)/budget over a window; an alert fires
when *both* a short and a long window burn ≥ the rule's factor (fast
enough to matter, sustained enough to be real) and resolves when the
short window drops back under.  The :class:`AlertManager` evaluates
every rule on demand, exports burn rates and firing states as gauges,
emits ``alert`` events on transitions, and invokes ``on_fire`` hooks —
which is where the flight recorder plugs in.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from .metrics import MetricsRegistry

__all__ = ["SLO", "BurnRateWindow", "Alert", "AlertManager",
           "default_serving_slos", "DEFAULT_WINDOWS",
           "DEFAULT_STAGE_P99_S"]

#: Default per-stage latency target (seconds).  Shared between the
#: default serving latency SLO below and the adaptive admission
#: limiter's p95 target, so "what the pager considers slow" and "what
#: the limiter steers toward" stay one number.
DEFAULT_STAGE_P99_S = 0.25


@dataclass(frozen=True)
class SLO:
    """One error budget over an existing metric family.

    ``budget`` is the allowed bad fraction (0.01 = 99 % objective).
    Exactly one of ``counter`` / ``histogram`` / ``gauge`` is set,
    matching ``kind``.
    """

    name: str
    kind: str                       # availability | latency | ceiling
    budget: float
    description: str = ""
    # availability --------------------------------------------------
    counter: str = ""               # status-labelled counter family
    status_label: str = "status"
    bad_statuses: tuple[str, ...] = ("error", "timeout", "shed")
    # latency -------------------------------------------------------
    histogram: str = ""             # histogram family
    labels: tuple[tuple[str, str], ...] = ()   # child selector
    threshold: float = 0.0          # seconds; bad = observation above
    # ceiling -------------------------------------------------------
    gauge: str = ""                 # gauge family; bad tick = value
    ceiling: float = 0.0            # strictly above this

    def __post_init__(self):
        if self.kind not in ("availability", "latency", "ceiling"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.budget < 1.0:
            raise ValueError("budget must be in (0, 1)")

    # -- cumulative (bad, total) accounting -------------------------
    def sample(self, registry: MetricsRegistry) -> tuple[float, float] | None:
        """Current cumulative ``(bad, total)``, or ``None`` when the
        backing metric does not exist yet (nothing to judge)."""
        if self.kind == "availability":
            return self._sample_counter(registry)
        if self.kind == "latency":
            return self._sample_histogram(registry)
        return None     # ceiling SLOs account per evaluation tick

    def _sample_counter(self, registry):
        family = registry.get(self.counter)
        if family is None:
            return None
        try:
            label_pos = family.label_names.index(self.status_label)
        except ValueError:
            return None
        bad = total = 0.0
        for key, child in family.children():
            total += child.value
            if key[label_pos] in self.bad_statuses:
                bad += child.value
        return bad, total

    def _sample_histogram(self, registry):
        family = registry.get(self.histogram)
        if family is None:
            return None
        child = self._select_child(family)
        if child is None:
            return None
        boundaries = child.boundaries
        cumulative = child.cumulative()
        total = float(child.count)
        # Observations above the smallest boundary >= threshold count
        # as bad; sub-boundary resolution is not available from bucket
        # counts (pick bucket edges that include your targets).
        good = 0.0
        for boundary, cum in zip(boundaries, cumulative):
            if boundary >= self.threshold:
                good = float(cum)
                break
        else:
            good = total
        return total - good, total

    def _select_child(self, family):
        wanted = dict(self.labels)
        if set(wanted) != set(family.label_names):
            if family.label_names:
                return None
            return family.labels()
        key = tuple(str(wanted[n]) for n in family.label_names)
        for child_key, child in family.children():
            if child_key == key:
                return child
        return None

    # -- ceiling reading --------------------------------------------
    def current_value(self, registry) -> float:
        """The watched gauge's value (worst child when labelled), or
        NaN when absent — only meaningful for ceiling SLOs."""
        family = registry.get(self.gauge)
        if family is None:
            return float("nan")
        if self.labels:
            child = self._select_child(family)
            return float("nan") if child is None else child.value
        children = family.children()
        if not children:
            return float("nan")
        values = [c.value for _, c in children]
        return max(values)


@dataclass(frozen=True)
class BurnRateWindow:
    """One multi-window burn-rate rule (short AND long ≥ factor)."""

    name: str
    short_s: float
    long_s: float
    factor: float

    def __post_init__(self):
        if self.short_s <= 0 or self.long_s < self.short_s:
            raise ValueError("need 0 < short_s <= long_s")
        if self.factor <= 0:
            raise ValueError("factor must be positive")


#: The SRE-workbook page/ticket ladder, scaled for a 28-day budget.
DEFAULT_WINDOWS = (
    BurnRateWindow("page", short_s=300.0, long_s=3600.0, factor=14.4),
    BurnRateWindow("ticket", short_s=1800.0, long_s=21600.0, factor=6.0),
)


@dataclass
class Alert:
    """Mutable alert state for one SLO."""

    slo: SLO
    firing: bool = False
    fired_at: float | None = None
    resolved_at: float | None = None
    fired_by: str | None = None     # window rule that tripped it
    burn_rates: dict = field(default_factory=dict)
    value: float = float("nan")     # ceiling SLOs: last gauge reading


class _History:
    """Cumulative (ts, bad, total) samples for burn-rate deltas."""

    def __init__(self, max_samples: int = 4096):
        self.samples: deque[tuple[float, float, float]] = deque(
            maxlen=max_samples)

    def push(self, ts: float, bad: float, total: float) -> None:
        self.samples.append((ts, bad, total))

    def burn(self, now: float, window_s: float,
             budget: float) -> float:
        """Burn rate over the trailing window (0 when idle/unknown).

        Uses the oldest sample inside the window as the edge; with a
        shorter history than the window the whole history is used —
        a young process judges on what it has seen.
        """
        if not self.samples:
            return 0.0
        edge = None
        for ts, bad, total in self.samples:
            if ts >= now - window_s:
                edge = (ts, bad, total)
                break
        if edge is None:
            edge = self.samples[-1]
        _, bad0, total0 = edge
        _, bad1, total1 = self.samples[-1]
        dtotal = total1 - total0
        if dtotal <= 0:
            return 0.0
        fraction = max(0.0, bad1 - bad0) / dtotal
        return fraction / budget


class AlertManager:
    """Evaluate SLOs against the registry; manage alert lifecycles.

    Call :meth:`evaluate` on a schedule (the serving layer piggybacks
    on request handling; tests drive it with a fake clock).  Each call
    pushes one cumulative sample per SLO, recomputes every window's
    burn rate, fires/resolves alerts, and exports the whole state as
    gauges so the monitor CLI and Prometheus scrapes see it.
    """

    def __init__(self, registry: MetricsRegistry, slos,
                 windows=DEFAULT_WINDOWS, *,
                 clock: Callable[[], float] = time.monotonic,
                 events=None,
                 on_fire=None, on_resolve=None):
        self.registry = registry
        self.slos = list(slos)
        names = [s.name for s in self.slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        self.windows = tuple(windows)
        self._clock = clock
        self._events = events
        self.on_fire = list(on_fire or [])
        self.on_resolve = list(on_resolve or [])
        self._lock = threading.Lock()
        self._history = {s.name: _History() for s in self.slos}
        self.alerts = {s.name: Alert(slo=s) for s in self.slos}
        self._m_burn = registry.gauge(
            "slo_burn_rate", "Error-budget burn rate per window",
            labels=("slo", "window"))
        self._m_value = registry.gauge(
            "slo_value",
            "Watched value for ceiling SLOs (NaN-safe: unset during "
            "warm-up)", labels=("slo",))
        self._m_firing = registry.gauge(
            "slo_alert_firing", "1 while the SLO's alert is firing",
            labels=("slo",))
        self._m_transitions = registry.counter(
            "slo_alert_transitions_total",
            "Alert state transitions", labels=("slo", "to"))
        for slo in self.slos:
            self._m_firing.labels(slo=slo.name).set(0)

    @property
    def firing(self) -> list[Alert]:
        with self._lock:
            return [a for a in self.alerts.values() if a.firing]

    def evaluate(self) -> list[Alert]:
        """One evaluation pass; returns alerts that *transitioned*."""
        now = self._clock()
        transitions = []
        for slo in self.slos:
            transition = self._evaluate_one(slo, now)
            if transition is not None:
                transitions.append(transition)
        for alert in transitions:
            hooks = self.on_fire if alert.firing else self.on_resolve
            for hook in hooks:
                hook(alert)
        return transitions

    def _evaluate_one(self, slo: SLO, now: float) -> Alert | None:
        history = self._history[slo.name]
        alert = self.alerts[slo.name]
        value = float("nan")
        if slo.kind == "ceiling":
            value = slo.current_value(self.registry)
            self._m_value.labels(slo=slo.name).set(value)
            with self._lock:
                alert.value = value
            if math.isfinite(value):
                last = history.samples[-1] if history.samples \
                    else (now, 0.0, 0.0)
                bad = last[1] + (1.0 if value > slo.ceiling else 0.0)
                history.push(now, bad, last[2] + 1.0)
        else:
            sample = slo.sample(self.registry)
            if sample is not None:
                history.push(now, *sample)

        burn_rates = {}
        fired_by = None
        short_hot = False
        for window in self.windows:
            short = history.burn(now, window.short_s, slo.budget)
            long = history.burn(now, window.long_s, slo.budget)
            burn_rates[window.name] = {"short": short, "long": long}
            self._m_burn.labels(slo=slo.name,
                                window=window.name).set(short)
            if short >= window.factor and long >= window.factor:
                fired_by = fired_by or window.name
            if short >= window.factor:
                short_hot = True

        with self._lock:
            alert.burn_rates = burn_rates
            was_firing = alert.firing
            if not was_firing and fired_by is not None:
                alert.firing = True
                alert.fired_at = now
                alert.resolved_at = None
                alert.fired_by = fired_by
            elif was_firing and not short_hot:
                alert.firing = False
                alert.resolved_at = now
            changed = alert.firing != was_firing
            firing = alert.firing

        self._m_firing.labels(slo=slo.name).set(1 if firing else 0)
        if changed:
            to = "firing" if firing else "resolved"
            self._m_transitions.labels(slo=slo.name, to=to).inc()
            if self._events is not None:
                self._events.emit(
                    "alert", slo=slo.name, state=to,
                    kind=slo.kind, fired_by=alert.fired_by,
                    value=value,
                    burn=burn_rates.get(alert.fired_by or "", None))
            return alert
        return None

    def state(self) -> dict:
        """Full alert/SLO state for ``stats()`` and the monitor CLI."""
        with self._lock:
            return {
                slo.name: {
                    "kind": slo.kind,
                    "budget": slo.budget,
                    "firing": self.alerts[slo.name].firing,
                    "fired_by": self.alerts[slo.name].fired_by,
                    "value": self.alerts[slo.name].value,
                    "burn_rates": dict(
                        self.alerts[slo.name].burn_rates),
                } for slo in self.slos
            }


def default_serving_slos(*, stage: str = "index",
                         stage_p99_s: float = DEFAULT_STAGE_P99_S,
                         medr_ceiling: float = 10.0,
                         drift_ceiling: float = 0.25,
                         availability_budget: float = 0.01
                         ) -> list[SLO]:
    """The standard serving SLO set wired to the metric families the
    serving stack and this module's probes/drift monitors export.

    ``drift_ceiling`` defaults to the conventional PSI action
    threshold (0.25); ``medr_ceiling`` to a lenient online MedR for
    golden bags of ~32 queries.
    """
    return [
        SLO(name="availability", kind="availability",
            budget=availability_budget,
            counter="serving_requests_total",
            description="Requests answered (ok/partial/degraded)"),
        SLO(name=f"latency_{stage}_p99", kind="latency", budget=0.01,
            histogram="serving_stage_seconds",
            labels=(("stage", stage),), threshold=stage_p99_s,
            description=f"p99 of the {stage} stage"),
        SLO(name="quality_medr", kind="ceiling", budget=0.1,
            gauge="probe_online_medr", ceiling=medr_ceiling,
            description="Online golden-set MedR ceiling"),
        SLO(name="drift", kind="ceiling", budget=0.1,
            gauge="drift_score", ceiling=drift_ceiling,
            description="Worst-signal PSI drift ceiling"),
    ]
