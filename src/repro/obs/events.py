"""Structured event log: the obs-layer replacement for ``print``.

An :class:`EventLog` turns progress output into machine-readable
records — a bounded in-memory ring buffer, an optional JSONL sink so
runs leave a trace on disk, and an optional printer for human-facing
verbosity.  Quiet by default: without a printer nothing reaches the
terminal, which is what library code (trainer, runner, service) wants.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from .sanitize import json_safe

__all__ = ["EventLog"]


class EventLog:
    """Bounded, thread-safe log of structured events.

    Parameters
    ----------
    max_events:
        Ring-buffer capacity for in-memory retention.
    clock:
        Timestamp source (injectable for deterministic tests).
    sink:
        Optional ``callable(dict)`` invoked per event — the telemetry
        JSONL writer in production.
    printer:
        Optional ``callable(str)`` for verbose human output; only
        events emitted with a ``message`` reach it.
    """

    def __init__(self, max_events: int = 4096,
                 clock: Callable[[], float] = time.time,
                 sink: Callable[[dict], None] | None = None,
                 printer: Callable[[str], None] | None = None):
        self._clock = clock
        self._sink = sink
        self.printer = printer
        self._lock = threading.Lock()
        self.events: deque[dict] = deque(maxlen=max_events)

    def emit(self, event: str, message: str | None = None,
             **fields) -> dict:
        """Record one event; returns the stored record.

        Field values are sanitized up front (non-finite floats become
        ``None``) so the buffered record and the JSONL line agree — a
        NaN MedR never reaches either.
        """
        record = {"kind": "event", "event": event, "ts": self._clock()}
        record.update(json_safe(fields))
        with self._lock:
            self.events.append(record)
        if self._sink is not None:
            self._sink(record)
        if self.printer is not None and message is not None:
            self.printer(message)
        return record

    def of_type(self, event: str) -> list[dict]:
        """Buffered events with the given name, oldest first."""
        with self._lock:
            return [r for r in self.events if r["event"] == event]

    def snapshot(self, limit: int | None = None) -> list[dict]:
        """Copy of the buffered events, oldest first.

        ``limit`` keeps only the most recent records — what the flight
        recorder dumps into an incident bundle.
        """
        with self._lock:
            records = list(self.events)
        if limit is not None:
            records = records[-limit:]
        return [dict(r) for r in records]

    def retained_bytes(self) -> int:
        """Estimated bytes held by the event ring buffer, so the
        memory ledger can see observability's own footprint."""
        from .memledger import ring_bytes

        with self._lock:
            records = list(self.events)
        return ring_bytes(records)

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)
