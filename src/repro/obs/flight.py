"""Flight recorder: atomic evidence bundles on alert firing.

When a quality alert fires, the interesting state is *already in
memory* — the span ring buffer, the recent event log, the metric
registry, the live drift sketches, the last probe numbers.  By the
time a human looks, ring buffers have wrapped and gauges have moved
on.  The :class:`FlightRecorder` freezes all of it the moment an
alert transitions to firing:

``flight-0001-<reason>/``
    ``manifest.json``   — reason, timestamps, alert context
    ``spans.jsonl``     — the tracer's finished-span ring buffer
    ``traces.jsonl``    — whole traces kept by the tail sampler
    ``events.jsonl``    — recent structured events
    ``metrics.json``    — full registry snapshot (JSON exposition)
    ``drift.json``      — reference + live sketches (when wired)
    ``probe.json``      — golden-probe summary (when wired)
    ``profile.txt``     — collapsed CPU stacks + sampler summary
    ``memory.json``     — per-component memory ledger snapshot

Bundles are written to a temp directory and renamed into place, so a
partially written bundle is never mistaken for evidence.  A minimum
interval between dumps stops a flapping alert from filling the disk.
"""

from __future__ import annotations

import json
import pathlib
import threading
from typing import Callable

from .sanitize import json_safe

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Dump telemetry state into timestamped post-mortem bundles.

    Parameters
    ----------
    telemetry:
        The :class:`~repro.obs.Telemetry` whose tracer/events/registry
        get frozen.
    directory:
        Bundle root; created on first dump.
    drift, probe:
        Optional :class:`~repro.obs.drift.DriftMonitor` and
        :class:`~repro.obs.probes.GoldenProbe` whose state joins the
        bundle.
    profiler, memory:
        Optional :class:`~repro.obs.profiler.SamplingProfiler` and
        :class:`~repro.obs.memledger.MemoryLedger`; when wired the
        bundle gains ``profile.txt`` (folded stacks plus the sampler
        summary) and ``memory.json`` (itemized component bytes).
    clock:
        Wall-clock source for manifest timestamps (injectable).
    min_interval_s:
        Dumps closer together than this are suppressed (flap guard);
        0 disables the guard.
    max_events:
        Most-recent events retained in ``events.jsonl``.
    """

    def __init__(self, telemetry, directory, *, drift=None,
                 probe=None, profiler=None, memory=None,
                 clock: Callable[[], float] | None = None,
                 min_interval_s: float = 10.0, max_events: int = 512):
        self.telemetry = telemetry
        self.directory = pathlib.Path(directory)
        self.drift = drift
        self.probe = probe
        self.profiler = profiler
        self.memory = memory
        self._clock = clock or telemetry.clock
        self.min_interval_s = float(min_interval_s)
        self.max_events = int(max_events)
        self._lock = threading.Lock()
        self._seq = 0
        self._last_dump: float | None = None
        self.bundles: list[pathlib.Path] = []

    # ------------------------------------------------------------------
    def on_alert(self, alert) -> pathlib.Path | None:
        """``AlertManager.on_fire`` hook: dump with alert context."""
        return self.dump(
            reason=f"alert-{alert.slo.name}",
            context={
                "slo": alert.slo.name,
                "kind": alert.slo.kind,
                "fired_by": alert.fired_by,
                "fired_at": alert.fired_at,
                "value": alert.value,
                "burn_rates": alert.burn_rates,
            })

    def dump(self, reason: str = "manual",
             context: dict | None = None) -> pathlib.Path | None:
        """Write one bundle; returns its path, or ``None`` when the
        flap guard suppressed it."""
        now = self._clock()
        with self._lock:
            if (self._last_dump is not None and self.min_interval_s > 0
                    and now - self._last_dump < self.min_interval_s):
                return None
            self._last_dump = now
            self._seq += 1
            seq = self._seq
        slug = "".join(c if c.isalnum() or c in "-_" else "-"
                       for c in reason)[:40] or "dump"
        final = self.directory / f"flight-{seq:04d}-{slug}"
        tmp = self.directory / f".flight-{seq:04d}-{slug}.tmp"
        self._write_bundle(tmp, reason, context or {}, now)
        tmp.rename(final)       # atomic publish: all-or-nothing
        with self._lock:
            self.bundles.append(final)
        self.telemetry.events.emit(
            "flight", reason=reason, bundle=str(final))
        return final

    # ------------------------------------------------------------------
    def _write_bundle(self, root: pathlib.Path, reason: str,
                      context: dict, now: float) -> None:
        root.mkdir(parents=True, exist_ok=True)

        spans = [record.to_event()
                 for record in list(self.telemetry.tracer.finished)]
        self._write_jsonl(root / "spans.jsonl", spans)

        # Tail-sampled whole traces (when a sampler is wired): each
        # row is one kept trace with its verdict and every span, ready
        # for `repro trace critpath`.
        sampler = getattr(self.telemetry.tracer, "sampler", None)
        traces = sampler.to_events() if sampler is not None else []
        if traces:
            self._write_jsonl(root / "traces.jsonl", traces)

        events = self.telemetry.events.snapshot(limit=self.max_events)
        self._write_jsonl(root / "events.jsonl", events)

        self._write_json(root / "metrics.json",
                         self.telemetry.registry.to_dict())

        if self.drift is not None:
            self._write_json(root / "drift.json", {
                "summary": self.drift.summary(),
                "sketches": self.drift.dump(),
            })
        if self.probe is not None:
            self._write_json(root / "probe.json",
                             self.probe.summary())

        if self.profiler is not None:
            summary = json.dumps(json_safe(self.profiler.snapshot()),
                                 sort_keys=True, default=str, indent=1)
            folded = "\n".join(self.profiler.collapsed())
            (root / "profile.txt").write_text(
                "# sampler summary\n"
                + "".join("# " + line + "\n"
                          for line in summary.splitlines())
                + folded + ("\n" if folded else ""))
        if self.memory is not None:
            self._write_json(root / "memory.json",
                             self.memory.snapshot())

        self._write_json(root / "manifest.json", {
            "reason": reason,
            "ts": now,
            "context": context,
            "spans": len(spans),
            "traces": len(traces),
            "events": len(events),
            "has_drift": self.drift is not None,
            "has_probe": self.probe is not None,
            "has_profile": self.profiler is not None,
            "has_memory": self.memory is not None,
        })

    @staticmethod
    def _write_json(path: pathlib.Path, payload) -> None:
        path.write_text(json.dumps(json_safe(payload), sort_keys=True,
                                   default=str, indent=1))

    @staticmethod
    def _write_jsonl(path: pathlib.Path, records) -> None:
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(json_safe(record),
                                        sort_keys=True,
                                        default=str) + "\n")
