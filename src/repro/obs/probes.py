"""Online retrieval-quality probing: golden queries through serving.

The paper's claims are MedR / R@K over retrieval bags (§4.2); the
serving stack's latency and availability metrics say nothing about
them.  A :class:`GoldenProbe` closes that gap: it holds a frozen
:class:`GoldenSet` of (recipe query → true corpus row) pairs sampled
from the engine's own corpus, replays them through the *live* serving
path on a schedule, and computes online MedR and R@{1,5,10} with the
exact same estimators the offline evaluation uses
(:mod:`repro.retrieval.metrics`) — so an online/offline gap is a
serving-quality signal, not an estimator artifact.

Ranks use the usual protocol: the true row's 1-based position in the
top-``depth`` results, with a penalty rank of ``depth + 1`` when it is
absent (missing, shed, or errored queries score worst rather than
being silently dropped).  At each hot-swap the probe re-records the
new generation's *offline* baseline (golden metrics straight off the
engine, no serving machinery) so the exported ``probe_medr_delta``
gauge isolates serving-induced quality loss from model quality.

The probe deliberately duck-types the service — anything with
``search_by_recipe(recipe, k=...)``, ``stats()`` and an
``on_generation`` hook list works — because :mod:`repro.serving`
imports :mod:`repro.obs` and a typed import here would be circular.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..retrieval.metrics import RetrievalMetrics

__all__ = ["ProbeQuery", "GoldenSet", "GoldenProbe"]

#: Recall cutoffs exported per probe run (the paper's R@{1,5,10}).
RECALL_KS = (1, 5, 10)


@dataclass(frozen=True)
class ProbeQuery:
    """One golden query: a recipe whose true image row is known."""

    recipe: object            # repro.data.schema.Recipe
    true_row: int             # corpus row of the matching image


@dataclass
class GoldenSet:
    """A frozen bag of golden queries with a known answer key."""

    queries: list[ProbeQuery]
    depth: int                # retrieval depth; penalty rank = depth+1

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def penalty_rank(self) -> int:
        return self.depth + 1

    @classmethod
    def from_engine(cls, engine, size: int = 32,
                    depth: int | None = None,
                    seed: int = 0) -> "GoldenSet":
        """Sample golden queries from the engine's own corpus.

        Each sampled corpus row contributes its recipe text as the
        query and the row itself as the true match — the corpus is
        paired (row = one recipe/image pair), so self-retrieval rank
        is exactly the paper's im2recipe rank.
        """
        n = len(engine)
        if n == 0:
            raise ValueError("cannot build a golden set from an "
                             "empty corpus")
        if depth is None:
            depth = min(n, 50)
        depth = min(depth, n)
        rng = np.random.default_rng(seed)
        rows = rng.permutation(n)[:min(size, n)]
        queries = [ProbeQuery(
            recipe=engine.dataset[int(engine.corpus.recipe_indices[r])],
            true_row=int(r)) for r in rows]
        return cls(queries=queries, depth=depth)

    def rank_of(self, query: ProbeQuery, result_rows) -> int:
        """1-based rank of the true row, or the penalty rank."""
        for position, row in enumerate(result_rows):
            if int(row) == query.true_row:
                return position + 1
        return self.penalty_rank

    def offline_metrics(self, engine) -> RetrievalMetrics:
        """Golden metrics straight off the engine (no serving layer).

        This is the per-generation baseline the probe compares online
        numbers against: same queries, same answer key, same
        estimators — only the serving machinery removed.
        """
        ranks = []
        for query in self.queries:
            results = engine.search_by_recipe(query.recipe,
                                              k=self.depth)
            ranks.append(self.rank_of(
                query, [r.corpus_row for r in results]))
        return RetrievalMetrics.from_ranks(np.asarray(ranks))


class GoldenProbe:
    """Scheduled golden-query replay through the live serving path.

    Parameters
    ----------
    service:
        Duck-typed serving handle (see module docstring).
    golden:
        The frozen golden set.
    registry, events:
        Export targets; usually the service's own telemetry, so probe
        gauges land next to the serving metrics they contextualize.
    interval_s:
        Minimum seconds between scheduled runs via :meth:`maybe_run`
        (explicit :meth:`run` ignores it).
    clock:
        Injectable time source for deterministic tests.
    """

    def __init__(self, service, golden: GoldenSet, *,
                 registry=None, events=None, interval_s: float = 30.0,
                 clock: Callable[[], float] | None = None,
                 tenant: str = "probe",
                 criticality: str = "background"):
        self.service = service
        self.golden = golden
        self.interval_s = float(interval_s)
        # Probe traffic rides the lowest criticality tier: under
        # brownout it is the first load shed, so quality probing never
        # competes with user requests for admission slots.
        self.tenant = str(tenant)
        self.criticality = str(criticality)
        self._clock = clock or getattr(
            getattr(service, "telemetry", None), "clock", None)
        if self._clock is None:
            import time
            self._clock = time.monotonic
        self._events = events
        self._lock = threading.Lock()
        self._last_run: float | None = None
        self.last_metrics: RetrievalMetrics | None = None
        self.baseline: RetrievalMetrics | None = None
        self.baseline_generation: int | None = None
        self._m_online_medr = None
        if registry is not None:
            self._m_online_medr = registry.gauge(
                "probe_online_medr",
                "Golden-set MedR measured through the live serving "
                "path")
            self._m_online_recall = registry.gauge(
                "probe_online_recall",
                "Golden-set R@k through the live serving path",
                labels=("k",))
            self._m_baseline_medr = registry.gauge(
                "probe_baseline_medr",
                "Offline golden-set MedR recorded at swap time for "
                "the serving generation")
            self._m_medr_delta = registry.gauge(
                "probe_medr_delta",
                "Online minus baseline MedR (serving-induced quality "
                "loss)")
            self._m_runs = registry.counter(
                "probe_runs_total", "Completed golden-probe runs")
            self._m_failures = registry.counter(
                "probe_query_failures_total",
                "Golden queries that failed to produce an answer")

    # ------------------------------------------------------------------
    # Baseline bookkeeping
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Register for generation changes and record the current
        generation's baseline immediately."""
        hooks = getattr(self.service, "on_generation", None)
        if hooks is not None:
            hooks.append(self._on_generation)
        engine = getattr(self.service, "engine", None)
        generation = getattr(self.service, "generation", 0)
        if engine is not None:
            self._on_generation(generation, engine)

    def _on_generation(self, generation: int, engine) -> dict:
        """Hot-swap hook: record the new generation's offline baseline."""
        baseline = self.golden.offline_metrics(engine)
        with self._lock:
            self.baseline = baseline
            self.baseline_generation = int(generation)
        if self._m_online_medr is not None:
            self._m_baseline_medr.set(baseline.medr)
        if self._events is not None:
            self._events.emit(
                "probe_baseline", generation=int(generation),
                **{k: float(v) for k, v in baseline.as_dict().items()})
        return {"golden_" + k: float(v)
                for k, v in baseline.as_dict().items()}

    # ------------------------------------------------------------------
    # Probe runs
    # ------------------------------------------------------------------
    def maybe_run(self) -> RetrievalMetrics | None:
        """Run if at least ``interval_s`` elapsed since the last run."""
        now = self._clock()
        with self._lock:
            due = (self._last_run is None
                   or now - self._last_run >= self.interval_s)
        if not due:
            return None
        return self.run()

    def run(self) -> RetrievalMetrics:
        """Replay every golden query through the service now."""
        started = self._clock()
        ranks, failures = [], 0
        for query in self.golden.queries:
            rank = self.golden.penalty_rank
            try:
                try:
                    response = self.service.search_by_recipe(
                        query.recipe, k=self.golden.depth,
                        tenant=self.tenant,
                        criticality=self.criticality)
                except TypeError:
                    # Duck-typed stand-ins predating multi-tenancy.
                    response = self.service.search_by_recipe(
                        query.recipe, k=self.golden.depth)
                if response.ok:
                    rank = self.golden.rank_of(
                        query,
                        [r.corpus_row for r in response.results])
                else:
                    failures += 1
            except Exception:
                failures += 1
            ranks.append(rank)
        metrics = RetrievalMetrics.from_ranks(np.asarray(ranks))
        with self._lock:
            self._last_run = started
            self.last_metrics = metrics
            baseline = self.baseline
        self._export(metrics, baseline, failures)
        return metrics

    def _export(self, metrics: RetrievalMetrics,
                baseline: RetrievalMetrics | None,
                failures: int) -> None:
        if self._m_online_medr is not None:
            self._m_online_medr.set(metrics.medr)
            for k in RECALL_KS:
                self._m_online_recall.labels(k=k).set(
                    getattr(metrics, f"r_at_{k}"))
            if baseline is not None:
                self._m_medr_delta.set(metrics.medr - baseline.medr)
            self._m_runs.inc()
            if failures:
                self._m_failures.inc(failures)
        if self._events is not None:
            payload = {k.replace("@", "_at_").lower(): float(v)
                       for k, v in metrics.as_dict().items()}
            if baseline is not None:
                payload["baseline_medr"] = float(baseline.medr)
                payload["medr_delta"] = float(metrics.medr
                                              - baseline.medr)
            self._events.emit("probe", failures=failures, **payload)

    def summary(self) -> dict:
        """Compact dict for ``stats()`` and flight bundles."""
        with self._lock:
            last = self.last_metrics
            baseline = self.baseline
            generation = self.baseline_generation
        return {
            "queries": len(self.golden),
            "depth": self.golden.depth,
            "baseline_generation": generation,
            "online": (None if last is None
                       else {k: float(v)
                             for k, v in last.as_dict().items()}),
            "baseline": (None if baseline is None
                         else {k: float(v)
                               for k, v in baseline.as_dict().items()}),
        }
