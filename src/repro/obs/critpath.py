"""Critical-path analysis over finished span trees.

The tracer's ring buffer (or an exported JSONL file) holds flat
:class:`~repro.obs.tracing.SpanRecord` rows in completion order.  This
module reassembles them into per-trace trees (:func:`build_traces`),
computes *self time* (a span's duration not covered by its children)
and the *blocking critical path* per request — the chain of spans that
actually determined the root's wall time, which under a shard fan-out
is the straggler lane, not the sum of lanes — and aggregates a "where
does p99 go" breakdown across many traces (:func:`aggregate`).

Everything operates on plain records, so it works identically on a
live tracer snapshot, a sampler's kept traces, or a JSONL file read
back by the ``repro trace`` CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .tracing import KeptTrace, SpanRecord

__all__ = ["SpanNode", "TraceTree", "build_traces", "self_time",
           "critical_path", "aggregate", "render_tree",
           "spans_from_jsonl", "kept_trace_tree"]


@dataclass(eq=False)  # identity semantics: nodes are tree positions
class SpanNode:
    """One span plus its resolved children, as tree structure."""

    record: SpanRecord
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record.name

    @property
    def start(self) -> float:
        return self.record.start

    @property
    def end(self) -> float:
        return self.record.start + self.record.duration

    @property
    def duration(self) -> float:
        return self.record.duration

    def walk(self):
        """Yield this node and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def label(self) -> str:
        """One-line human rendering used by the ASCII tree."""
        parts = [self.name, f"{self.duration * 1000.0:.2f}ms"]
        if self.record.status != "ok":
            parts.append(f"!{self.record.status}")
        attrs = self.record.attributes
        interesting = {k: attrs[k] for k in
                       ("shard", "replica", "tenant", "criticality",
                        "status", "op", "kind", "cluster", "lane")
                       if k in attrs}
        if interesting:
            parts.append(" ".join(f"{k}={v}"
                                  for k, v in interesting.items()))
        return "  ".join(parts)


@dataclass
class TraceTree:
    """All spans of one trace: roots, plus any unresolvable orphans."""

    trace_id: int
    roots: list[SpanNode] = field(default_factory=list)
    orphans: list[SpanRecord] = field(default_factory=list)

    @property
    def root(self) -> SpanNode | None:
        """The longest root span (a well-formed trace has exactly one)."""
        if not self.roots:
            return None
        return max(self.roots, key=lambda node: node.duration)

    def spans(self) -> list[SpanNode]:
        out: list[SpanNode] = []
        for root in self.roots:
            out.extend(root.walk())
        return out


def _as_record(item) -> SpanRecord | None:
    if isinstance(item, SpanRecord):
        return item
    if isinstance(item, dict):
        if item.get("kind") not in (None, "span"):
            return None
        if "span_id" not in item:
            return None
        return SpanRecord.from_event(item)
    return None


def build_traces(records) -> dict[int, TraceTree]:
    """Group flat span records into per-trace trees.

    ``records`` may hold :class:`SpanRecord` objects, span event
    dicts, or a mix (non-span dicts are ignored, so a raw telemetry
    JSONL stream can be fed directly).  A span whose ``parent_id``
    does not resolve to another span *in the same trace* is an orphan
    — the acceptance signal for broken context propagation.
    """
    by_trace: dict[int, list[SpanRecord]] = {}
    for item in records:
        record = _as_record(item)
        if record is not None:
            by_trace.setdefault(record.trace_id, []).append(record)
    trees: dict[int, TraceTree] = {}
    for trace_id, spans in by_trace.items():
        nodes = {span.span_id: SpanNode(span) for span in spans}
        tree = TraceTree(trace_id)
        for span in spans:
            node = nodes[span.span_id]
            if span.parent_id is None:
                tree.roots.append(node)
            elif span.parent_id in nodes:
                nodes[span.parent_id].children.append(node)
            else:
                tree.orphans.append(span)
        for node in nodes.values():
            node.children.sort(key=lambda child: child.start)
        trees[trace_id] = tree
    return trees


def self_time(node: SpanNode) -> float:
    """Seconds of ``node`` not covered by any child interval."""
    intervals = sorted((max(child.start, node.start),
                        min(child.end, node.end))
                       for child in node.children)
    covered, cursor = 0.0, node.start
    for start, end in intervals:
        if end <= cursor:
            continue
        covered += end - max(start, cursor)
        cursor = end
    return max(0.0, node.duration - covered)


def critical_path(root: SpanNode) -> list[tuple[SpanNode, float]]:
    """The blocking chain that determined ``root``'s wall time.

    Walk backwards from the root's end: at each cursor position the
    blocking span is the child reaching closest to the cursor (under a
    parallel fan-out, the straggler); gaps between children are the
    parent's own time.  Returns ``(node, seconds)`` segments in
    chronological order; seconds over all segments sum to the root's
    duration (children ending after their parent are clamped).
    """
    segments: list[tuple[SpanNode, float]] = []

    def walk(node: SpanNode, cursor: float) -> None:
        while True:
            candidates = [child for child in node.children
                          if child.start < cursor
                          and min(child.end, cursor) > child.start]
            if not candidates:
                remaining = cursor - node.start
                if remaining > 0:
                    segments.append((node, remaining))
                return
            child = max(candidates,
                        key=lambda c: (min(c.end, cursor), c.start))
            child_end = min(child.end, cursor)
            if cursor - child_end > 0:
                segments.append((node, cursor - child_end))
            walk(child, child_end)
            cursor = max(child.start, node.start)
            if cursor <= node.start:
                return

    walk(root, root.end)
    segments.reverse()
    return segments


def aggregate(trees, focus_quantile: float | None = None) -> dict:
    """Cross-trace critical-path breakdown: where does the time go?

    Runs :func:`critical_path` on every trace root and sums attributed
    seconds by span name.  With ``focus_quantile`` (e.g. ``0.99``)
    only traces whose root duration is at or above that quantile of
    all root durations are aggregated — the "where does p99 go" view.
    """
    roots = [tree.root for tree in
             (trees.values() if isinstance(trees, dict) else trees)
             if tree.root is not None]
    if focus_quantile is not None and roots:
        ordered = sorted(node.duration for node in roots)
        index = min(len(ordered) - 1,
                    int(focus_quantile * len(ordered)))
        threshold = ordered[index]
        roots = [node for node in roots if node.duration >= threshold]
    by_name: dict[str, float] = {}
    total = 0.0
    for root in roots:
        for node, seconds in critical_path(root):
            by_name[node.name] = by_name.get(node.name, 0.0) + seconds
            total += seconds
    breakdown = {name: {"seconds": seconds,
                        "share": seconds / total if total > 0 else 0.0}
                 for name, seconds in
                 sorted(by_name.items(), key=lambda kv: -kv[1])}
    return {"traces": len(roots), "total_s": total,
            "by_name": breakdown}


def render_tree(tree: TraceTree, critical: bool = False) -> str:
    """ASCII span tree for one trace, ``repro trace show`` style.

    With ``critical=True`` the spans on the root's blocking path are
    marked with ``*`` and annotated with their attributed seconds.
    """
    marked: dict[int, float] = {}
    if critical and tree.root is not None:
        for node, seconds in critical_path(tree.root):
            marked[node.record.span_id] = \
                marked.get(node.record.span_id, 0.0) + seconds
    lines = [f"trace {tree.trace_id}"]

    def emit(node: SpanNode, prefix: str, connector: str) -> None:
        label = node.label()
        span_id = node.record.span_id
        if span_id in marked:
            label = f"* {label}  [path {marked[span_id] * 1000.0:.2f}ms]"
        lines.append(f"{prefix}{connector}{label}")
        child_prefix = prefix + ("    " if connector.startswith("└")
                                 else "│   " if connector else "")
        for index, child in enumerate(node.children):
            last = index == len(node.children) - 1
            emit(child, child_prefix, "└── " if last else "├── ")

    for root in tree.roots:
        emit(root, "", "")
    for orphan in tree.orphans:
        lines.append(f"(orphan) {orphan.name} span={orphan.span_id} "
                     f"parent={orphan.parent_id}")
    return "\n".join(lines)


def spans_from_jsonl(path) -> list[SpanRecord]:
    """Read span records out of a telemetry or flight JSONL file.

    Accepts both flat ``{"kind": "span"}`` rows and sampler
    ``{"kind": "trace"}`` containers (whose ``spans`` lists are
    flattened); anything else — metrics snapshots, events, garbage
    lines — is skipped.
    """
    records: list[SpanRecord] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(row, dict):
                continue
            if row.get("kind") == "trace":
                for span in row.get("spans", ()):
                    records.append(SpanRecord.from_event(span))
            elif row.get("kind") == "span" and "span_id" in row:
                records.append(SpanRecord.from_event(row))
    return records


def kept_trace_tree(trace: KeptTrace) -> TraceTree:
    """Tree for one sampler-kept trace."""
    return build_traces(trace.spans)[trace.trace_id]
