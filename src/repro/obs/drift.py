"""Embedding-drift detection: streaming sketches + PSI/KS scoring.

The serving stack can be fast and healthy yet *silently wrong*: a
stale hot-swap or a slowly degrading encoder shifts the geometry of
the embedding space long before any latency or availability signal
moves.  This module watches three cheap per-query signals whose
distributions are pinned at training time:

* ``embedding_norm`` — L2 norm of the raw query embedding (before the
  index normalizes it); scaling faults and saturated encoders move it;
* ``top1_distance`` — cosine distance to the nearest corpus item; a
  corpus/model mismatch pushes queries away from everything;
* ``margin`` — top2 minus top1 distance; a collapsing embedding space
  shows up as vanishing margins even while top-1 distance looks sane.

Each signal is summarized by a :class:`QuantileSketch` — a fixed-bin
histogram over a pinned range, mergeable and JSON-serializable.  The
:class:`~repro.core.trainer.Trainer` builds a :class:`DriftReference`
(one sketch per signal, computed over the validation corpus) and
persists it alongside checkpoints; at hot-swap the serving layer loads
it and a :class:`DriftMonitor` scores the live distribution against it
with PSI (population stability index) and the KS statistic.  PSI reads
on the usual industry scale: < 0.1 stable, 0.1–0.25 moderate shift,
> 0.25 action required — the drift-score SLO ceiling defaults into
that last band.

Bins are *shared* between reference and live sketches (the live sketch
is spawned from the reference) so the PSI comparison is well-defined.
"""

from __future__ import annotations

import json
import math
import pathlib
import threading
from typing import Callable

import numpy as np

__all__ = [
    "QuantileSketch", "psi", "ks_statistic",
    "DRIFT_SIGNALS", "DRIFT_REFERENCE_NAME",
    "DriftReference", "DriftMonitor",
]

#: Signals tracked per query, in a fixed export order.
DRIFT_SIGNALS = ("embedding_norm", "top1_distance", "margin")

#: Filename the trainer persists the reference under, alongside
#: checkpoints, and the serving layer looks for at hot-swap.
DRIFT_REFERENCE_NAME = "drift-reference.json"

#: Laplace-style smoothing for PSI bin probabilities — keeps log(0)
#: out of the math when a bin is empty on one side.
_PSI_SMOOTHING = 1e-4


class QuantileSketch:
    """Fixed-bin streaming histogram over a pinned ``[lo, hi]`` range.

    Deliberately simple (no P² adaptivity): pinned, shared bin edges
    make two sketches directly comparable, which is what PSI/KS need.
    Values outside the range clamp into the edge bins, so a runaway
    signal still registers as mass piling up at an extreme.
    """

    def __init__(self, lo: float, hi: float, bins: int = 32):
        if not (math.isfinite(lo) and math.isfinite(hi)) or hi <= lo:
            raise ValueError(f"invalid sketch range [{lo}, {hi}]")
        if bins < 2:
            raise ValueError("need at least 2 bins")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = int(bins)
        self.counts = np.zeros(self.bins, dtype=np.int64)
        self._width = (self.hi - self.lo) / self.bins

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def _bin_of(self, value: float) -> int:
        i = int((value - self.lo) / self._width)
        return min(max(i, 0), self.bins - 1)

    def update(self, value: float) -> None:
        """Add one observation; non-finite values are dropped."""
        value = float(value)
        if not math.isfinite(value):
            return
        self.counts[self._bin_of(value)] += 1

    def update_many(self, values) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        values = values[np.isfinite(values)]
        if values.size == 0:
            return
        idx = ((values - self.lo) / self._width).astype(np.int64)
        np.clip(idx, 0, self.bins - 1, out=idx)
        self.counts += np.bincount(idx, minlength=self.bins)

    def probabilities(self, smoothing: float = _PSI_SMOOTHING
                      ) -> np.ndarray:
        """Smoothed per-bin probabilities (sum to 1, never zero)."""
        counts = self.counts.astype(np.float64) + smoothing
        return counts / counts.sum()

    def cdf(self) -> np.ndarray:
        """Empirical CDF at each bin's upper edge (unsmoothed)."""
        total = self.total
        if total == 0:
            return np.zeros(self.bins)
        return np.cumsum(self.counts) / total

    def spawn(self) -> "QuantileSketch":
        """An empty sketch with identical bins — the live counterpart
        of a reference sketch, guaranteed PSI-comparable."""
        return QuantileSketch(self.lo, self.hi, self.bins)

    def to_dict(self) -> dict:
        return {"lo": self.lo, "hi": self.hi, "bins": self.bins,
                "counts": self.counts.tolist()}

    @classmethod
    def from_dict(cls, payload: dict) -> "QuantileSketch":
        sketch = cls(payload["lo"], payload["hi"], payload["bins"])
        counts = np.asarray(payload["counts"], dtype=np.int64)
        if counts.shape != sketch.counts.shape:
            raise ValueError("counts do not match declared bins")
        sketch.counts = counts
        return sketch


def psi(reference: QuantileSketch, live: QuantileSketch) -> float:
    """Population stability index between two same-binned sketches."""
    if (reference.lo, reference.hi, reference.bins) != \
            (live.lo, live.hi, live.bins):
        raise ValueError("sketches must share bin edges for PSI")
    p = reference.probabilities()
    q = live.probabilities()
    return float(np.sum((q - p) * np.log(q / p)))


def ks_statistic(reference: QuantileSketch,
                 live: QuantileSketch) -> float:
    """Kolmogorov–Smirnov statistic (max CDF gap) between sketches."""
    if (reference.lo, reference.hi, reference.bins) != \
            (live.lo, live.hi, live.bins):
        raise ValueError("sketches must share bin edges for KS")
    return float(np.max(np.abs(reference.cdf() - live.cdf())))


class DriftReference:
    """Training-time sketches of the three drift signals.

    Built by the trainer from the validation corpus (recipe embeddings
    queried against the image index, the paper's im2recipe direction
    reversed to match what serving sees) and persisted as JSON next to
    the checkpoints.
    """

    def __init__(self, sketches: dict[str, QuantileSketch]):
        missing = set(DRIFT_SIGNALS) - set(sketches)
        if missing:
            raise ValueError(f"reference missing signals: {missing}")
        self.sketches = sketches

    @classmethod
    def from_embeddings(cls, query_embeddings: np.ndarray,
                        corpus_embeddings: np.ndarray,
                        bins: int = 32) -> "DriftReference":
        """Build the reference from raw (unnormalized) embeddings.

        ``query_embeddings`` plays the live-query role (recipe side),
        ``corpus_embeddings`` the index role (image side).  Cosine
        distances live in [0, 2] so those sketch ranges are pinned;
        the norm range is data-driven with headroom for upward drift.
        """
        from ..retrieval.index import NearestNeighborIndex

        queries = np.asarray(query_embeddings, dtype=np.float64)
        norms = np.linalg.norm(queries, axis=1)
        finite = norms[np.isfinite(norms)]
        hi = float(finite.max()) * 2.0 if finite.size else 1.0
        if hi <= 0.0:
            hi = 1.0
        sketches = {
            "embedding_norm": QuantileSketch(0.0, hi, bins),
            "top1_distance": QuantileSketch(0.0, 2.0, bins),
            "margin": QuantileSketch(0.0, 2.0, bins),
        }
        sketches["embedding_norm"].update_many(norms)

        index = NearestNeighborIndex(
            np.asarray(corpus_embeddings, dtype=np.float64))
        k = min(2, len(index))
        if k >= 1:
            _, distances = index.query_batch(queries, k=k)
            sketches["top1_distance"].update_many(distances[:, 0])
            if k == 2:
                sketches["margin"].update_many(
                    distances[:, 1] - distances[:, 0])
        return cls(sketches)

    def spawn_live(self) -> dict[str, QuantileSketch]:
        """Empty live sketches sharing this reference's bins."""
        return {name: sketch.spawn()
                for name, sketch in self.sketches.items()}

    def to_dict(self) -> dict:
        return {"signals": {name: sketch.to_dict()
                            for name, sketch in self.sketches.items()}}

    @classmethod
    def from_dict(cls, payload: dict) -> "DriftReference":
        return cls({name: QuantileSketch.from_dict(raw)
                    for name, raw in payload["signals"].items()})

    def save(self, path) -> None:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.to_dict(), sort_keys=True))
        tmp.replace(path)

    @classmethod
    def load(cls, path) -> "DriftReference":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))


class DriftMonitor:
    """Thread-safe live drift scoring against a reference.

    The serving layer calls :meth:`observe_query` on every successful
    index-stage result; scores are recomputed and exported as gauges
    every ``export_every`` observations (PSI over 32 bins is cheap,
    but per-query would still be wasteful).  A hot-swap calls
    :meth:`start_generation` to reset the live sketches — drift is
    always measured *within* a generation, against that generation's
    reference.
    """

    def __init__(self, reference: DriftReference | None = None,
                 registry=None, min_samples: int = 20,
                 export_every: int = 16,
                 on_scores: Callable[[dict], None] | None = None):
        self._lock = threading.Lock()
        self.min_samples = int(min_samples)
        self.export_every = max(1, int(export_every))
        self.on_scores = on_scores
        self._m_score = None
        self._m_samples = None
        if registry is not None:
            self._m_score = registry.gauge(
                "drift_score", "PSI drift score per signal vs the "
                "training-time reference", labels=("signal",))
            self._m_samples = registry.gauge(
                "drift_samples",
                "Observations in the current live drift window")
        self.reference: DriftReference | None = None
        self.live: dict[str, QuantileSketch] = {}
        self._since_export = 0
        if reference is not None:
            self.start_generation(reference)

    @property
    def active(self) -> bool:
        return self.reference is not None

    def start_generation(self,
                         reference: DriftReference | None) -> None:
        """Install a (possibly new) reference and reset live sketches."""
        with self._lock:
            self.reference = reference
            self.live = (reference.spawn_live()
                         if reference is not None else {})
            self._since_export = 0
        self._export()

    def observe_query(self, vector, distances) -> None:
        """Record one served query.

        ``vector`` is the raw query embedding; ``distances`` the sorted
        result distances (top-1 first).  Cheap no-op when no reference
        is installed.
        """
        if self.reference is None:
            return
        norm = float(np.linalg.norm(np.asarray(vector,
                                               dtype=np.float64)))
        distances = np.asarray(distances, dtype=np.float64).ravel()
        with self._lock:
            if not self.live:
                return
            self.live["embedding_norm"].update(norm)
            if distances.size >= 1:
                self.live["top1_distance"].update(distances[0])
            if distances.size >= 2:
                self.live["margin"].update(distances[1] - distances[0])
            self._since_export += 1
            due = self._since_export >= self.export_every
            if due:
                self._since_export = 0
        if due:
            self._export()

    def samples(self) -> int:
        with self._lock:
            if not self.live:
                return 0
            return max(s.total for s in self.live.values())

    def scores(self) -> dict[str, float]:
        """PSI per signal; NaN until ``min_samples`` observations."""
        with self._lock:
            reference = self.reference
            live = {name: QuantileSketch.from_dict(s.to_dict())
                    for name, s in self.live.items()}
        out = {}
        for name in DRIFT_SIGNALS:
            if (reference is None or name not in live
                    or live[name].total < self.min_samples):
                out[name] = float("nan")
            else:
                out[name] = psi(reference.sketches[name], live[name])
        return out

    def ks_scores(self) -> dict[str, float]:
        """KS statistic per signal (same min-samples gating as PSI)."""
        with self._lock:
            reference = self.reference
            live = {name: QuantileSketch.from_dict(s.to_dict())
                    for name, s in self.live.items()}
        out = {}
        for name in DRIFT_SIGNALS:
            if (reference is None or name not in live
                    or live[name].total < self.min_samples):
                out[name] = float("nan")
            else:
                out[name] = ks_statistic(reference.sketches[name],
                                         live[name])
        return out

    def max_score(self) -> float:
        """Worst PSI across signals — what the drift SLO watches."""
        values = [v for v in self.scores().values()
                  if math.isfinite(v)]
        return max(values) if values else float("nan")

    def _export(self) -> None:
        scores = self.scores()
        if self._m_score is not None:
            for name, value in scores.items():
                # Gauge.set drops non-finite values, so the gauge
                # holds its last finite score during warm-up.
                self._m_score.labels(signal=name).set(value)
        if self._m_samples is not None:
            self._m_samples.set(self.samples())
        if self.on_scores is not None:
            self.on_scores(scores)

    def summary(self) -> dict:
        """Compact dict for ``stats()`` and flight bundles."""
        return {
            "active": self.active,
            "samples": self.samples(),
            "psi": self.scores(),
            "ks": self.ks_scores(),
        }

    def dump(self) -> dict:
        """Full sketch state (reference + live) for flight bundles."""
        with self._lock:
            return {
                "reference": (self.reference.to_dict()
                              if self.reference else None),
                "live": {name: sketch.to_dict()
                         for name, sketch in self.live.items()},
            }
