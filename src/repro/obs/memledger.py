"""Memory ledger: where the bytes actually go, by component.

RSS says *how much* memory the process holds; it never says *who*
holds it.  The :class:`MemoryLedger` closes that gap with a registry
of per-component ``MemoryReporter`` callbacks — the index registers
its embedding-matrix ``nbytes``, the WAL its segment bytes on disk,
the result cache its retained entries, the tracer/event-log/sampler
their ring buffers, the admission plane its queue depth — plus the
process RSS read from ``/proc/self/statm``.  A snapshot itemizes the
components, totals the tracked bytes, and reports the *untracked*
remainder, so "the index is 80% of RSS" and "observability is eating
itself" are both one query.

Optional ``tracemalloc`` integration answers the follow-up question —
*which allocation site grew* — as top-N deltas against a baseline
taken when tracing was enabled.  It is off by default because
tracemalloc costs real memory and CPU; the ledger itself costs only
the callbacks it runs.

Reporters never take the ledger down: a callback that raises is
reported under ``errors`` and its component reads 0 for that
snapshot.  Everything in a snapshot is JSON-serializable after
:func:`~repro.obs.sanitize.json_safe`.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import OrderedDict, deque
from typing import Callable

__all__ = ["MemoryLedger", "MemoryReporter", "rss_bytes",
           "approx_bytes", "ring_bytes", "ndarray_bytes"]

# A MemoryReporter is any zero-argument callable returning either an
# int byte count or a {sub_component: bytes} dict.
MemoryReporter = Callable[[], "int | dict"]

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096


def rss_bytes() -> int | None:
    """Resident set size from ``/proc/self/statm`` (None off Linux)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


def ndarray_bytes(*arrays) -> int:
    """Sum of ``nbytes`` over arrays, skipping Nones quietly."""
    total = 0
    for array in arrays:
        nbytes = getattr(array, "nbytes", None)
        if nbytes is not None:
            total += int(nbytes)
    return total


def approx_bytes(value, _depth: int = 6, _seen=None) -> int:
    """Rough retained-size estimate for one buffered record.

    Recursive ``sys.getsizeof`` over containers and instance dicts,
    depth-bounded and cycle-safe.  An estimate, not an audit — ring
    buffers need "roughly how many MB", not malloc truth.
    """
    if _seen is None:
        _seen = set()
    if id(value) in _seen or _depth <= 0:
        return 0
    try:
        size = sys.getsizeof(value)
    except TypeError:
        return 64
    if isinstance(value, (str, bytes, bytearray, int, float, bool,
                          type(None))):
        return size
    _seen.add(id(value))
    if isinstance(value, dict):
        for key, item in value.items():
            size += approx_bytes(key, _depth - 1, _seen)
            size += approx_bytes(item, _depth - 1, _seen)
        return size
    if isinstance(value, (list, tuple, set, frozenset, deque)):
        for item in value:
            size += approx_bytes(item, _depth - 1, _seen)
        return size
    attrs = getattr(value, "__dict__", None)
    if attrs:
        size += approx_bytes(attrs, _depth - 1, _seen)
    return size


def ring_bytes(items, sample: int = 8) -> int:
    """Estimated retained bytes of a ring buffer: mean of up to
    ``sample`` evenly spaced entries times the entry count."""
    entries = list(items)
    count = len(entries)
    if count == 0:
        return 0
    step = max(count // sample, 1)
    picked = entries[::step][:sample]
    mean = sum(approx_bytes(entry) for entry in picked) / len(picked)
    return int(mean * count)


class MemoryLedger:
    """Registry of per-component byte reporters plus process RSS.

    Parameters
    ----------
    registry:
        Optional :class:`~repro.obs.MetricsRegistry`; snapshots update
        ``memory_component_bytes{component}``, ``memory_rss_bytes``
        and ``memory_tracked_bytes`` gauges.
    clock:
        Timestamp source for snapshots (injectable).
    """

    def __init__(self, registry=None,
                 clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._reporters: OrderedDict[str, MemoryReporter] = \
            OrderedDict()
        self._baseline_rss: int | None = rss_bytes()
        self._tm_baseline = None
        self._component_gauge = None
        if registry is not None:
            self._component_gauge = registry.gauge(
                "memory_component_bytes",
                "tracked retained bytes per component",
                labels=("component",))
            self._rss_gauge = registry.gauge(
                "memory_rss_bytes", "process resident set size")
            self._tracked_gauge = registry.gauge(
                "memory_tracked_bytes",
                "sum of all component-tracked bytes")

    # -- reporter registry ----------------------------------------------
    def register(self, name: str, reporter: MemoryReporter) -> None:
        """(Re-)register a component's byte reporter."""
        with self._lock:
            self._reporters[str(name)] = reporter

    def unregister(self, name: str) -> None:
        with self._lock:
            self._reporters.pop(str(name), None)

    def names(self) -> list[str]:
        with self._lock:
            return list(self._reporters)

    def mark_baseline(self) -> None:
        """Re-anchor the RSS-growth baseline at the current RSS."""
        self._baseline_rss = rss_bytes()

    # -- tracemalloc (optional, costs memory while enabled) -------------
    def enable_tracemalloc(self, frames: int = 1) -> bool:
        """Start allocation tracing and record the delta baseline."""
        try:
            import tracemalloc
        except ImportError:  # pragma: no cover
            return False
        if not tracemalloc.is_tracing():
            tracemalloc.start(frames)
        self._tm_baseline = tracemalloc.take_snapshot()
        return True

    def disable_tracemalloc(self) -> None:
        try:
            import tracemalloc
        except ImportError:  # pragma: no cover
            return
        self._tm_baseline = None
        if tracemalloc.is_tracing():
            tracemalloc.stop()

    def tracemalloc_top(self, n: int = 10) -> list[dict] | None:
        """Top-N allocation-site growth since the baseline, or
        ``None`` when tracing is off."""
        if self._tm_baseline is None:
            return None
        import tracemalloc
        if not tracemalloc.is_tracing():
            return None
        stats = tracemalloc.take_snapshot().compare_to(
            self._tm_baseline, "lineno")
        return [{"site": str(stat.traceback),
                 "size_diff_bytes": int(stat.size_diff),
                 "count_diff": int(stat.count_diff)}
                for stat in stats[:n]]

    # -- snapshots -------------------------------------------------------
    def components(self) -> tuple[dict, dict]:
        """Run every reporter: ``(component -> bytes, errors)``.

        A reporter returning a dict contributes flattened
        ``name.sub`` entries; a reporter raising lands in errors and
        contributes nothing this pass (the ledger never raises).
        """
        with self._lock:
            reporters = list(self._reporters.items())
        values: dict[str, int] = {}
        errors: dict[str, str] = {}
        for name, reporter in reporters:
            try:
                result = reporter()
                if isinstance(result, dict):
                    for sub, nbytes in result.items():
                        values[f"{name}.{sub}"] = int(nbytes)
                else:
                    values[name] = int(result)
            except Exception as exc:           # noqa: BLE001
                errors[name] = f"{type(exc).__name__}: {exc}"
        return values, errors

    def snapshot(self, tracemalloc_n: int = 10) -> dict:
        """Itemized memory snapshot (JSON-safe, gauge-updating)."""
        values, errors = self.components()
        tracked = sum(values.values())
        rss = rss_bytes()
        snap = {
            "ts": self._clock(),
            "rss_bytes": rss,
            "rss_growth_bytes": (rss - self._baseline_rss
                                 if rss is not None
                                 and self._baseline_rss is not None
                                 else None),
            "tracked_bytes": tracked,
            "untracked_bytes": (max(rss - tracked, 0)
                                if rss is not None else None),
            "components": dict(sorted(values.items())),
        }
        if errors:
            snap["errors"] = errors
        top = self.tracemalloc_top(tracemalloc_n)
        if top is not None:
            snap["tracemalloc_top"] = top
        if self._component_gauge is not None:
            for name, nbytes in values.items():
                self._component_gauge.labels(component=name).set(
                    float(nbytes))
            if rss is not None:
                self._rss_gauge.set(float(rss))
            self._tracked_gauge.set(float(tracked))
        return snap
