"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` owns named metric *families*; a family with
label names hands out per-label-value children via :meth:`labels`, a
family without labels is used directly.  Everything is guarded by one
lock per family, so concurrent increments from the serving threads and
the training loop are exact — no sampling, no lost updates.

Two expositions are supported, both dependency-free:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text format
  (``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket{le=...}``
  histogram series) for scraping or eyeballing;
* :meth:`MetricsRegistry.to_dict` / :meth:`dump_json` — a JSON
  snapshot that round-trips through :meth:`MetricsRegistry.from_dict`,
  used by the CLI's ``metrics dump`` and the benchmark artifacts.

Registration is idempotent: asking for an existing name returns the
existing family (and raises if the kind or label names disagree), so
independent subsystems can share a registry without coordination.

Non-finite updates (NaN/Inf) are dropped uniformly by every primitive
(see :mod:`~repro.obs.sanitize`): a gauge keeps its last finite value,
a histogram sum can never be poisoned, and no exposition contains NaN.
"""

from __future__ import annotations

import bisect
import json
import math
import re
import threading

from .sanitize import json_safe  # noqa: F401  (re-exported convenience)

__all__ = ["MetricError", "Counter", "Gauge", "Histogram",
           "MetricsRegistry", "DEFAULT_BUCKETS", "LATENCY_BUCKETS",
           "parse_prometheus", "ParsedExposition",
           "quantile_from_counts"]

#: General-purpose boundaries (seconds-ish scale).
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Finer low end for request/stage latencies measured in seconds.
LATENCY_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                   0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)


class MetricError(ValueError):
    """Invalid metric declaration or usage."""


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


class Counter:
    """Monotonically increasing value (one labeled child).

    Non-finite increments are dropped (see :mod:`~repro.obs.sanitize`):
    a single NaN must never turn a request counter into NaN forever.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a gauge")
        if not math.isfinite(amount):
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Arbitrary settable value (one labeled child).

    Non-finite updates are dropped: ``set(nan)`` keeps the last finite
    value (a gauge that silently flips to NaN breaks every dashboard
    aggregate downstream), and ``inc(inf)`` is a no-op.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            return
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        if not math.isfinite(amount):
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-boundary histogram with exact count and sum.

    Bucket semantics follow Prometheus: a bucket with upper bound
    ``le`` counts observations ``<= le``; the implicit final bucket is
    ``+Inf``.  Boundaries are fixed at declaration so aggregation
    across processes stays meaningful.
    """

    __slots__ = ("_lock", "boundaries", "_counts", "_sum", "_count",
                 "_exemplars")

    def __init__(self, lock: threading.Lock, boundaries):
        self._lock = lock
        self.boundaries = tuple(float(b) for b in boundaries)
        if not self.boundaries:
            raise MetricError("histogram needs at least one boundary")
        if list(self.boundaries) != sorted(set(self.boundaries)):
            raise MetricError("histogram boundaries must be strictly "
                              "increasing")
        self._counts = [0] * (len(self.boundaries) + 1)
        self._sum = 0.0
        self._count = 0
        # bucket index -> (observed value, trace id); one exemplar per
        # bucket, latest observation wins.
        self._exemplars: dict[int, tuple[float, str]] = {}

    def observe(self, value: float, trace_id=None) -> None:
        value = float(value)
        if not math.isfinite(value):
            return
        with self._lock:
            index = bisect.bisect_left(self.boundaries, value)
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if trace_id is not None:
                self._exemplars[index] = (value, str(trace_id))

    def exemplars(self) -> dict[int, tuple[float, str]]:
        """Snapshot of ``{bucket index: (value, trace_id)}``."""
        with self._lock:
            return dict(self._exemplars)

    def time(self, clock=None):
        """A :class:`~repro.obs.timing.Timer` feeding this histogram."""
        from .timing import Timer
        return Timer(self, clock=clock) if clock is not None else Timer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts, final entry is +Inf."""
        with self._lock:
            return list(self._counts)

    def cumulative(self) -> list[int]:
        counts = self.bucket_counts()
        out, running = [], 0
        for c in counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        The single canonical estimator for the whole codebase
        (``stats()`` dashboards, the monitor CLI, latency SLOs) so no
        consumer re-derives p99 ad hoc.  See
        :func:`quantile_from_counts` for the estimation contract.
        """
        return quantile_from_counts(self.boundaries,
                                    self.bucket_counts(), q)

    def quantiles(self, qs=(0.5, 0.95, 0.99)) -> dict[float, float]:
        """Several quantiles from one consistent snapshot of counts."""
        counts = self.bucket_counts()
        return {float(q): quantile_from_counts(self.boundaries, counts, q)
                for q in qs}


def quantile_from_counts(boundaries, bucket_counts, q: float) -> float:
    """Estimate a quantile from fixed-boundary histogram counts.

    Follows the Prometheus ``histogram_quantile`` convention: linear
    interpolation inside the bucket holding the target rank, a lower
    edge of 0 for the first bucket (latencies are non-negative), and
    the highest finite boundary for ranks landing in the ``+Inf``
    overflow bucket.  Returns NaN for an empty histogram — callers
    that feed gauges rely on the registry's non-finite drop policy.
    """
    if not 0.0 <= q <= 1.0:
        raise MetricError(f"quantile must be in [0, 1], got {q}")
    boundaries = tuple(boundaries)
    counts = list(bucket_counts)
    if len(counts) != len(boundaries) + 1:
        raise MetricError(
            f"expected {len(boundaries) + 1} bucket counts "
            f"(incl. +Inf), got {len(counts)}")
    total = sum(counts)
    if total == 0:
        return float("nan")
    rank = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative < rank or count == 0:
            continue
        if i == len(boundaries):        # +Inf overflow bucket
            return float(boundaries[-1])
        upper = boundaries[i]
        lower = boundaries[i - 1] if i > 0 else min(0.0, upper)
        return lower + (upper - lower) * (rank - previous) / count
    return float(boundaries[-1])


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric with optional label dimensions."""

    def __init__(self, kind: str, name: str, help: str,
                 label_names: tuple[str, ...], buckets=None):
        self.kind = kind
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._lock, self.buckets)
        return _KINDS[self.kind](self._lock)

    def labels(self, **label_values):
        if set(label_values) != set(self.label_names):
            raise MetricError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(label_values))}")
        key = tuple(str(label_values[n]) for n in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _default(self):
        if self.label_names:
            raise MetricError(f"{self.name} has labels "
                              f"{self.label_names}; call .labels(...)")
        return self.labels()

    # Label-free families proxy straight to their single child.
    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float, trace_id=None) -> None:
        self._default().observe(value, trace_id=trace_id)

    def time(self):
        return self._default().time()

    @property
    def value(self) -> float:
        return self._default().value

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def sum(self) -> float:
        return self._default().sum

    def bucket_counts(self):
        return self._default().bucket_counts()

    def cumulative(self):
        return self._default().cumulative()

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


def _fmt(value: float) -> str:
    """Prometheus-style number formatting."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(names, values, extra: str = "") -> str:
    parts = [f'{n}="{v}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class MetricsRegistry:
    """Container of metric families with idempotent registration."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # -- registration --------------------------------------------------
    def _register(self, kind: str, name: str, help: str,
                  labels, buckets=None) -> _Family:
        labels = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != labels:
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.label_names}")
                return family
            family = _Family(kind, name, help, labels, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labels=()) -> _Family:
        return self._register("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", labels=()) -> _Family:
        return self._register("gauge", name, help, labels)

    def histogram(self, name: str, help: str = "", labels=(),
                  buckets=DEFAULT_BUCKETS) -> _Family:
        return self._register("histogram", name, help, labels, buckets)

    def get(self, name: str) -> _Family | None:
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    # -- exposition ----------------------------------------------------
    def to_prometheus(self) -> str:
        """Render every family in the Prometheus text format."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.children():
                labels = _label_str(family.label_names, key)
                if family.kind in ("counter", "gauge"):
                    lines.append(
                        f"{family.name}{labels} {_fmt(child.value)}")
                    continue
                bounds = list(family.buckets) + [math.inf]
                exemplars = child.exemplars()
                for index, (bound, cum) in enumerate(
                        zip(bounds, child.cumulative())):
                    le = _label_str(family.label_names, key,
                                    extra=f'le="{_fmt(bound)}"')
                    line = f"{family.name}_bucket{le} {cum}"
                    exemplar = exemplars.get(index)
                    if exemplar is not None:
                        # OpenMetrics exemplar: the p99 bucket links
                        # straight to a kept trace id.
                        value, trace_id = exemplar
                        line += (f' # {{trace_id="{trace_id}"}} '
                                 f"{_fmt(value)}")
                    lines.append(line)
                lines.append(f"{family.name}_sum{labels} "
                             f"{_fmt(child.sum)}")
                lines.append(f"{family.name}_count{labels} "
                             f"{child.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        """JSON-able snapshot; inverse of :meth:`from_dict`."""
        out: dict[str, dict] = {}
        for family in self.families():
            entry: dict = {"kind": family.kind, "help": family.help,
                           "labels": list(family.label_names)}
            if family.kind == "histogram":
                entry["buckets"] = list(family.buckets)
            samples = []
            for key, child in family.children():
                sample: dict = {
                    "labels": dict(zip(family.label_names, key))}
                if family.kind == "histogram":
                    sample["count"] = child.count
                    sample["sum"] = child.sum
                    sample["bucket_counts"] = child.bucket_counts()
                    exemplars = child.exemplars()
                    if exemplars:
                        sample["exemplars"] = {
                            str(index): {"value": value,
                                         "trace_id": trace_id}
                            for index, (value, trace_id)
                            in sorted(exemplars.items())}
                else:
                    sample["value"] = child.value
                samples.append(sample)
            entry["samples"] = samples
            out[family.name] = entry
        return out

    def dump_json(self, path, indent: int = 2) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=indent,
                      sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_dict` snapshot."""
        registry = cls()
        for name, entry in data.items():
            kind = entry["kind"]
            labels = tuple(entry.get("labels", ()))
            if kind == "counter":
                family = registry.counter(name, entry.get("help", ""),
                                          labels)
            elif kind == "gauge":
                family = registry.gauge(name, entry.get("help", ""),
                                        labels)
            elif kind == "histogram":
                family = registry.histogram(
                    name, entry.get("help", ""), labels,
                    buckets=tuple(entry["buckets"]))
            else:
                raise MetricError(f"unknown metric kind {kind!r}")
            for sample in entry.get("samples", ()):
                child = family.labels(**sample.get("labels", {}))
                if kind == "histogram":
                    child._counts = [int(c)
                                     for c in sample["bucket_counts"]]
                    child._sum = float(sample["sum"])
                    child._count = int(sample["count"])
                    child._exemplars = {
                        int(index): (float(ex["value"]),
                                     str(ex["trace_id"]))
                        for index, ex
                        in sample.get("exemplars", {}).items()}
                else:
                    child._value = float(sample["value"])
        return registry


class ParsedExposition(dict):
    """:func:`parse_prometheus` result: ``{series: {labels: value}}``.

    Plain-``dict`` compatible for every existing caller, plus an
    :attr:`exemplars` side table mapping ``(series, labels)`` to the
    OpenMetrics exemplar attached to that sample
    (``{"labels": {...}, "value": float}``), so round-trips through
    text exposition preserve trace links instead of dropping them.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.exemplars: dict[tuple, dict] = {}


def parse_prometheus(text: str) -> "ParsedExposition":
    """Parse Prometheus text into ``{series: {label-items: value}}``.

    Only what :meth:`MetricsRegistry.to_prometheus` emits is supported
    (enough for round-trip tests and quick greps, not a full scraper).
    Series names keep their ``_bucket``/``_sum``/``_count`` suffixes;
    label sets are ``tuple(sorted((name, value), ...))``.  OpenMetrics
    exemplar suffixes (``... # {trace_id="7"} 0.042``) are tolerated
    and preserved on the result's ``exemplars`` attribute rather than
    breaking the value parse.
    """

    def parse_labels(blob: str) -> tuple:
        labels = []
        for item in filter(None, blob.split(",")):
            key, __, raw = item.partition("=")
            labels.append((key, raw.strip('"')))
        return tuple(sorted(labels))

    samples = ParsedExposition()
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        exemplar = None
        if " # " in line:            # OpenMetrics exemplar suffix
            line, __, suffix = line.partition(" # ")
            ex_labels, __, ex_value = suffix.rpartition(" ")
            exemplar = {"labels": dict(parse_labels(
                            ex_labels.strip().strip("{}"))),
                        "value": float(ex_value)}
        name_part, __, value_part = line.rpartition(" ")
        if "{" in name_part:
            name, __, label_part = name_part.partition("{")
            key = parse_labels(label_part.rstrip("}"))
        else:
            name, key = name_part, ()
        value = float(value_part)
        samples.setdefault(name, {})[key] = value
        if exemplar is not None:
            samples.exemplars[(name, key)] = exemplar
    return samples
