"""Finite-difference gradient checking for the autograd engine.

Every op in the engine is validated against central differences in the
test suite; this module provides the shared machinery.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function mapping the input tensors to an output tensor.
    inputs:
        All tensor arguments of ``fn``.
    index:
        Which input to differentiate with respect to.
    eps:
        Finite-difference step.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                    atol: float = 1e-5, rtol: float = 1e-4,
                    eps: float = 1e-6) -> None:
    """Assert analytic gradients of ``fn`` match finite differences.

    Raises ``AssertionError`` listing the first mismatching input.
    """
    for tensor in inputs:
        tensor.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        expected = numerical_gradient(fn, inputs, i, eps=eps)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(expected)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.abs(actual - expected).max()
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs error {worst:.3e}"
            )
