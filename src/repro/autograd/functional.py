"""Differentiable functions built on :class:`repro.autograd.Tensor`.

These cover the composite operations the AdaMine model needs: sequence
concatenation/stacking, stable softmax and cross entropy (for the PWC
classification head), L2 normalization and cosine similarity (the latent
space metric), and elementwise max/where used by hinge losses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "concat", "stack", "maximum", "where", "softmax", "log_softmax",
    "cross_entropy", "l2_normalize", "cosine_similarity",
    "cosine_similarity_matrix", "pairwise_cosine_distance", "dot_rows",
]


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        pieces = []
        for i in range(len(tensors)):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(offsets[i], offsets[i + 1])
            pieces.append(grad[tuple(index)])
        return tuple(pieces)

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return Tensor._make(out_data, tensors, backward)


def maximum(a: Tensor, b) -> Tensor:
    """Elementwise maximum of two tensors (ties route gradient to ``a``)."""
    a = as_tensor(a)
    b = as_tensor(b)
    take_a = a.data >= b.data
    out_data = np.where(take_a, a.data, b.data)

    def backward(grad):
        from .tensor import _unbroadcast
        return (_unbroadcast(grad * take_a, a.shape),
                _unbroadcast(grad * ~take_a, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable ``np.where`` with a boolean (non-differentiable) mask."""
    a = as_tensor(a)
    b = as_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad):
        from .tensor import _unbroadcast
        return (_unbroadcast(grad * condition, a.shape),
                _unbroadcast(grad * ~condition, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: int | None = None) -> Tensor:
    """Mean cross-entropy of integer ``targets`` given ``logits``.

    Used by the PWC classification head; rows whose target equals
    ``ignore_index`` (Recipe1M pairs without class labels) contribute
    nothing to the loss.
    """
    targets = np.asarray(targets, dtype=np.int64)
    logp = log_softmax(logits, axis=-1)
    rows = np.arange(len(targets))
    if ignore_index is not None:
        keep = targets != ignore_index
        if not keep.any():
            return Tensor(0.0)
        picked = logp[rows[keep], targets[keep]]
    else:
        picked = logp[rows, targets]
    return -picked.mean()


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Project rows of ``x`` onto the unit sphere (cosine-space embedding)."""
    norms = (x * x).sum(axis=axis, keepdims=True).clamp_min(eps).sqrt()
    return x / norms


def dot_rows(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise dot product of two equally shaped 2-D tensors."""
    return (a * b).sum(axis=-1)


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Row-wise cosine similarity between two equally shaped tensors."""
    return dot_rows(l2_normalize(a, axis=axis), l2_normalize(b, axis=axis))


def cosine_similarity_matrix(a: Tensor, b: Tensor) -> Tensor:
    """All-pairs cosine similarity: (n, d) x (m, d) -> (n, m)."""
    return l2_normalize(a) @ l2_normalize(b).T


def pairwise_cosine_distance(a: Tensor, b: Tensor) -> Tensor:
    """All-pairs cosine distance ``1 - cos`` — the paper's latent metric."""
    return 1.0 - cosine_similarity_matrix(a, b)
