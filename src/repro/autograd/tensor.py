"""Reverse-mode automatic differentiation over numpy arrays.

This module is the substrate standing in for PyTorch's autograd: a
:class:`Tensor` wraps a numpy array, records the operations that produced
it, and :meth:`Tensor.backward` propagates gradients through the recorded
graph in reverse topological order.

Only the features needed by the AdaMine reproduction are implemented,
but they are implemented fully: broadcasting-aware arithmetic, matrix
multiplication, reductions, indexing/gather, concatenation, the usual
activation functions, and in-place gradient accumulation.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

# Grad mode is per-thread (like torch): a worker thread querying the
# index under no_grad must not flip graph construction off for a
# training thread, and the save/restore in no_grad() must not race.
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (like torch.no_grad)."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape``, undoing numpy broadcasting.

    Broadcasting prepends axes and stretches length-1 axes; the gradient
    of a broadcast input is therefore the sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched axes.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array node in a reverse-mode autodiff graph.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts. Floating point data is kept in
        ``float64`` by default for numerically robust gradient checks.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float."""
        if self.data.size != 1:
            raise ValueError(f"item() requires a single element, got {self.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph construction / backward
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create an op-output tensor wired into the graph when needed."""
        needs = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs)
        if needs:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's ``.grad`` buffer."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Seed gradient. Defaults to 1 for scalar tensors; required
            (and shape-checked) otherwise.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without a gradient argument is only valid "
                    f"for scalar tensors, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} does not match "
                    f"tensor shape {self.data.shape}"
                )

        # Topological order via iterative DFS (recursion-free: LSTM graphs
        # over long sequences would overflow python's recursion limit).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf (e.g. a Parameter): accumulate into .grad.
                node._accumulate(node_grad)
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                if id(parent) in grads:
                    grads[id(parent)] += pgrad
                else:
                    grads[id(parent)] = pgrad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient buffer."""
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic (broadcasting-aware)
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            return (_unbroadcast(grad, self.shape),
                    _unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data

        def backward(grad):
            return (_unbroadcast(grad, self.shape),
                    _unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            return (_unbroadcast(grad * other.data, self.shape),
                    _unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad):
            return (_unbroadcast(grad / other.data, self.shape),
                    _unbroadcast(-grad * self.data / (other.data ** 2),
                                 other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:  # dot product
                return (grad * b, grad * a)
            if a.ndim == 1:  # (k,) @ (k, n) -> (n,)
                return (grad @ b.T, np.outer(a, grad))
            if b.ndim == 1:  # (m, k) @ (k,) -> (m,)
                return (np.outer(grad, b), a.T @ grad)
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            return (_unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape))

        return Tensor._make(out_data, (self, other), backward)

    # Comparison operators return plain numpy boolean arrays (no grad).
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out_data = self.data.reshape(shape)

        def backward(grad):
            return (grad.reshape(original),)

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, axes: Sequence[int] | None = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)
        if axes is None:
            inverse = None
        else:
            inverse = np.argsort(axes)

        def backward(grad):
            return (np.transpose(grad, inverse),)

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        shape = self.shape

        def backward(grad):
            full = np.zeros(shape, dtype=np.float64)
            np.add.at(full, key, grad)
            return (full,)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(grad):
            if axis is None:
                return (np.broadcast_to(grad, shape).copy(),)
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, shape).copy(),)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(grad):
            if axis is None:
                mask = (self.data == self.data.max()).astype(np.float64)
                mask /= mask.sum()
                return (mask * grad,)
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis)
            return (mask * g,)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            return (grad * out_data,)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad):
            return (grad / self.data,)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad):
            return (grad * 0.5 / out_data,)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - out_data ** 2),)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            return (grad * out_data * (1.0 - out_data),)

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(out_data, (self,), backward)

    def clamp_min(self, minimum: float) -> "Tensor":
        """Elementwise ``max(x, minimum)`` — the hinge used by triplet losses."""
        mask = self.data > minimum
        out_data = np.where(mask, self.data, minimum)

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value) -> Tensor:
    """Coerce scalars / arrays / tensors to a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
