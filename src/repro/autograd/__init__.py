"""Reverse-mode autodiff substrate (stands in for PyTorch autograd)."""

from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad
from .functional import (
    concat,
    cosine_similarity,
    cosine_similarity_matrix,
    cross_entropy,
    dot_rows,
    l2_normalize,
    log_softmax,
    maximum,
    pairwise_cosine_distance,
    softmax,
    stack,
    where,
)
from .gradcheck import numerical_gradient, check_gradients

__all__ = [
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled",
    "concat", "stack", "maximum", "where",
    "softmax", "log_softmax", "cross_entropy",
    "l2_normalize", "dot_rows", "cosine_similarity",
    "cosine_similarity_matrix", "pairwise_cosine_distance",
    "numerical_gradient", "check_gradients",
]
