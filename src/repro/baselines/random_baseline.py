"""Random embedding baseline (the paper's chance row in Table 3)."""

from __future__ import annotations

import numpy as np

__all__ = ["RandomEmbedder"]


class RandomEmbedder:
    """Assigns every item an independent random unit vector.

    Cross-modal retrieval over such embeddings is uniform chance:
    MedR ≈ N/2 and R@K ≈ 100·K/N, the reference floor in Table 3.
    """

    def __init__(self, dim: int = 32, seed: int = 0):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim
        self._rng = np.random.default_rng(seed)

    def embed(self, count: int) -> np.ndarray:
        """Draw ``count`` random unit-norm embeddings."""
        vectors = self._rng.normal(size=(count, self.dim))
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        return vectors / np.maximum(norms, 1e-12)

    def embed_pair(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Independent embeddings for both modalities."""
        return self.embed(count), self.embed(count)
