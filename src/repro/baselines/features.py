"""Fixed (non-learned) per-modality features for the CCA baseline.

CCA is a global alignment method over precomputed representations; the
paper applies it to the same pretrained features its neural baselines
start from. Here:

* image features — per-channel colour statistics plus a coarse
  downsampled pixel grid (what a frozen backbone exposes);
* recipe features — mean pretrained ingredient vector ⊕ mean frozen
  instruction-sentence vector.
"""

from __future__ import annotations

import numpy as np

from ..data.encoding import EncodedCorpus, RecipeFeaturizer

__all__ = ["image_features", "recipe_features", "corpus_features"]


def image_features(images: np.ndarray, grid: int = 4) -> np.ndarray:
    """Colour statistics + ``grid x grid`` average-pooled pixels."""
    n, c, h, w = images.shape
    if h % grid or w % grid:
        raise ValueError(f"image size {(h, w)} not divisible by grid {grid}")
    means = images.mean(axis=(2, 3))
    stds = images.std(axis=(2, 3))
    pooled = images.reshape(n, c, grid, h // grid, grid, w // grid)
    pooled = pooled.mean(axis=(3, 5)).reshape(n, -1)
    return np.concatenate([means, stds, pooled], axis=1)


def recipe_features(corpus: EncodedCorpus,
                    featurizer: RecipeFeaturizer) -> np.ndarray:
    """Mean ingredient word2vec vector ⊕ mean sentence vector."""
    vectors = featurizer.ingredient_vectors
    n = len(corpus)
    ingredient_part = np.zeros((n, vectors.shape[1]))
    for row in range(n):
        length = corpus.ingredient_lengths[row]
        ids = corpus.ingredient_ids[row, :length]
        ingredient_part[row] = vectors[ids].mean(axis=0)
    sentence_part = np.zeros((n, corpus.sentence_vectors.shape[2]))
    for row in range(n):
        length = corpus.sentence_lengths[row]
        sentence_part[row] = corpus.sentence_vectors[row, :length].mean(axis=0)
    return np.concatenate([ingredient_part, sentence_part], axis=1)


def corpus_features(corpus: EncodedCorpus, featurizer: RecipeFeaturizer,
                    grid: int = 4) -> tuple[np.ndarray, np.ndarray]:
    """Aligned (image, recipe) fixed-feature matrices for a corpus."""
    return (image_features(corpus.images, grid=grid),
            recipe_features(corpus, featurizer))
