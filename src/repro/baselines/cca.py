"""Canonical Correlation Analysis (Hotelling, 1936) — global alignment
baseline.

Finds linear projections of two views maximizing the correlation of
matched pairs. Solved in whitened space: with
``K = Σxx^{-1/2} Σxy Σyy^{-1/2}``, the singular vectors of ``K`` give
the canonical directions and its singular values the canonical
correlations. Ridge regularization keeps the whitening stable for
high-dimensional / low-sample regimes.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

__all__ = ["CCA"]


class CCA:
    """Regularized linear CCA for cross-modal retrieval.

    Parameters
    ----------
    dim:
        Number of canonical components kept (the latent dimensionality).
    reg:
        Ridge added to both view covariances before whitening.
    """

    def __init__(self, dim: int = 32, reg: float = 1e-3):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if reg < 0:
            raise ValueError("reg must be non-negative")
        self.dim = dim
        self.reg = reg
        self.mean_x: np.ndarray | None = None
        self.mean_y: np.ndarray | None = None
        self.w_x: np.ndarray | None = None
        self.w_y: np.ndarray | None = None
        self.correlations: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "CCA":
        """Fit on aligned views ``x`` (n, dx) and ``y`` (n, dy)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape[0] != y.shape[0]:
            raise ValueError("views must have the same number of rows")
        n = x.shape[0]
        if n < 2:
            raise ValueError("need at least two pairs to fit CCA")
        self.mean_x = x.mean(axis=0)
        self.mean_y = y.mean(axis=0)
        xc = x - self.mean_x
        yc = y - self.mean_y

        cxx = xc.T @ xc / (n - 1) + self.reg * np.eye(x.shape[1])
        cyy = yc.T @ yc / (n - 1) + self.reg * np.eye(y.shape[1])
        cxy = xc.T @ yc / (n - 1)

        inv_sqrt_xx = self._inverse_sqrt(cxx)
        inv_sqrt_yy = self._inverse_sqrt(cyy)
        k = inv_sqrt_xx @ cxy @ inv_sqrt_yy
        u, singular_values, vt = np.linalg.svd(k, full_matrices=False)

        keep = min(self.dim, len(singular_values))
        self.w_x = inv_sqrt_xx @ u[:, :keep]
        self.w_y = inv_sqrt_yy @ vt[:keep].T
        self.correlations = singular_values[:keep]
        return self

    @staticmethod
    def _inverse_sqrt(matrix: np.ndarray) -> np.ndarray:
        values, vectors = linalg.eigh(matrix)
        values = np.maximum(values, 1e-12)
        return vectors @ np.diag(values ** -0.5) @ vectors.T

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self.w_x is None:
            raise RuntimeError("CCA is not fitted; call fit() first")

    def transform_x(self, x: np.ndarray) -> np.ndarray:
        """Project view-x samples into the canonical space."""
        self._require_fitted()
        return (np.asarray(x, dtype=np.float64) - self.mean_x) @ self.w_x

    def transform_y(self, y: np.ndarray) -> np.ndarray:
        """Project view-y samples into the canonical space."""
        self._require_fitted()
        return (np.asarray(y, dtype=np.float64) - self.mean_y) @ self.w_y

    def fit_transform(self, x: np.ndarray, y: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Fit and return both projected views."""
        self.fit(x, y)
        return self.transform_x(x), self.transform_y(y)
