"""Kernel CCA (Lai & Fyfe 2000; Bach & Jordan 2002) — nonlinear
global-alignment baseline.

The paper cites Kernel-CCA as a standard variation of the CCA baseline.
This implementation uses RBF kernels with ridge regularization in the
dual: solve the generalized eigenproblem on centred Gram matrices and
project new samples through the learned dual coefficients. Intended
for corpus sizes in the low thousands (the Gram matrices are n × n).
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

__all__ = ["KernelCCA"]


def _rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    a_norms = (a ** 2).sum(axis=1)[:, None]
    b_norms = (b ** 2).sum(axis=1)[None, :]
    squared = np.maximum(a_norms + b_norms - 2.0 * a @ b.T, 0.0)
    return np.exp(-gamma * squared)


class KernelCCA:
    """RBF-kernel CCA for cross-modal retrieval.

    Parameters
    ----------
    dim:
        Number of canonical components.
    reg:
        Ridge regularization of the dual problem.
    gamma_x, gamma_y:
        RBF widths; ``None`` uses the median heuristic (1 / median
        squared distance) per view.
    """

    def __init__(self, dim: int = 16, reg: float = 1e-2,
                 gamma_x: float | None = None,
                 gamma_y: float | None = None):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if reg <= 0:
            raise ValueError("kernel CCA requires positive regularization")
        self.dim = dim
        self.reg = reg
        self.gamma_x = gamma_x
        self.gamma_y = gamma_y
        self._train_x: np.ndarray | None = None
        self._train_y: np.ndarray | None = None
        self.alpha: np.ndarray | None = None   # dual coefficients, view x
        self.beta: np.ndarray | None = None    # dual coefficients, view y
        self.correlations: np.ndarray | None = None

    @staticmethod
    def _median_gamma(x: np.ndarray, rng_seed: int = 0) -> float:
        rng = np.random.default_rng(rng_seed)
        n = len(x)
        sample = x[rng.choice(n, size=min(n, 200), replace=False)]
        norms = (sample ** 2).sum(axis=1)
        squared = norms[:, None] + norms[None, :] - 2.0 * sample @ sample.T
        median = np.median(squared[squared > 0])
        return 1.0 / max(median, 1e-12)

    @staticmethod
    def _center(gram: np.ndarray) -> np.ndarray:
        n = gram.shape[0]
        ones = np.full((n, n), 1.0 / n)
        return gram - ones @ gram - gram @ ones + ones @ gram @ ones

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "KernelCCA":
        """Fit on aligned views; keeps the training samples for kernels."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape[0] != y.shape[0]:
            raise ValueError("views must have the same number of rows")
        n = x.shape[0]
        if n < 3:
            raise ValueError("need at least three pairs")
        self._train_x, self._train_y = x, y
        if self.gamma_x is None:
            self.gamma_x = self._median_gamma(x)
        if self.gamma_y is None:
            self.gamma_y = self._median_gamma(y, rng_seed=1)

        kx = self._center(_rbf_kernel(x, x, self.gamma_x))
        ky = self._center(_rbf_kernel(y, y, self.gamma_y))
        ridge = n * self.reg * np.eye(n)
        # Whitened dual operator: (Kx + r)^-1 Kx Ky (Ky + r)^-1, made
        # symmetric via the usual two-sided construction.
        inv_x = np.linalg.solve(kx + ridge, kx)
        inv_y = np.linalg.solve(ky + ridge, ky)
        operator = inv_x @ inv_y
        values, vectors = linalg.eig(operator)
        order = np.argsort(-values.real)[: self.dim]
        self.alpha = vectors[:, order].real
        self.correlations = np.sqrt(np.clip(values.real[order], 0.0, 1.0))
        # view-y coefficients follow from the x directions
        self.beta = np.linalg.solve(ky + ridge, ky @ self.alpha)
        return self

    def _require_fitted(self) -> None:
        if self.alpha is None:
            raise RuntimeError("KernelCCA is not fitted; call fit() first")

    def transform_x(self, x: np.ndarray) -> np.ndarray:
        """Project view-x samples through the dual coefficients."""
        self._require_fitted()
        kernel = _rbf_kernel(np.asarray(x, dtype=np.float64),
                             self._train_x, self.gamma_x)
        kernel -= kernel.mean(axis=1, keepdims=True)
        return kernel @ self.alpha

    def transform_y(self, y: np.ndarray) -> np.ndarray:
        """Project view-y samples through the dual coefficients."""
        self._require_fitted()
        kernel = _rbf_kernel(np.asarray(y, dtype=np.float64),
                             self._train_y, self.gamma_y)
        kernel -= kernel.mean(axis=1, keepdims=True)
        return kernel @ self.beta

    def fit_transform(self, x: np.ndarray, y: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Fit and project both training views."""
        self.fit(x, y)
        return self.transform_x(x), self.transform_y(y)
