"""State-of-the-art baselines: CCA, random chance, PWC scenarios.

The PWC / PWC++ neural baselines share the AdaMine architecture and
live in :mod:`repro.core.scenarios` (names ``"pwc_star"``/``"pwc_pp"``).
"""

from .cca import CCA
from .kcca import KernelCCA
from .random_baseline import RandomEmbedder
from .features import corpus_features, image_features, recipe_features

__all__ = ["CCA", "KernelCCA", "RandomEmbedder",
           "image_features", "recipe_features", "corpus_features"]
