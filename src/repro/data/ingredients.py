"""Ingredient lexicon with visual attributes.

Each ingredient carries an RGB colour and a texture coefficient used by
the procedural dish renderer, so images genuinely encode which
ingredients a recipe contains — the property the paper's
ingredient-to-image and ingredient-removal experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Ingredient", "IngredientLexicon", "BASE_INGREDIENTS"]


@dataclass(frozen=True)
class Ingredient:
    """One ingredient and its rendering attributes."""

    name: str
    color: tuple[float, float, float]  # RGB in [0, 1]
    texture: float                     # blob noise amplitude in [0, 1]
    group: str                         # coarse food group


# name, (r, g, b), texture, group — colours picked to be food-plausible
# and mutually distinguishable at small render resolutions.
BASE_INGREDIENTS: list[Ingredient] = [Ingredient(n, c, t, g) for n, c, t, g in [
    # vegetables
    ("tomato", (0.86, 0.18, 0.12), 0.15, "vegetable"),
    ("broccoli", (0.13, 0.47, 0.13), 0.45, "vegetable"),
    ("spinach", (0.10, 0.40, 0.12), 0.35, "vegetable"),
    ("carrot", (0.95, 0.52, 0.10), 0.25, "vegetable"),
    ("onion", (0.93, 0.88, 0.76), 0.20, "vegetable"),
    ("garlic", (0.96, 0.94, 0.85), 0.15, "vegetable"),
    ("bell pepper", (0.90, 0.25, 0.15), 0.20, "vegetable"),
    ("green beans", (0.25, 0.60, 0.22), 0.40, "vegetable"),
    ("cucumber", (0.55, 0.78, 0.35), 0.20, "vegetable"),
    ("zucchini", (0.45, 0.65, 0.25), 0.25, "vegetable"),
    ("mushrooms", (0.72, 0.62, 0.50), 0.35, "vegetable"),
    ("corn", (0.98, 0.85, 0.25), 0.45, "vegetable"),
    ("peas", (0.35, 0.68, 0.28), 0.45, "vegetable"),
    ("potatoes", (0.90, 0.82, 0.58), 0.25, "vegetable"),
    ("arugula", (0.22, 0.52, 0.20), 0.40, "vegetable"),
    ("lettuce", (0.48, 0.75, 0.32), 0.30, "vegetable"),
    ("olives", (0.20, 0.22, 0.12), 0.25, "vegetable"),
    ("avocado", (0.55, 0.68, 0.30), 0.20, "vegetable"),
    ("eggplant", (0.35, 0.15, 0.40), 0.20, "vegetable"),
    ("cauliflower", (0.95, 0.93, 0.86), 0.35, "vegetable"),
    ("celery", (0.62, 0.80, 0.45), 0.30, "vegetable"),
    ("cabbage", (0.70, 0.85, 0.55), 0.30, "vegetable"),
    ("pumpkin", (0.95, 0.58, 0.15), 0.20, "vegetable"),
    ("beets", (0.55, 0.10, 0.25), 0.20, "vegetable"),
    ("asparagus", (0.35, 0.58, 0.25), 0.35, "vegetable"),
    # fruits
    ("strawberries", (0.90, 0.15, 0.25), 0.30, "fruit"),
    ("pineapple", (0.98, 0.82, 0.30), 0.35, "fruit"),
    ("lemons", (0.98, 0.92, 0.35), 0.20, "fruit"),
    ("limes", (0.60, 0.82, 0.30), 0.20, "fruit"),
    ("apples", (0.85, 0.30, 0.25), 0.15, "fruit"),
    ("bananas", (0.96, 0.88, 0.55), 0.15, "fruit"),
    ("blueberries", (0.25, 0.30, 0.60), 0.35, "fruit"),
    ("raspberries", (0.80, 0.18, 0.35), 0.35, "fruit"),
    ("mango", (0.98, 0.68, 0.22), 0.20, "fruit"),
    ("peaches", (0.97, 0.72, 0.48), 0.20, "fruit"),
    ("oranges", (0.96, 0.60, 0.15), 0.20, "fruit"),
    ("cherries", (0.70, 0.10, 0.20), 0.25, "fruit"),
    ("raisins", (0.35, 0.22, 0.18), 0.35, "fruit"),
    ("coconut", (0.97, 0.96, 0.92), 0.40, "fruit"),
    # proteins
    ("chicken", (0.93, 0.80, 0.58), 0.25, "protein"),
    ("beef", (0.48, 0.26, 0.18), 0.30, "protein"),
    ("ground beef", (0.50, 0.30, 0.20), 0.40, "protein"),
    ("pork", (0.85, 0.60, 0.50), 0.25, "protein"),
    ("pork chops", (0.80, 0.55, 0.45), 0.25, "protein"),
    ("bacon", (0.70, 0.32, 0.25), 0.35, "protein"),
    ("ham", (0.90, 0.55, 0.52), 0.20, "protein"),
    ("salmon", (0.95, 0.55, 0.42), 0.25, "protein"),
    ("tuna", (0.80, 0.62, 0.58), 0.25, "protein"),
    ("shrimp", (0.95, 0.62, 0.50), 0.30, "protein"),
    ("eggs", (0.97, 0.88, 0.55), 0.15, "protein"),
    ("tofu", (0.95, 0.93, 0.85), 0.15, "protein"),
    ("sausage", (0.62, 0.32, 0.22), 0.30, "protein"),
    ("pepperoni", (0.75, 0.20, 0.15), 0.30, "protein"),
    ("turkey", (0.88, 0.72, 0.55), 0.25, "protein"),
    ("lamb", (0.55, 0.30, 0.22), 0.28, "protein"),
    ("chickpeas", (0.90, 0.80, 0.55), 0.40, "protein"),
    ("black beans", (0.15, 0.12, 0.12), 0.40, "protein"),
    ("lentils", (0.65, 0.45, 0.25), 0.45, "protein"),
    # dairy
    ("butter", (0.98, 0.90, 0.55), 0.10, "dairy"),
    ("milk", (0.98, 0.97, 0.94), 0.05, "dairy"),
    ("cream", (0.98, 0.96, 0.90), 0.08, "dairy"),
    ("yogurt", (0.97, 0.96, 0.92), 0.08, "dairy"),
    ("cheddar cheese", (0.96, 0.70, 0.25), 0.15, "dairy"),
    ("mozzarella", (0.97, 0.95, 0.88), 0.15, "dairy"),
    ("parmesan", (0.94, 0.88, 0.70), 0.30, "dairy"),
    ("feta cheese", (0.97, 0.96, 0.90), 0.30, "dairy"),
    ("cream cheese", (0.97, 0.95, 0.90), 0.08, "dairy"),
    ("sour cream", (0.97, 0.96, 0.92), 0.08, "dairy"),
    ("condensed milk", (0.96, 0.92, 0.80), 0.05, "dairy"),
    # grains & starches
    ("flour", (0.96, 0.94, 0.88), 0.15, "grain"),
    ("bread", (0.88, 0.72, 0.48), 0.25, "grain"),
    ("pizza dough", (0.92, 0.85, 0.68), 0.15, "grain"),
    ("pasta", (0.95, 0.85, 0.60), 0.25, "grain"),
    ("spaghetti", (0.94, 0.84, 0.58), 0.30, "grain"),
    ("rice", (0.96, 0.95, 0.90), 0.30, "grain"),
    ("noodles", (0.93, 0.84, 0.60), 0.30, "grain"),
    ("oats", (0.90, 0.82, 0.65), 0.35, "grain"),
    ("tortillas", (0.94, 0.88, 0.72), 0.15, "grain"),
    ("breadcrumbs", (0.88, 0.75, 0.52), 0.40, "grain"),
    ("quinoa", (0.90, 0.85, 0.70), 0.45, "grain"),
    ("hamburger buns", (0.92, 0.75, 0.45), 0.15, "grain"),
    # sweets & baking
    ("sugar", (0.99, 0.99, 0.98), 0.15, "sweet"),
    ("brown sugar", (0.75, 0.55, 0.35), 0.20, "sweet"),
    ("honey", (0.95, 0.72, 0.25), 0.08, "sweet"),
    ("chocolate chips", (0.28, 0.18, 0.12), 0.40, "sweet"),
    ("cocoa powder", (0.35, 0.22, 0.15), 0.25, "sweet"),
    ("vanilla extract", (0.60, 0.45, 0.30), 0.05, "sweet"),
    ("maple syrup", (0.72, 0.45, 0.20), 0.05, "sweet"),
    ("butterscotch chips", (0.85, 0.60, 0.30), 0.40, "sweet"),
    ("frosting", (0.97, 0.90, 0.94), 0.10, "sweet"),
    ("sprinkles", (0.90, 0.50, 0.70), 0.55, "sweet"),
    ("pecans", (0.58, 0.38, 0.22), 0.40, "sweet"),
    ("walnuts", (0.62, 0.45, 0.30), 0.40, "sweet"),
    ("almonds", (0.80, 0.62, 0.45), 0.35, "sweet"),
    ("peanut butter", (0.78, 0.58, 0.32), 0.10, "sweet"),
    # condiments & seasoning
    ("olive oil", (0.80, 0.78, 0.35), 0.05, "condiment"),
    ("soy sauce", (0.25, 0.15, 0.10), 0.05, "condiment"),
    ("ketchup", (0.78, 0.12, 0.08), 0.08, "condiment"),
    ("mustard", (0.90, 0.75, 0.20), 0.08, "condiment"),
    ("mayonnaise", (0.97, 0.95, 0.88), 0.05, "condiment"),
    ("balsamic vinegar", (0.28, 0.15, 0.12), 0.05, "condiment"),
    ("hummus", (0.88, 0.80, 0.62), 0.12, "condiment"),
    ("salsa", (0.80, 0.25, 0.15), 0.25, "condiment"),
    ("tomato sauce", (0.78, 0.18, 0.10), 0.12, "condiment"),
    ("pesto", (0.35, 0.52, 0.22), 0.20, "condiment"),
    ("salt", (0.99, 0.99, 0.99), 0.10, "spice"),
    ("black pepper", (0.20, 0.18, 0.16), 0.30, "spice"),
    ("basil", (0.25, 0.50, 0.22), 0.30, "spice"),
    ("oregano", (0.38, 0.48, 0.25), 0.30, "spice"),
    ("thyme", (0.40, 0.50, 0.32), 0.30, "spice"),
    ("parsley", (0.30, 0.55, 0.25), 0.30, "spice"),
    ("cilantro", (0.28, 0.58, 0.25), 0.30, "spice"),
    ("fresh mint", (0.30, 0.62, 0.35), 0.30, "spice"),
    ("cinnamon", (0.65, 0.40, 0.20), 0.20, "spice"),
    ("paprika", (0.80, 0.30, 0.12), 0.20, "spice"),
    ("cumin", (0.60, 0.45, 0.22), 0.20, "spice"),
    ("curry powder", (0.85, 0.65, 0.15), 0.20, "spice"),
    ("ginger", (0.88, 0.75, 0.45), 0.15, "spice"),
    ("chili powder", (0.70, 0.20, 0.10), 0.20, "spice"),
    ("rosemary", (0.35, 0.45, 0.30), 0.35, "spice"),
    ("dill", (0.40, 0.58, 0.30), 0.35, "spice"),
    ("nutmeg", (0.55, 0.40, 0.25), 0.15, "spice"),
    ("turmeric", (0.90, 0.70, 0.10), 0.15, "spice"),
    ("saffron", (0.95, 0.65, 0.10), 0.20, "spice"),
    ("bay leaves", (0.40, 0.45, 0.28), 0.25, "spice"),
    ("cayenne", (0.75, 0.18, 0.08), 0.20, "spice"),
    ("garlic powder", (0.92, 0.88, 0.75), 0.12, "spice"),
    ("vanilla bean", (0.30, 0.22, 0.15), 0.10, "sweet"),
    ("dark chocolate", (0.22, 0.14, 0.10), 0.20, "sweet"),
    ("white chocolate", (0.95, 0.92, 0.82), 0.15, "sweet"),
    ("caramel", (0.78, 0.50, 0.22), 0.08, "sweet"),
    ("marshmallows", (0.98, 0.97, 0.95), 0.20, "sweet"),
    ("powdered sugar", (0.99, 0.99, 0.97), 0.10, "sweet"),
    ("molasses", (0.30, 0.18, 0.10), 0.05, "sweet"),
    ("hazelnuts", (0.62, 0.42, 0.25), 0.40, "sweet"),
    ("pistachios", (0.65, 0.72, 0.42), 0.40, "sweet"),
    ("cashews", (0.88, 0.78, 0.58), 0.35, "sweet"),
    ("kale", (0.15, 0.38, 0.18), 0.40, "vegetable"),
    ("leeks", (0.75, 0.85, 0.58), 0.25, "vegetable"),
    ("shallots", (0.85, 0.70, 0.62), 0.20, "vegetable"),
    ("radishes", (0.90, 0.30, 0.40), 0.25, "vegetable"),
    ("turnips", (0.92, 0.88, 0.82), 0.22, "vegetable"),
    ("parsnips", (0.93, 0.88, 0.72), 0.22, "vegetable"),
    ("sweet potatoes", (0.90, 0.50, 0.20), 0.22, "vegetable"),
    ("brussels sprouts", (0.35, 0.58, 0.28), 0.38, "vegetable"),
    ("artichokes", (0.50, 0.60, 0.38), 0.30, "vegetable"),
    ("okra", (0.42, 0.62, 0.30), 0.35, "vegetable"),
    ("snow peas", (0.50, 0.72, 0.35), 0.30, "vegetable"),
    ("bok choy", (0.60, 0.78, 0.48), 0.28, "vegetable"),
    ("watercress", (0.25, 0.52, 0.25), 0.38, "vegetable"),
    ("fennel", (0.85, 0.90, 0.75), 0.25, "vegetable"),
    ("scallions", (0.55, 0.75, 0.40), 0.30, "vegetable"),
    ("jalapenos", (0.30, 0.55, 0.20), 0.22, "vegetable"),
    ("grapes", (0.45, 0.60, 0.30), 0.25, "fruit"),
    ("pears", (0.85, 0.85, 0.55), 0.18, "fruit"),
    ("plums", (0.45, 0.20, 0.35), 0.18, "fruit"),
    ("kiwi", (0.50, 0.70, 0.30), 0.28, "fruit"),
    ("cranberries", (0.68, 0.12, 0.18), 0.32, "fruit"),
    ("apricots", (0.95, 0.68, 0.35), 0.20, "fruit"),
    ("figs", (0.48, 0.28, 0.32), 0.25, "fruit"),
    ("dates", (0.40, 0.25, 0.15), 0.28, "fruit"),
    ("pomegranate", (0.72, 0.12, 0.22), 0.35, "fruit"),
    ("watermelon", (0.92, 0.35, 0.40), 0.18, "fruit"),
    ("cantaloupe", (0.95, 0.70, 0.42), 0.18, "fruit"),
    ("duck", (0.62, 0.38, 0.25), 0.28, "protein"),
    ("crab", (0.92, 0.58, 0.45), 0.28, "protein"),
    ("lobster", (0.88, 0.35, 0.25), 0.25, "protein"),
    ("scallops", (0.95, 0.90, 0.82), 0.20, "protein"),
    ("mussels", (0.25, 0.20, 0.25), 0.30, "protein"),
    ("anchovies", (0.60, 0.55, 0.48), 0.28, "protein"),
    ("cod", (0.95, 0.92, 0.85), 0.20, "protein"),
    ("tilapia", (0.93, 0.90, 0.82), 0.20, "protein"),
    ("ground turkey", (0.85, 0.70, 0.55), 0.38, "protein"),
    ("chorizo", (0.65, 0.22, 0.15), 0.32, "protein"),
    ("prosciutto", (0.82, 0.45, 0.42), 0.22, "protein"),
    ("kidney beans", (0.55, 0.15, 0.15), 0.40, "protein"),
    ("pinto beans", (0.72, 0.52, 0.38), 0.40, "protein"),
    ("edamame", (0.48, 0.68, 0.32), 0.38, "protein"),
    ("tempeh", (0.85, 0.75, 0.55), 0.30, "protein"),
    ("goat cheese", (0.96, 0.95, 0.90), 0.22, "dairy"),
    ("ricotta", (0.97, 0.96, 0.91), 0.15, "dairy"),
    ("brie", (0.95, 0.92, 0.82), 0.12, "dairy"),
    ("gouda", (0.93, 0.75, 0.40), 0.15, "dairy"),
    ("blue cheese", (0.90, 0.90, 0.85), 0.30, "dairy"),
    ("swiss cheese", (0.95, 0.90, 0.72), 0.15, "dairy"),
    ("provolone", (0.95, 0.92, 0.80), 0.12, "dairy"),
    ("buttermilk", (0.97, 0.96, 0.90), 0.05, "dairy"),
    ("heavy cream", (0.98, 0.97, 0.93), 0.05, "dairy"),
    ("whipped cream", (0.99, 0.98, 0.96), 0.10, "dairy"),
    ("barley", (0.85, 0.75, 0.55), 0.40, "grain"),
    ("couscous", (0.92, 0.86, 0.68), 0.42, "grain"),
    ("polenta", (0.95, 0.82, 0.45), 0.30, "grain"),
    ("cornmeal", (0.95, 0.85, 0.50), 0.35, "grain"),
    ("croutons", (0.85, 0.68, 0.42), 0.42, "grain"),
    ("pita bread", (0.93, 0.86, 0.70), 0.15, "grain"),
    ("baguette", (0.90, 0.75, 0.50), 0.22, "grain"),
    ("lasagna noodles", (0.94, 0.85, 0.62), 0.20, "grain"),
    ("macaroni", (0.95, 0.86, 0.60), 0.30, "grain"),
    ("ramen noodles", (0.92, 0.82, 0.55), 0.32, "grain"),
    ("wild rice", (0.38, 0.28, 0.20), 0.40, "grain"),
    ("brown rice", (0.78, 0.62, 0.45), 0.35, "grain"),
    ("granola", (0.78, 0.60, 0.38), 0.45, "grain"),
    ("sesame oil", (0.72, 0.55, 0.25), 0.05, "condiment"),
    ("fish sauce", (0.60, 0.42, 0.22), 0.05, "condiment"),
    ("hoisin sauce", (0.38, 0.22, 0.15), 0.06, "condiment"),
    ("sriracha", (0.82, 0.20, 0.10), 0.08, "condiment"),
    ("worcestershire sauce", (0.30, 0.20, 0.12), 0.05, "condiment"),
    ("tahini", (0.85, 0.78, 0.62), 0.10, "condiment"),
    ("guacamole", (0.55, 0.68, 0.32), 0.18, "condiment"),
    ("ranch dressing", (0.96, 0.95, 0.90), 0.08, "condiment"),
    ("barbecue sauce", (0.45, 0.18, 0.10), 0.08, "condiment"),
    ("teriyaki sauce", (0.35, 0.22, 0.12), 0.06, "condiment"),
    ("dijon mustard", (0.85, 0.72, 0.30), 0.08, "condiment"),
    ("horseradish", (0.94, 0.93, 0.86), 0.15, "condiment"),
    ("capers", (0.40, 0.48, 0.28), 0.30, "condiment"),
    ("red wine vinegar", (0.55, 0.18, 0.20), 0.05, "condiment"),
    ("apple cider vinegar", (0.85, 0.70, 0.42), 0.05, "condiment"),
    ("coconut milk", (0.97, 0.96, 0.93), 0.06, "condiment"),
    ("vegetable broth", (0.82, 0.72, 0.48), 0.05, "condiment"),
    ("chicken broth", (0.88, 0.75, 0.48), 0.05, "condiment"),
]]


class IngredientLexicon:
    """Indexed ingredient collection with name lookup and sampling."""

    def __init__(self, ingredients: list[Ingredient] | None = None):
        self.ingredients = list(ingredients if ingredients is not None
                                else BASE_INGREDIENTS)
        self._by_name = {ing.name: ing for ing in self.ingredients}
        if len(self._by_name) != len(self.ingredients):
            raise ValueError("duplicate ingredient names in lexicon")

    def __len__(self) -> int:
        return len(self.ingredients)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Ingredient:
        return self._by_name[name]

    @property
    def names(self) -> list[str]:
        return [ing.name for ing in self.ingredients]

    def by_group(self, group: str) -> list[Ingredient]:
        """All ingredients of one food group."""
        return [ing for ing in self.ingredients if ing.group == group]

    def sample(self, rng: np.random.Generator, k: int,
               exclude: set[str] | None = None) -> list[Ingredient]:
        """Draw ``k`` distinct ingredients uniformly, minus ``exclude``."""
        exclude = exclude or set()
        pool = [ing for ing in self.ingredients if ing.name not in exclude]
        if k > len(pool):
            raise ValueError(f"cannot sample {k} from pool of {len(pool)}")
        picks = rng.choice(len(pool), size=k, replace=False)
        return [pool[i] for i in picks]
