"""Recipe class taxonomy.

Recipe1M parses 1048 semantic classes from recipe titles; half the
dataset pairs carry such a label. This module provides a curated set of
real dish classes (including every class the paper's figures mention:
cupcake, hamburger, green beans, pork chops, pizza) and can extend the
taxonomy procedurally to any requested size, each class carrying:

* a signature set of core ingredients (always present),
* an extras pool (sometimes present),
* rendering attributes (background colour, plating layout),
* a sampling weight (head classes are far more frequent, like Recipe1M).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ingredients import IngredientLexicon

__all__ = ["RecipeClass", "ClassTaxonomy", "LAYOUTS"]

LAYOUTS = ("disc", "grid", "stack", "bowl")

# Coarse super-classes ("hierarchical levels within object semantics",
# the paper's stated future-work extension, implemented in
# repro.core.hierarchical).
GROUPS = ("main", "side", "dessert", "breakfast", "drink")

_CURATED_GROUPS = {
    "pizza": "main", "cupcake": "dessert", "hamburger": "main",
    "green beans": "side", "pork chops": "main", "salad": "side",
    "soup": "main", "pasta": "main", "brownies": "dessert",
    "cookies": "dessert", "tacos": "main", "sushi": "main",
    "pancakes": "breakfast", "smoothie": "drink", "curry": "main",
    "roasted chicken": "main", "burrito": "main", "omelette": "breakfast",
    "risotto": "main", "cheesecake": "dessert", "muffins": "breakfast",
    "waffles": "breakfast", "chili": "main", "steak": "main",
    "fried rice": "main", "quiche": "breakfast", "apple pie": "dessert",
    "coleslaw": "side", "mashed potatoes": "side", "stir fry": "main",
}

# name, core ingredients, extras, layout, background RGB
_CURATED = [
    ("pizza", ["pizza dough", "tomato sauce", "mozzarella"],
     ["pepperoni", "mushrooms", "olives", "basil", "pineapple", "bell pepper",
      "onion", "oregano", "arugula", "feta cheese", "strawberries"],
     "disc", (0.55, 0.35, 0.22)),
    ("cupcake", ["flour", "sugar", "butter", "eggs"],
     ["vanilla extract", "frosting", "sprinkles", "chocolate chips",
      "blueberries", "cinnamon", "cocoa powder"],
     "stack", (0.85, 0.75, 0.80)),
    ("hamburger", ["hamburger buns", "ground beef", "lettuce"],
     ["cheddar cheese", "tomato", "onion", "bacon", "ketchup", "mustard",
      "mayonnaise"],
     "stack", (0.60, 0.45, 0.30)),
    ("green beans", ["green beans", "butter", "salt"],
     ["garlic", "almonds", "bacon", "lemons", "olive oil", "black pepper"],
     "bowl", (0.30, 0.45, 0.28)),
    ("pork chops", ["pork chops", "salt", "black pepper"],
     ["garlic", "thyme", "butter", "apples", "onion", "brown sugar",
      "balsamic vinegar"],
     "disc", (0.48, 0.32, 0.24)),
    ("salad", ["lettuce", "olive oil", "tomato"],
     ["cucumber", "feta cheese", "olives", "onion", "avocado", "arugula",
      "balsamic vinegar", "parmesan"],
     "bowl", (0.42, 0.55, 0.32)),
    ("soup", ["onion", "garlic", "celery"],
     ["carrot", "potatoes", "chicken", "cream", "thyme", "lentils",
      "black pepper", "parsley", "broccoli"],
     "bowl", (0.72, 0.58, 0.35)),
    ("pasta", ["pasta", "olive oil", "garlic"],
     ["tomato sauce", "parmesan", "basil", "mushrooms", "cream", "spinach",
      "ground beef", "pesto"],
     "bowl", (0.70, 0.55, 0.30)),
    ("brownies", ["flour", "sugar", "cocoa powder", "eggs"],
     ["chocolate chips", "walnuts", "butter", "vanilla extract",
      "pecans", "butterscotch chips"],
     "grid", (0.35, 0.22, 0.16)),
    ("cookies", ["flour", "sugar", "butter", "eggs"],
     ["chocolate chips", "oats", "raisins", "peanut butter", "pecans",
      "vanilla extract", "condensed milk", "butterscotch chips"],
     "grid", (0.68, 0.52, 0.35)),
    ("tacos", ["tortillas", "ground beef", "onion"],
     ["salsa", "cheddar cheese", "lettuce", "cilantro", "black beans",
      "sour cream", "limes", "chili powder"],
     "stack", (0.75, 0.55, 0.28)),
    ("sushi", ["rice", "salmon", "soy sauce"],
     ["tuna", "avocado", "cucumber", "shrimp", "ginger"],
     "grid", (0.30, 0.35, 0.40)),
    ("pancakes", ["flour", "milk", "eggs", "sugar"],
     ["maple syrup", "butter", "blueberries", "bananas", "cinnamon"],
     "stack", (0.80, 0.65, 0.42)),
    ("smoothie", ["milk", "bananas", "honey"],
     ["strawberries", "blueberries", "mango", "yogurt", "peaches",
      "raspberries"],
     "bowl", (0.78, 0.62, 0.70)),
    ("curry", ["curry powder", "onion", "garlic"],
     ["chicken", "rice", "chickpeas", "ginger", "cream", "cilantro",
      "tofu", "cumin", "broccoli", "bell pepper", "zucchini"],
     "bowl", (0.80, 0.60, 0.25)),
    ("roasted chicken", ["chicken", "olive oil", "garlic"],
     ["lemons", "thyme", "potatoes", "parsley", "butter", "paprika",
      "balsamic vinegar", "mustard"],
     "disc", (0.55, 0.40, 0.25)),
    ("burrito", ["tortillas", "rice", "black beans"],
     ["ground beef", "cheddar cheese", "salsa", "sour cream", "avocado",
      "cilantro", "jalapenos", "guacamole"],
     "stack", (0.70, 0.52, 0.30)),
    ("omelette", ["eggs", "butter", "salt"],
     ["cheddar cheese", "mushrooms", "spinach", "ham", "onion",
      "bell pepper", "scallions", "parsley"],
     "disc", (0.85, 0.72, 0.45)),
    ("risotto", ["rice", "butter", "parmesan"],
     ["mushrooms", "onion", "peas", "chicken broth", "garlic",
      "asparagus", "saffron"],
     "bowl", (0.78, 0.70, 0.50)),
    ("cheesecake", ["cream cheese", "sugar", "eggs"],
     ["vanilla extract", "strawberries", "blueberries", "caramel",
      "raspberries", "dark chocolate", "cherries"],
     "disc", (0.80, 0.70, 0.60)),
    ("muffins", ["flour", "sugar", "eggs", "milk"],
     ["blueberries", "bananas", "chocolate chips", "oats", "cinnamon",
      "walnuts", "cranberries", "pumpkin"],
     "grid", (0.72, 0.58, 0.42)),
    ("waffles", ["flour", "eggs", "milk", "butter"],
     ["maple syrup", "strawberries", "whipped cream", "blueberries",
      "powdered sugar", "bananas"],
     "grid", (0.82, 0.66, 0.40)),
    ("chili", ["ground beef", "kidney beans", "tomato sauce"],
     ["onion", "chili powder", "cumin", "bell pepper", "garlic",
      "jalapenos", "cheddar cheese", "sour cream"],
     "bowl", (0.55, 0.25, 0.18)),
    ("steak", ["beef", "salt", "black pepper"],
     ["butter", "garlic", "rosemary", "thyme", "mushrooms", "onion",
      "potatoes"],
     "disc", (0.42, 0.28, 0.22)),
    ("fried rice", ["rice", "eggs", "soy sauce"],
     ["peas", "carrot", "scallions", "garlic", "ginger", "shrimp",
      "sesame oil", "ham"],
     "bowl", (0.68, 0.58, 0.35)),
    ("quiche", ["eggs", "cream", "flour"],
     ["bacon", "spinach", "swiss cheese", "onion", "mushrooms",
      "leeks", "goat cheese"],
     "disc", (0.80, 0.68, 0.48)),
    ("apple pie", ["apples", "flour", "sugar", "butter"],
     ["cinnamon", "nutmeg", "lemons", "vanilla extract", "caramel"],
     "disc", (0.75, 0.55, 0.32)),
    ("coleslaw", ["cabbage", "mayonnaise", "carrot"],
     ["apple cider vinegar", "onion", "celery", "dijon mustard",
      "raisins", "sugar"],
     "bowl", (0.62, 0.72, 0.52)),
    ("mashed potatoes", ["potatoes", "butter", "milk"],
     ["garlic", "sour cream", "parsley", "black pepper", "scallions",
      "parmesan"],
     "bowl", (0.82, 0.78, 0.62)),
    ("stir fry", ["soy sauce", "garlic", "ginger"],
     ["broccoli", "bell pepper", "carrot", "snow peas", "chicken",
      "tofu", "sesame oil", "bok choy", "scallions"],
     "bowl", (0.48, 0.38, 0.28)),
]


@dataclass(frozen=True)
class RecipeClass:
    """One semantic recipe class (e.g. *pizza*)."""

    class_id: int
    name: str
    core: tuple[str, ...]
    extras: tuple[str, ...]
    layout: str
    background: tuple[float, float, float]
    weight: float = 1.0      # relative sampling frequency
    group: str = "main"      # coarse super-class (see GROUPS)


class ClassTaxonomy:
    """A fixed-size taxonomy of recipe classes.

    Parameters
    ----------
    num_classes:
        Total number of classes. The first ``min(num_classes, 16)`` are
        curated real dishes; the remainder are procedurally generated
        with random ingredient signatures.
    lexicon:
        Ingredient lexicon used both to validate curated signatures and
        to sample procedural ones.
    seed:
        RNG seed for procedural generation and class weights.
    """

    def __init__(self, num_classes: int, lexicon: IngredientLexicon,
                 seed: int = 0):
        if num_classes < 1:
            raise ValueError("need at least one class")
        self.lexicon = lexicon
        rng = np.random.default_rng(seed)
        classes: list[RecipeClass] = []
        for i, (name, core, extras, layout, bg) in enumerate(
                _CURATED[:num_classes]):
            self._validate(core + extras)
            classes.append(RecipeClass(i, name, tuple(core), tuple(extras),
                                       layout, bg,
                                       group=_CURATED_GROUPS[name]))
        for i in range(len(classes), num_classes):
            classes.append(self._procedural(i, rng))
        # Zipf-like head-heavy sampling weights, as in Recipe1M.
        ranks = np.arange(1, num_classes + 1, dtype=np.float64)
        weights = 1.0 / ranks ** 0.7
        weights /= weights.sum()
        self.classes = [
            RecipeClass(c.class_id, c.name, c.core, c.extras, c.layout,
                        c.background, float(w), c.group)
            for c, w in zip(classes, weights)
        ]
        self._by_name = {c.name: c for c in self.classes}

    def _validate(self, names: list[str]) -> None:
        unknown = [n for n in names if n not in self.lexicon]
        if unknown:
            raise ValueError(f"unknown ingredients in taxonomy: {unknown}")

    def _procedural(self, class_id: int,
                    rng: np.random.Generator) -> RecipeClass:
        core = self.lexicon.sample(rng, 3)
        extras = self.lexicon.sample(rng, 8, exclude={i.name for i in core})
        layout = LAYOUTS[rng.integers(len(LAYOUTS))]
        background = tuple(rng.uniform(0.2, 0.8, size=3).round(3))
        group = GROUPS[rng.integers(len(GROUPS))]
        return RecipeClass(class_id, f"dish-{class_id}",
                           tuple(i.name for i in core),
                           tuple(i.name for i in extras),
                           layout, background, group=group)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.classes)

    def __getitem__(self, key) -> RecipeClass:
        if isinstance(key, str):
            return self._by_name[key]
        return self.classes[key]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def weights(self) -> np.ndarray:
        return np.array([c.weight for c in self.classes])

    @property
    def group_names(self) -> list[str]:
        """Distinct super-class names, in first-appearance order."""
        seen: list[str] = []
        for cls in self.classes:
            if cls.group not in seen:
                seen.append(cls.group)
        return seen

    def class_to_group_ids(self) -> np.ndarray:
        """Map ``class_id`` → integer group id (for hierarchical losses)."""
        order = {name: i for i, name in enumerate(self.group_names)}
        return np.array([order[c.group] for c in self.classes],
                        dtype=np.int64)

    def sample_class(self, rng: np.random.Generator) -> RecipeClass:
        """Draw a class following the head-heavy frequency distribution."""
        index = rng.choice(len(self.classes), p=self.weights)
        return self.classes[index]
