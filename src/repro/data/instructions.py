"""Grammar-based generation of cooking instructions.

Instructions are produced from templates referencing the recipe's
actual ingredients, so the instruction text carries real signal about
the dish content (the property behind the AdaMine_instr ablation and
the ingredient-removal experiment, where instruction sentences naming
an ingredient are deleted together with it).
"""

from __future__ import annotations

import numpy as np

__all__ = ["InstructionGrammar"]

_PREP_TEMPLATES = [
    "Preheat the oven to {temp} degrees.",
    "Chop the {ing} into small pieces.",
    "Dice the {ing} finely.",
    "Rinse the {ing} under cold water.",
    "Slice the {ing} thinly.",
    "Mince the {ing}.",
    "Peel and cut the {ing}.",
]

_COMBINE_TEMPLATES = [
    "Mix the {ing} and {ing2} in a large bowl.",
    "Combine the {ing} with the {ing2}.",
    "Whisk together the {ing} and {ing2} until smooth.",
    "Stir the {ing} into the {ing2}.",
    "Toss the {ing} with the {ing2}.",
    "Fold the {ing} gently into the {ing2}.",
]

_COOK_TEMPLATES = [
    "Saute the {ing} in a hot pan for {mins} minutes.",
    "Bake for {mins} minutes until golden.",
    "Simmer the {ing} over low heat for {mins} minutes.",
    "Grill the {ing} for {mins} minutes per side.",
    "Roast the {ing} for {mins} minutes.",
    "Cook the {ing} until tender.",
    "Fry the {ing} until crisp.",
    "Boil the {ing} for {mins} minutes.",
]

_FINISH_TEMPLATES = [
    "Season to taste with salt and pepper.",
    "Garnish with {ing} and serve.",
    "Let rest for {mins} minutes before serving.",
    "Serve warm with the {ing} on top.",
    "Sprinkle the {ing} over the dish.",
    "Drizzle with {ing} before serving.",
    "Enjoy!",
]


class InstructionGrammar:
    """Sample instruction sentences for a set of ingredient names."""

    def __init__(self, min_sentences: int = 3, max_sentences: int = 7):
        if min_sentences < 2:
            raise ValueError("recipes need at least 2 instruction sentences")
        if max_sentences < min_sentences:
            raise ValueError("max_sentences < min_sentences")
        self.min_sentences = min_sentences
        self.max_sentences = max_sentences

    def generate(self, ingredient_names: list[str],
                 rng: np.random.Generator) -> list[str]:
        """Produce a plausible ordered instruction list.

        Every recipe gets a prep → combine → cook → finish arc; each
        sentence that takes an ingredient slot draws from the recipe's
        own ingredient list, so most ingredients are mentioned at least
        once in the instructions.
        """
        if not ingredient_names:
            raise ValueError("cannot generate instructions without ingredients")
        total = int(rng.integers(self.min_sentences, self.max_sentences + 1))
        # Fixed arc proportions, at least one cook step.
        n_prep = max(1, total // 3)
        n_cook = max(1, total // 3)
        n_combine = max(0, total - n_prep - n_cook - 1)
        sentences = []
        mention_order = list(rng.permutation(ingredient_names))

        def next_ing() -> str:
            if mention_order:
                return mention_order.pop()
            return str(rng.choice(ingredient_names))

        for __ in range(n_prep):
            sentences.append(self._fill(_PREP_TEMPLATES, rng, next_ing))
        for __ in range(n_combine):
            sentences.append(self._fill(_COMBINE_TEMPLATES, rng, next_ing))
        for __ in range(n_cook):
            sentences.append(self._fill(_COOK_TEMPLATES, rng, next_ing))
        sentences.append(self._fill(_FINISH_TEMPLATES, rng, next_ing))
        return sentences

    @staticmethod
    def _fill(templates: list[str], rng: np.random.Generator,
              next_ing) -> str:
        template = templates[rng.integers(len(templates))]
        sentence = template
        if "{ing}" in sentence:
            sentence = sentence.replace("{ing}", next_ing(), 1)
        if "{ing2}" in sentence:
            sentence = sentence.replace("{ing2}", next_ing(), 1)
        if "{temp}" in sentence:
            sentence = sentence.replace("{temp}",
                                        str(int(rng.integers(300, 450))))
        if "{mins}" in sentence:
            sentence = sentence.replace("{mins}",
                                        str(int(rng.integers(2, 45))))
        return sentence
