"""Mini-batch sampling with the paper's labeled/unlabeled composition.

§4.4: batches of 100 pairs are split into 50 random unlabeled pairs and
50 labeled pairs drawn to respect the class distribution of the split.
:class:`PairBatcher` reproduces that policy over an
:class:`~repro.data.encoding.EncodedCorpus` at any batch size.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .encoding import EncodedCorpus

__all__ = ["PairBatcher"]


class PairBatcher:
    """Yield row-index batches over an encoded corpus.

    Parameters
    ----------
    corpus:
        Encoded training corpus.
    batch_size:
        Pairs per batch. Half the slots (rounded down) go to labeled
        pairs when both pools are non-empty.
    seed:
        Sampling seed.
    stratify:
        Keep the labeled half's class proportions equal to the split's
        observed class distribution (the paper's policy). When False,
        labeled rows are drawn uniformly — an ablation knob.
    """

    def __init__(self, corpus: EncodedCorpus, batch_size: int = 100,
                 seed: int = 0, stratify: bool = True):
        if batch_size < 2:
            raise ValueError("batch_size must be at least 2")
        if len(corpus) == 0:
            raise ValueError(
                "cannot batch an empty corpus — check that the split you "
                "encoded actually contains recipes")
        if batch_size > len(corpus):
            raise ValueError(
                f"batch_size ({batch_size}) exceeds the corpus size "
                f"({len(corpus)}); lower batch_size or use a larger split")
        self.corpus = corpus
        self.batch_size = batch_size
        self.stratify = stratify
        self._rng = np.random.default_rng(seed)
        self._labeled_rows = np.flatnonzero(corpus.class_ids >= 0)
        self._unlabeled_rows = np.flatnonzero(corpus.class_ids < 0)
        self._class_rows: dict[int, np.ndarray] = {}
        for class_id in np.unique(corpus.class_ids[self._labeled_rows]):
            self._class_rows[int(class_id)] = np.flatnonzero(
                corpus.class_ids == class_id)
        self._class_probs = None
        if self._class_rows:
            counts = np.array([len(rows) for rows in
                               self._class_rows.values()], dtype=np.float64)
            self._class_probs = counts / counts.sum()

    @property
    def batches_per_epoch(self) -> int:
        return max(1, len(self.corpus) // self.batch_size)

    # ------------------------------------------------------------------
    def epoch(self) -> Iterator[np.ndarray]:
        """Yield ``batches_per_epoch`` batches of row indices."""
        for __ in range(self.batches_per_epoch):
            yield self.sample_batch()

    def sample_batch(self) -> np.ndarray:
        """Draw one batch: 50% unlabeled + 50% class-stratified labeled."""
        rng = self._rng
        half = self.batch_size // 2
        n_labeled = half if len(self._labeled_rows) else 0
        n_unlabeled = self.batch_size - n_labeled
        if not len(self._unlabeled_rows):
            n_labeled, n_unlabeled = self.batch_size, 0

        rows: list[np.ndarray] = []
        if n_unlabeled:
            rows.append(rng.choice(self._unlabeled_rows, size=n_unlabeled,
                                   replace=len(self._unlabeled_rows)
                                   < n_unlabeled))
        if n_labeled:
            rows.append(self._sample_labeled(n_labeled))
        batch = np.concatenate(rows)
        rng.shuffle(batch)
        return batch

    def _sample_labeled(self, count: int) -> np.ndarray:
        rng = self._rng
        if not self.stratify:
            return rng.choice(self._labeled_rows, size=count,
                              replace=len(self._labeled_rows) < count)
        class_ids = list(self._class_rows)
        drawn_classes = rng.choice(len(class_ids), size=count,
                                   p=self._class_probs)
        picks = np.empty(count, dtype=np.int64)
        for i, class_pos in enumerate(drawn_classes):
            pool = self._class_rows[class_ids[class_pos]]
            picks[i] = pool[rng.integers(len(pool))]
        return picks
