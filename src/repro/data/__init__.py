"""Synthetic Recipe1M data substrate."""

from .ingredients import BASE_INGREDIENTS, Ingredient, IngredientLexicon
from .classes import GROUPS, LAYOUTS, ClassTaxonomy, RecipeClass
from .instructions import InstructionGrammar
from .images import DishRenderer
from .schema import Recipe
from .generator import DatasetConfig, SyntheticRecipe1M, generate_dataset
from .dataset import RecipeDataset
from .encoding import EncodedCorpus, RecipeFeaturizer
from .batching import PairBatcher
from .io import load_ppm, save_image_grid, save_ppm
from .recipe1m_format import export_recipe1m, import_recipe1m

__all__ = [
    "Ingredient", "IngredientLexicon", "BASE_INGREDIENTS",
    "RecipeClass", "ClassTaxonomy", "LAYOUTS", "GROUPS",
    "InstructionGrammar", "DishRenderer", "Recipe",
    "DatasetConfig", "SyntheticRecipe1M", "generate_dataset",
    "RecipeDataset", "EncodedCorpus", "RecipeFeaturizer", "PairBatcher",
    "save_ppm", "load_ppm", "save_image_grid",
    "export_recipe1m", "import_recipe1m",
]
