"""Recipe featurization: raw recipes → model-ready arrays.

Mirrors the paper's preprocessing pipeline:

* ingredients → ids into an ingredient vocabulary, with **word2vec
  vectors pretrained on ingredient co-occurrence** feeding the
  Bi-LSTM's (frozen) embedding table;
* instructions → per-sentence vectors from a **frozen SkipThoughtLite
  encoder** (the skip-thought stand-in), consumed by the trainable
  sentence-level LSTM;
* images → channel-first float arrays.

``fit`` uses the training split only, so no test text leaks into the
pretrained encoders.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

import numpy as np

from ..text import SkipThoughtLite, Vocabulary, Word2Vec, tokenize
from .dataset import RecipeDataset
from .schema import Recipe

__all__ = ["EncodedCorpus", "RecipeFeaturizer"]


@dataclass
class EncodedCorpus:
    """Model-ready arrays for a list of recipes (aligned by row).

    ``class_ids`` uses ``-1`` for unlabeled pairs; ``true_class_ids``
    always carries the generating class (evaluation only).
    """

    ingredient_ids: np.ndarray   # (n, max_ingredients) int64
    ingredient_lengths: np.ndarray  # (n,) int64
    sentence_vectors: np.ndarray  # (n, max_sentences, sent_dim) float64
    sentence_lengths: np.ndarray  # (n,) int64
    images: np.ndarray           # (n, 3, size, size) float64
    class_ids: np.ndarray        # (n,) int64, -1 when unlabeled
    true_class_ids: np.ndarray   # (n,) int64
    recipe_indices: np.ndarray   # (n,) int64 position in the dataset

    def __len__(self) -> int:
        return len(self.recipe_indices)

    def subset(self, rows: np.ndarray) -> "EncodedCorpus":
        """Row-select a sub-corpus (used by the retrieval protocol)."""
        rows = np.asarray(rows, dtype=np.int64)
        return EncodedCorpus(
            ingredient_ids=self.ingredient_ids[rows],
            ingredient_lengths=self.ingredient_lengths[rows],
            sentence_vectors=self.sentence_vectors[rows],
            sentence_lengths=self.sentence_lengths[rows],
            images=self.images[rows],
            class_ids=self.class_ids[rows],
            true_class_ids=self.true_class_ids[rows],
            recipe_indices=self.recipe_indices[rows],
        )


class RecipeFeaturizer:
    """Fit text encoders on the train split, then encode any recipe.

    Parameters
    ----------
    word_dim:
        Dimensionality of the pretrained ingredient word2vec vectors.
    sentence_dim:
        Dimensionality of the frozen sentence embeddings.
    max_ingredients, max_sentences:
        Padding lengths (longer inputs are truncated).
    seed:
        Seed for the pretraining procedures.
    """

    def __init__(self, word_dim: int = 24, sentence_dim: int = 24,
                 max_ingredients: int = 12, max_sentences: int = 8,
                 seed: int = 0):
        self.word_dim = word_dim
        self.sentence_dim = sentence_dim
        self.max_ingredients = max_ingredients
        self.max_sentences = max_sentences
        self.seed = seed
        self.ingredient_vocab: Vocabulary | None = None
        self.word2vec: Word2Vec | None = None
        self.sentence_encoder: SkipThoughtLite | None = None

    # ------------------------------------------------------------------
    def fit(self, dataset: RecipeDataset, split: str = "train"
            ) -> "RecipeFeaturizer":
        """Build vocabularies and pretrain the frozen text encoders."""
        train = dataset.split(split)
        if not train:
            raise ValueError(f"split {split!r} is empty")

        # Ingredient vocabulary: one token per canonical ingredient name
        # (Recipe1M ships canonicalized ingredient lists).
        ingredient_docs = [self._canonical(r.ingredients) for r in train]
        self.ingredient_vocab = Vocabulary.from_corpus(ingredient_docs)
        self.word2vec = Word2Vec(self.ingredient_vocab, dim=self.word_dim,
                                 window=4, seed=self.seed)
        self.word2vec.fit(ingredient_docs, epochs=2)

        # Instruction-word vocabulary + word vectors for SkipThoughtLite.
        instruction_docs = [tokenize(" ".join(r.instructions)) for r in train]
        word_vocab = Vocabulary.from_corpus(instruction_docs, min_count=1)
        word_model = Word2Vec(word_vocab, dim=self.word_dim, window=4,
                              seed=self.seed + 1)
        word_model.fit(instruction_docs, epochs=1)
        self.sentence_encoder = SkipThoughtLite(
            word_vocab, word_model.vectors(), dim=self.sentence_dim,
            seed=self.seed + 2)
        self.sentence_encoder.fit([r.instructions for r in train], epochs=1,
                                  seed=self.seed + 3)
        return self

    @staticmethod
    def _canonical(names: list[str]) -> list[str]:
        """Canonical ingredient tokens: multiword names joined with '_'."""
        return [n.replace(" ", "_") for n in names]

    @property
    def ingredient_vectors(self) -> np.ndarray:
        """Pretrained ingredient embedding table (padding row zeroed)."""
        self._require_fitted()
        return self.word2vec.vectors()

    def _require_fitted(self) -> None:
        if self.ingredient_vocab is None:
            raise RuntimeError("featurizer not fitted; call fit() first")

    # ------------------------------------------------------------------
    def encode_recipe(self, recipe: Recipe) -> tuple[np.ndarray, int,
                                                     np.ndarray, int]:
        """Encode one recipe's text: padded ingredient ids and
        sentence-vector matrix plus true lengths."""
        self._require_fitted()
        tokens = self._canonical(recipe.ingredients)
        ids = self.ingredient_vocab.encode_padded(tokens,
                                                  self.max_ingredients)
        n_ing = min(len(tokens), self.max_ingredients)

        sentences = recipe.instructions[: self.max_sentences]
        vectors = np.zeros((self.max_sentences, self.sentence_dim))
        if sentences:
            vectors[: len(sentences)] = self.sentence_encoder.encode_many(
                sentences)
        return ids, n_ing, vectors, len(sentences)

    def encode_corpus(self, dataset: RecipeDataset,
                      indices: np.ndarray) -> EncodedCorpus:
        """Encode the recipes at ``indices`` into aligned arrays."""
        self._require_fitted()
        indices = np.asarray(indices, dtype=np.int64)
        n = len(indices)
        first = dataset[int(indices[0])] if n else None
        image_shape = first.image.shape if first is not None else (3, 8, 8)

        ingredient_ids = np.zeros((n, self.max_ingredients), dtype=np.int64)
        ingredient_lengths = np.zeros(n, dtype=np.int64)
        sentence_vectors = np.zeros((n, self.max_sentences,
                                     self.sentence_dim))
        sentence_lengths = np.zeros(n, dtype=np.int64)
        images = np.zeros((n, *image_shape))
        class_ids = np.full(n, -1, dtype=np.int64)
        true_class_ids = np.zeros(n, dtype=np.int64)

        for row, dataset_index in enumerate(indices):
            recipe = dataset[int(dataset_index)]
            ids, n_ing, vectors, n_sent = self.encode_recipe(recipe)
            ingredient_ids[row] = ids
            ingredient_lengths[row] = max(n_ing, 1)
            sentence_vectors[row] = vectors
            sentence_lengths[row] = max(n_sent, 1)
            images[row] = recipe.image
            if recipe.class_id is not None:
                class_ids[row] = recipe.class_id
            true_class_ids[row] = recipe.true_class_id

        return EncodedCorpus(
            ingredient_ids=ingredient_ids,
            ingredient_lengths=ingredient_lengths,
            sentence_vectors=sentence_vectors,
            sentence_lengths=sentence_lengths,
            images=images,
            class_ids=class_ids,
            true_class_ids=true_class_ids,
            recipe_indices=indices.copy(),
        )

    def encode_split(self, dataset: RecipeDataset, split: str
                     ) -> EncodedCorpus:
        """Encode a whole named split."""
        return self.encode_corpus(dataset, dataset.split_indices(split))

    # ------------------------------------------------------------------
    # Persistence (JSON metadata + npz arrays)
    # ------------------------------------------------------------------
    def save(self, directory) -> None:
        """Persist the fitted featurizer (vocabularies + encoders)."""
        self._require_fitted()
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        encoder = self.sentence_encoder
        meta = {
            "word_dim": self.word_dim,
            "sentence_dim": self.sentence_dim,
            "max_ingredients": self.max_ingredients,
            "max_sentences": self.max_sentences,
            "seed": self.seed,
            "ingredient_tokens": self.ingredient_vocab.tokens,
            "instruction_tokens": encoder.vocab.tokens,
        }
        with open(directory / "featurizer.json", "w") as handle:
            json.dump(meta, handle)
        np.savez_compressed(
            directory / "featurizer.npz",
            ingredient_vectors=self.word2vec.vectors(),
            instruction_word_vectors=encoder.word_vectors,
            sentence_projection=encoder.projection,
        )

    @classmethod
    def load(cls, directory) -> "RecipeFeaturizer":
        """Restore a featurizer written by :meth:`save`."""
        directory = pathlib.Path(directory)
        with open(directory / "featurizer.json") as handle:
            meta = json.load(handle)
        with np.load(directory / "featurizer.npz") as archive:
            arrays = {key: archive[key] for key in archive.files}

        featurizer = cls(word_dim=meta["word_dim"],
                         sentence_dim=meta["sentence_dim"],
                         max_ingredients=meta["max_ingredients"],
                         max_sentences=meta["max_sentences"],
                         seed=meta["seed"])
        # Reserved tokens are re-added by Vocabulary(); skip them here.
        featurizer.ingredient_vocab = Vocabulary(
            meta["ingredient_tokens"][2:])
        featurizer.word2vec = Word2Vec(featurizer.ingredient_vocab,
                                       dim=meta["word_dim"])
        featurizer.word2vec.input_vectors = arrays["ingredient_vectors"]
        word_vocab = Vocabulary(meta["instruction_tokens"][2:])
        featurizer.sentence_encoder = SkipThoughtLite(
            word_vocab, arrays["instruction_word_vectors"],
            dim=meta["sentence_dim"])
        featurizer.sentence_encoder.projection = arrays[
            "sentence_projection"]
        featurizer.sentence_encoder._fitted = True
        return featurizer
