"""Dataset container with split handling."""

from __future__ import annotations

from collections import Counter

import numpy as np

from .classes import ClassTaxonomy
from .ingredients import IngredientLexicon
from .schema import Recipe

__all__ = ["RecipeDataset"]


class RecipeDataset:
    """All recipes plus train/val/test split bookkeeping.

    Parameters
    ----------
    recipes:
        Every generated :class:`Recipe`, indexed by position.
    splits:
        Mapping ``"train" | "val" | "test"`` → sorted index arrays.
    taxonomy, lexicon:
        The generating taxonomy and ingredient lexicon (kept for
        qualitative experiments and class-name lookups).
    """

    def __init__(self, recipes: list[Recipe], splits: dict[str, np.ndarray],
                 taxonomy: ClassTaxonomy, lexicon: IngredientLexicon):
        self.recipes = recipes
        self.taxonomy = taxonomy
        self.lexicon = lexicon
        self.splits = {name: np.asarray(idx, dtype=np.int64)
                       for name, idx in splits.items()}
        self._validate()

    def _validate(self) -> None:
        required = {"train", "val", "test"}
        if set(self.splits) != required:
            raise ValueError(f"splits must be exactly {required}")
        all_indices = np.concatenate(list(self.splits.values()))
        if len(np.unique(all_indices)) != len(all_indices):
            raise ValueError("splits overlap")
        if all_indices.max(initial=-1) >= len(self.recipes):
            raise ValueError("split index out of range")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.recipes)

    def __getitem__(self, index: int) -> Recipe:
        return self.recipes[index]

    def split(self, name: str) -> list[Recipe]:
        """Recipes of one split, in index order."""
        return [self.recipes[i] for i in self.splits[name]]

    def split_indices(self, name: str) -> np.ndarray:
        return self.splits[name]

    def quarantine_corrupt(self, report=None):
        """Drop corrupt records, returning ``(clean_dataset, report)``.

        Each recipe is validated (non-empty text fields, label inside
        the taxonomy, finite channel-first image); failures are recorded
        in the :class:`~repro.robustness.quarantine.QuarantineReport`
        and removed, with split indices remapped accordingly. When every
        record is healthy the dataset is returned unchanged (no copy).
        """
        from ..robustness.quarantine import QuarantineReport, validate_recipe

        report = report if report is not None else QuarantineReport()
        keep: list[int] = []
        for index, recipe in enumerate(self.recipes):
            reason = validate_recipe(recipe, num_classes=len(self.taxonomy))
            if reason is None:
                keep.append(index)
            else:
                report.add(recipe.recipe_id, reason)
        if len(keep) == len(self.recipes):
            return self, report
        remap = {old: new for new, old in enumerate(keep)}
        cleaned = RecipeDataset(
            [self.recipes[i] for i in keep],
            {name: np.array([remap[int(i)] for i in rows
                             if int(i) in remap], dtype=np.int64)
             for name, rows in self.splits.items()},
            self.taxonomy, self.lexicon)
        return cleaned, report

    def class_distribution(self, split: str = "train") -> dict[int, int]:
        """Observed label counts over the labeled half of a split."""
        counts = Counter(
            r.class_id for r in self.split(split) if r.is_labeled)
        return dict(counts)

    def labeled_fraction(self, split: str = "train") -> float:
        recipes = self.split(split)
        if not recipes:
            return 0.0
        return sum(r.is_labeled for r in recipes) / len(recipes)

    def summary(self) -> str:
        """Human-readable dataset description."""
        lines = [
            f"SyntheticRecipe1M: {len(self)} pairs, "
            f"{len(self.taxonomy)} classes, "
            f"{len(self.lexicon)} ingredients",
        ]
        for name in ("train", "val", "test"):
            recipes = self.split(name)
            labeled = sum(r.is_labeled for r in recipes)
            lines.append(f"  {name}: {len(recipes)} pairs "
                         f"({labeled} labeled)")
        return "\n".join(lines)
