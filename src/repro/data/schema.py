"""Core dataset record types."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Recipe"]


@dataclass
class Recipe:
    """One image-recipe pair of the synthetic Recipe1M.

    Attributes
    ----------
    recipe_id:
        Unique integer id.
    title:
        Recipe title (used by Recipe1M to parse classes).
    class_id:
        The *observed* semantic class label, or ``None`` for the
        unlabeled half of the dataset.
    true_class_id:
        The generating class. Equal to ``class_id`` when labeled; kept
        for evaluation-only diagnostics on unlabeled pairs (never used
        in training).
    ingredients:
        Ingredient names, in listing order.
    instructions:
        Ordered instruction sentences.
    image:
        Channel-first float RGB array in ``[0, 1]``.
    """

    recipe_id: int
    title: str
    class_id: int | None
    true_class_id: int
    ingredients: list[str]
    instructions: list[str]
    image: np.ndarray = field(repr=False)

    @property
    def is_labeled(self) -> bool:
        return self.class_id is not None

    def without_ingredient(self, name: str) -> "Recipe":
        """Return a copy with one ingredient removed everywhere.

        The ingredient is dropped from the list and every instruction
        sentence mentioning it is deleted — the paper's Table 5
        "removing ingredients" edit.
        """
        if name not in self.ingredients:
            raise ValueError(f"{name!r} is not an ingredient of this recipe")
        kept_instructions = [s for s in self.instructions
                             if name.lower() not in s.lower()]
        if not kept_instructions:
            kept_instructions = ["Serve and enjoy."]
        return Recipe(
            recipe_id=self.recipe_id,
            title=self.title,
            class_id=self.class_id,
            true_class_id=self.true_class_id,
            ingredients=[i for i in self.ingredients if i != name],
            instructions=kept_instructions,
            image=self.image,
        )
