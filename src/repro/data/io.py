"""Image file I/O without external imaging libraries.

Rendered dish images can be written as binary PPM (P6) files — viewable
by virtually every image tool — so users can inspect what the
procedural renderer and the qualitative experiments actually retrieve.
"""

from __future__ import annotations

import pathlib

import numpy as np

__all__ = ["save_ppm", "load_ppm", "save_image_grid"]


def save_ppm(image: np.ndarray, path) -> None:
    """Write a channel-first float RGB image in [0, 1] as binary PPM."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[0] != 3:
        raise ValueError(f"expected (3, H, W), got {image.shape}")
    pixels = (np.clip(image, 0.0, 1.0) * 255.0).round().astype(np.uint8)
    pixels = pixels.transpose(1, 2, 0)  # H, W, C
    height, width = pixels.shape[:2]
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(pixels.tobytes())


def load_ppm(path) -> np.ndarray:
    """Read a binary PPM back into a channel-first float array in [0,1].

    Truncated or corrupt files raise :class:`ValueError` naming the
    offending path, so a damaged image on disk is diagnosable instead of
    surfacing as a cryptic buffer/reshape error deep inside numpy.
    """
    path = pathlib.Path(path)
    data = path.read_bytes()
    if not data.startswith(b"P6"):
        raise ValueError(f"{path}: not a binary PPM (P6) file")
    # header: magic, width, height, maxval — whitespace separated, with
    # possible comment lines.
    fields: list[bytes] = []
    position = 2
    while len(fields) < 3:
        while position < len(data) and data[position:position + 1].isspace():
            position += 1
        if position >= len(data):
            raise ValueError(
                f"{path}: truncated PPM header (found {len(fields)} of 3 "
                f"header fields before end of file)")
        if data[position:position + 1] == b"#":
            while data[position:position + 1] not in (b"\n", b""):
                position += 1
            continue
        start = position
        while position < len(data) and not data[position:position + 1].isspace():
            position += 1
        fields.append(data[start:position])
    try:
        width, height, maxval = (int(f) for f in fields)
    except ValueError:
        raise ValueError(
            f"{path}: malformed PPM header fields "
            f"{[f.decode('ascii', 'replace') for f in fields]}") from None
    if width < 1 or height < 1 or maxval < 1:
        raise ValueError(
            f"{path}: invalid PPM geometry {width}x{height} "
            f"(maxval {maxval})")
    position += 1  # single whitespace after maxval
    expected = width * height * 3
    available = len(data) - position
    if available < expected:
        raise ValueError(
            f"{path}: truncated pixel data ({available} of {expected} "
            f"bytes for a {width}x{height} image)")
    pixels = np.frombuffer(data, dtype=np.uint8, offset=position,
                           count=expected)
    image = pixels.reshape(height, width, 3).transpose(2, 0, 1)
    return image.astype(np.float64) / maxval


def save_image_grid(images: np.ndarray, path, columns: int = 5,
                    pad: int = 1) -> None:
    """Tile several (3, H, W) images into one PPM contact sheet."""
    images = np.asarray(images)
    if images.ndim != 4 or images.shape[1] != 3:
        raise ValueError(f"expected (N, 3, H, W), got {images.shape}")
    n, __, height, width = images.shape
    columns = min(columns, n)
    rows = (n + columns - 1) // columns
    sheet = np.ones((3, rows * (height + pad) - pad,
                     columns * (width + pad) - pad))
    for i in range(n):
        r, c = divmod(i, columns)
        top = r * (height + pad)
        left = c * (width + pad)
        sheet[:, top:top + height, left:left + width] = images[i]
    save_ppm(sheet, path)
