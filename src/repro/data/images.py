"""Procedural dish-image renderer.

Stands in for Recipe1M's food photographs: each recipe is rendered as a
small RGB image whose appearance is determined by (a) its class
(background colour and plating layout — the coarse, semantic signal)
and (b) its ingredients (coloured blobs with per-ingredient texture —
the fine-grained, instance signal). Noise and jitter make every image
unique, so matching a query to its own pair is non-trivial.
"""

from __future__ import annotations

import numpy as np

from .classes import RecipeClass
from .ingredients import Ingredient

__all__ = ["DishRenderer"]

_PLATE_COLOR = np.array([0.93, 0.92, 0.88])


class DishRenderer:
    """Render recipes to ``(3, size, size)`` float images in [0, 1].

    Parameters
    ----------
    size:
        Image side length in pixels.
    noise:
        Standard deviation of the global pixel noise.
    """

    def __init__(self, size: int = 24, noise: float = 0.04,
                 background_strength: float = 1.0):
        if size < 8:
            raise ValueError("images smaller than 8px lose ingredient signal")
        if not 0.0 <= background_strength <= 1.0:
            raise ValueError("background_strength must be in [0, 1]")
        self.size = size
        self.noise = noise
        self.background_strength = background_strength
        grid = (np.arange(size) + 0.5) / size
        self._yy, self._xx = np.meshgrid(grid, grid, indexing="ij")

    # ------------------------------------------------------------------
    def render(self, recipe_class: RecipeClass,
               ingredients: list[Ingredient],
               rng: np.random.Generator) -> np.ndarray:
        """Render one dish image (channel-first, values clipped to [0,1])."""
        size = self.size
        image = np.empty((size, size, 3))
        # The class background cue can be attenuated: at strength 0 every
        # class shares a neutral table colour and class identity must be
        # inferred from the plated ingredients alone.
        neutral = np.array([0.55, 0.47, 0.38])
        strength = self.background_strength
        image[:] = (strength * np.asarray(recipe_class.background)
                    + (1.0 - strength) * neutral)

        # plate disc with a little positional jitter
        cx, cy = 0.5 + rng.uniform(-0.04, 0.04, size=2)
        radius = 0.42 + rng.uniform(-0.02, 0.02)
        dist = np.sqrt((self._xx - cx) ** 2 + (self._yy - cy) ** 2)
        plate = dist < radius
        image[plate] = _PLATE_COLOR

        for position, ingredient in zip(
                self._positions(recipe_class.layout, len(ingredients),
                                (cx, cy), radius, rng),
                ingredients):
            self._splat(image, ingredient, position, radius, rng)

        # global lighting jitter + pixel noise
        image *= rng.uniform(0.9, 1.1)
        image += rng.normal(0.0, self.noise, size=image.shape)
        np.clip(image, 0.0, 1.0, out=image)
        return image.transpose(2, 0, 1)

    # ------------------------------------------------------------------
    def _positions(self, layout: str, count: int, center: tuple[float, float],
                   radius: float, rng: np.random.Generator
                   ) -> list[tuple[float, float]]:
        """Blob centres for ``count`` ingredients under a class layout."""
        cx, cy = center
        positions = []
        if layout == "grid":
            side = int(np.ceil(np.sqrt(count)))
            for i in range(count):
                gx = (i % side + 0.5) / side
                gy = (i // side + 0.5) / side
                positions.append((cx + (gx - 0.5) * 1.4 * radius,
                                  cy + (gy - 0.5) * 1.4 * radius))
        elif layout == "stack":
            for i in range(count):
                band = (i + 0.5) / count
                positions.append((cx + rng.uniform(-0.25, 0.25) * radius,
                                  cy + (band - 0.5) * 1.5 * radius))
        elif layout == "bowl":
            for __ in range(count):
                angle = rng.uniform(0, 2 * np.pi)
                rad = radius * 0.5 * np.sqrt(rng.uniform())
                positions.append((cx + rad * np.cos(angle),
                                  cy + rad * np.sin(angle)))
        else:  # disc: uniform over the plate
            for __ in range(count):
                angle = rng.uniform(0, 2 * np.pi)
                rad = radius * 0.85 * np.sqrt(rng.uniform())
                positions.append((cx + rad * np.cos(angle),
                                  cy + rad * np.sin(angle)))
        return positions

    def _splat(self, image: np.ndarray, ingredient: Ingredient,
               position: tuple[float, float], plate_radius: float,
               rng: np.random.Generator) -> None:
        """Deposit one soft colour blob (plus texture noise) on the image."""
        px, py = position
        sigma = plate_radius * rng.uniform(0.18, 0.30)
        weight = np.exp(-((self._xx - px) ** 2 + (self._yy - py) ** 2)
                        / (2 * sigma ** 2))
        weight = np.minimum(weight * 1.6, 1.0)
        color = np.asarray(ingredient.color)
        texture = rng.normal(0.0, ingredient.texture * 0.12,
                             size=image.shape[:2])
        tinted = color[None, None, :] * (1.0 + texture[..., None])
        image += weight[..., None] * (tinted - image)
