"""Synthetic Recipe1M generator.

Builds a dataset with the statistical structure the paper relies on:

* ~1M scale is configurable down to test size; splits default to the
  Recipe1M proportions (≈70/15/15).
* Each pair is generated from a semantic class, but only a configurable
  fraction (one half, like Recipe1M) exposes its label.
* Class frequencies are head-heavy (Zipf-like).
* Ingredients = class core + sampled extras + occasional off-class
  noise; images are rendered from those ingredients; instructions are
  generated mentioning them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .classes import ClassTaxonomy, RecipeClass
from .images import DishRenderer
from .ingredients import IngredientLexicon
from .instructions import InstructionGrammar
from .schema import Recipe

__all__ = ["DatasetConfig", "SyntheticRecipe1M", "generate_dataset"]

_TITLE_ADJECTIVES = [
    "easy", "homemade", "classic", "quick", "grandma's", "spicy", "creamy",
    "best", "simple", "rustic", "weeknight", "crispy",
]


@dataclass(frozen=True)
class DatasetConfig:
    """Knobs controlling the synthetic Recipe1M build."""

    num_pairs: int = 1200
    num_classes: int = 16
    image_size: int = 24
    image_noise: float = 0.04
    background_strength: float = 1.0
    labeled_fraction: float = 0.5
    min_extras: int = 1
    max_extras: int = 4
    noise_ingredient_prob: float = 0.25
    train_fraction: float = 0.70
    val_fraction: float = 0.15
    seed: int = 0

    def __post_init__(self):
        if self.num_pairs < 10:
            raise ValueError("num_pairs must be at least 10")
        if not 0.0 <= self.labeled_fraction <= 1.0:
            raise ValueError("labeled_fraction must be in [0, 1]")
        if self.train_fraction + self.val_fraction >= 1.0:
            raise ValueError("train+val fractions must leave room for test")


class SyntheticRecipe1M:
    """Generate :class:`Recipe` pairs and train/val/test splits."""

    def __init__(self, config: DatasetConfig):
        self.config = config
        self.lexicon = IngredientLexicon()
        self.taxonomy = ClassTaxonomy(config.num_classes, self.lexicon,
                                      seed=config.seed)
        self.grammar = InstructionGrammar()
        self.renderer = DishRenderer(
            size=config.image_size, noise=config.image_noise,
            background_strength=config.background_strength)

    # ------------------------------------------------------------------
    def build(self) -> tuple[list[Recipe], dict[str, np.ndarray]]:
        """Generate all pairs and split indices.

        Returns ``(recipes, splits)`` where ``splits`` maps
        ``"train" | "val" | "test"`` to index arrays.
        """
        config = self.config
        rng = np.random.default_rng(config.seed)
        recipes = [self._make_recipe(i, rng) for i in range(config.num_pairs)]

        order = rng.permutation(config.num_pairs)
        n_train = int(config.num_pairs * config.train_fraction)
        n_val = int(config.num_pairs * config.val_fraction)
        splits = {
            "train": np.sort(order[:n_train]),
            "val": np.sort(order[n_train:n_train + n_val]),
            "test": np.sort(order[n_train + n_val:]),
        }
        return recipes, splits

    # ------------------------------------------------------------------
    def _make_recipe(self, recipe_id: int, rng: np.random.Generator) -> Recipe:
        config = self.config
        recipe_class = self.taxonomy.sample_class(rng)
        ingredients = self._sample_ingredients(recipe_class, rng)
        instructions = self.grammar.generate(ingredients, rng)
        image = self.renderer.render(
            recipe_class, [self.lexicon[name] for name in ingredients], rng)
        labeled = rng.random() < config.labeled_fraction
        adjective = _TITLE_ADJECTIVES[rng.integers(len(_TITLE_ADJECTIVES))]
        return Recipe(
            recipe_id=recipe_id,
            title=f"{adjective} {recipe_class.name}",
            class_id=recipe_class.class_id if labeled else None,
            true_class_id=recipe_class.class_id,
            ingredients=ingredients,
            instructions=instructions,
            image=image,
        )

    def _sample_ingredients(self, recipe_class: RecipeClass,
                            rng: np.random.Generator) -> list[str]:
        config = self.config
        names = list(recipe_class.core)
        extras = list(recipe_class.extras)
        if extras:
            k = int(rng.integers(config.min_extras,
                                 min(config.max_extras, len(extras)) + 1))
            picks = rng.choice(len(extras), size=k, replace=False)
            names.extend(extras[i] for i in picks)
        if rng.random() < config.noise_ingredient_prob:
            noise = self.lexicon.sample(rng, 1, exclude=set(names))
            names.append(noise[0].name)
        return names


def generate_dataset(config: DatasetConfig | None = None):
    """Convenience wrapper: build a :class:`RecipeDataset` in one call."""
    from .dataset import RecipeDataset

    config = config or DatasetConfig()
    generator = SyntheticRecipe1M(config)
    recipes, splits = generator.build()
    return RecipeDataset(recipes, splits, generator.taxonomy,
                         generator.lexicon)
