"""Import/export in the Recipe1M JSON layout.

Recipe1M ships its text layer as a JSON list (``layer1.json``) of
objects ``{id, title, ingredients: [{text}], instructions: [{text}],
partition}``; the class annotations live in a separate id → class map.
This module writes and reads that exact schema, so a user with the real
dataset can swap it in for the synthetic corpus — and the synthetic
corpus can be exported for tools written against Recipe1M.

Images are stored separately (Recipe1M keys image files by recipe id);
here they are written as one ``images.npz`` keyed the same way.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from ..robustness.quarantine import (QuarantineReport, validate_image,
                                     validate_recipe_entry)
from .classes import ClassTaxonomy
from .dataset import RecipeDataset
from .ingredients import IngredientLexicon
from .schema import Recipe

__all__ = ["export_recipe1m", "import_recipe1m"]

_PARTITIONS = ("train", "val", "test")


def export_recipe1m(dataset: RecipeDataset, directory) -> dict[str, str]:
    """Write ``layer1.json``, ``classes.json`` and ``images.npz``.

    Returns the mapping of artifact name → written path.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    partition_of = {}
    for name in _PARTITIONS:
        for index in dataset.split_indices(name):
            partition_of[int(index)] = name

    layer1 = []
    classes = {}
    images = {}
    for index, recipe in enumerate(dataset.recipes):
        rid = f"r{recipe.recipe_id:08d}"
        layer1.append({
            "id": rid,
            "title": recipe.title,
            "ingredients": [{"text": name} for name in recipe.ingredients],
            "instructions": [{"text": s} for s in recipe.instructions],
            "partition": partition_of.get(index, "train"),
        })
        if recipe.class_id is not None:
            classes[rid] = int(recipe.class_id)
        images[rid] = recipe.image

    paths = {}
    layer1_path = directory / "layer1.json"
    with open(layer1_path, "w") as handle:
        json.dump(layer1, handle)
    paths["layer1"] = str(layer1_path)

    classes_path = directory / "classes.json"
    with open(classes_path, "w") as handle:
        json.dump({"assignments": classes,
                   "names": [c.name for c in dataset.taxonomy.classes]},
                  handle)
    paths["classes"] = str(classes_path)

    images_path = directory / "images.npz"
    np.savez_compressed(images_path, **images)
    paths["images"] = str(images_path)
    return paths


def import_recipe1m(directory, taxonomy: ClassTaxonomy | None = None,
                    quarantine: QuarantineReport | None = None
                    ) -> RecipeDataset:
    """Load a directory written by :func:`export_recipe1m`.

    ``taxonomy`` may be supplied to attach a richer taxonomy; otherwise
    a minimal one is rebuilt from ``classes.json`` (procedural
    signatures, which only affects *new* generation, not the loaded
    data).

    ``quarantine`` opts into fault-tolerant loading: records that are
    malformed (missing fields, empty ingredients, labels outside the
    taxonomy, unknown partitions, missing/NaN/mis-shaped images) are
    routed into the report and *skipped* instead of aborting the whole
    import. Without a report (the default) the first bad record raises,
    preserving strict behaviour for trusted corpora.
    """
    directory = pathlib.Path(directory)
    with open(directory / "layer1.json") as handle:
        layer1 = json.load(handle)
    with open(directory / "classes.json") as handle:
        class_file = json.load(handle)
    assignments = class_file["assignments"]
    class_names = class_file["names"]

    with np.load(directory / "images.npz") as archive:
        images = {key: archive[key] for key in archive.files}

    num_classes = len(class_names) or None
    recipes: list[Recipe] = []
    splits: dict[str, list[int]] = {name: [] for name in _PARTITIONS}
    for position, entry in enumerate(layer1):
        rid = (entry.get("id", f"<entry {position}>")
               if isinstance(entry, dict) else f"<entry {position}>")
        class_id = assignments.get(rid) if isinstance(entry, dict) else None
        if quarantine is not None:
            reason = validate_recipe_entry(entry, num_classes=num_classes,
                                           class_id=class_id)
            if reason is None and not str(rid).lstrip("r").isdigit():
                reason = f"id {rid!r} is not of the form r<digits>"
            if reason is None and rid not in images:
                reason = "entry has no image"
            if reason is None:
                reason = validate_image(images[rid])
            if reason is None and \
                    entry.get("partition", "train") not in splits:
                reason = f"unknown partition {entry['partition']!r}"
            if reason is not None:
                quarantine.add(rid, reason)
                continue
        recipe = Recipe(
            recipe_id=int(rid.lstrip("r")),
            title=entry["title"],
            class_id=class_id,
            # imported data has no hidden ground truth; fall back to the
            # observed label (unlabeled pairs get -1 handled downstream)
            true_class_id=class_id if class_id is not None else -1,
            ingredients=[i["text"] for i in entry["ingredients"]],
            instructions=[s["text"] for s in entry["instructions"]],
            image=images[rid],
        )
        partition = entry.get("partition", "train")
        if partition not in splits:
            raise ValueError(f"unknown partition {partition!r} for {rid}")
        recipes.append(recipe)
        splits[partition].append(len(recipes) - 1)

    if taxonomy is None:
        lexicon = IngredientLexicon()
        taxonomy = ClassTaxonomy(max(len(class_names), 1), lexicon)
    return RecipeDataset(
        recipes,
        {name: np.array(rows, dtype=np.int64)
         for name, rows in splits.items()},
        taxonomy,
        taxonomy.lexicon,
    )
