"""End-to-end experiment runner with scenario caching.

One :class:`ExperimentRunner` owns a generated dataset, the fitted
featurizer, the encoded corpora, and lazily trains each scenario the
first time it is requested (so a benchmark session regenerating all
tables trains every model exactly once).
"""

from __future__ import annotations

import pathlib
import time

import numpy as np

from ..baselines import CCA, RandomEmbedder, corpus_features
from ..core.scenarios import build_scenario
from ..core.trainer import Trainer
from ..data.encoding import RecipeFeaturizer
from ..data.generator import generate_dataset
from ..obs import Telemetry
from ..retrieval import ProtocolResult, RetrievalProtocol
from ..robustness import CheckpointManager
from .configs import ExperimentScale, get_scale

__all__ = ["ExperimentRunner"]


class ExperimentRunner:
    """Build the corpus once; train/evaluate scenarios on demand."""

    def __init__(self, scale: str | ExperimentScale = "bench",
                 verbose: bool = False, checkpoint_dir=None,
                 telemetry: Telemetry | None = None):
        self.scale = get_scale(scale)
        self.verbose = verbose
        # Progress goes through the structured event log; verbose just
        # attaches a printer to it (quiet by default).
        self.telemetry = telemetry or Telemetry()
        if verbose and self.telemetry.events.printer is None:
            self.telemetry.events.printer = \
                lambda line: print(line, flush=True)
        # one sub-directory per scenario, so a killed benchmark session
        # resumes instead of retraining from scratch
        self.checkpoint_dir = (pathlib.Path(checkpoint_dir)
                               if checkpoint_dir is not None else None)
        self._log(f"generating dataset ({self.scale.dataset.num_pairs} pairs)")
        self.dataset = generate_dataset(self.scale.dataset)
        self.featurizer = RecipeFeaturizer(
            word_dim=self.scale.word_dim,
            sentence_dim=self.scale.sentence_dim,
            max_ingredients=self.scale.max_ingredients,
            max_sentences=self.scale.max_sentences,
            seed=self.scale.dataset.seed,
        ).fit(self.dataset)
        self.train_corpus = self.featurizer.encode_split(self.dataset,
                                                         "train")
        self.val_corpus = self.featurizer.encode_split(self.dataset, "val")
        self.test_corpus = self.featurizer.encode_split(self.dataset, "test")
        self._models: dict[str, object] = {}
        self._trainers: dict[str, Trainer] = {}

    def _log(self, message: str) -> None:
        self.telemetry.events.emit("runner", message=f"[runner] {message}",
                                   detail=message)

    @property
    def num_classes(self) -> int:
        return len(self.dataset.taxonomy)

    # ------------------------------------------------------------------
    def scenario(self, name: str):
        """Return the trained model of a scenario (training on first use)."""
        if name not in self._models:
            started = time.time()
            self._log(f"training scenario {name}")
            model, config = build_scenario(
                name, self.featurizer, self.num_classes,
                self.scale.dataset.image_size,
                base_config=self.scale.training,
                latent_dim=self.scale.latent_dim,
                backbone=self.scale.backbone,
                seed=self.scale.dataset.seed,
            )
            trainer = Trainer(
                model, config,
                class_to_group=self.dataset.taxonomy.class_to_group_ids(),
                telemetry=self.telemetry)
            scenario_dir = (self.checkpoint_dir / name
                            if self.checkpoint_dir is not None else None)
            if scenario_dir is not None and \
                    CheckpointManager(scenario_dir).latest() is not None:
                self._log(f"resuming {name} from {scenario_dir}")
                trainer.resume(scenario_dir, self.train_corpus,
                               self.val_corpus)
            else:
                trainer.fit(self.train_corpus, self.val_corpus,
                            checkpoint_dir=scenario_dir)
            self._models[name] = model
            self._trainers[name] = trainer
            self._log(f"{name} trained in {time.time() - started:.1f}s "
                      f"(best val MedR {trainer.best_val_medr:.1f})")
        return self._models[name]

    def trainer(self, name: str) -> Trainer:
        """Trainer (with history) of a scenario; trains if needed."""
        self.scenario(name)
        return self._trainers[name]

    # ------------------------------------------------------------------
    def _protocol(self, setup: str) -> RetrievalProtocol:
        if setup == "1k":
            size, bags = self.scale.small_bag
        elif setup == "10k":
            size, bags = self.scale.large_bag
        else:
            raise ValueError(f"unknown setup {setup!r}; use '1k' or '10k'")
        return RetrievalProtocol(bag_size=min(size, len(self.test_corpus)),
                                 num_bags=bags,
                                 seed=self.scale.dataset.seed)

    def evaluate(self, name: str, setup: str = "1k") -> ProtocolResult:
        """Train (if needed) and evaluate a scenario on the test split."""
        model = self.scenario(name)
        image_emb, recipe_emb = model.encode_corpus(self.test_corpus)
        return self._protocol(setup).evaluate(image_emb, recipe_emb)

    def random_result(self, setup: str = "1k") -> ProtocolResult:
        """Chance baseline on the test split."""
        embedder = RandomEmbedder(dim=self.scale.latent_dim,
                                  seed=self.scale.dataset.seed)
        a, b = embedder.embed_pair(len(self.test_corpus))
        return self._protocol(setup).evaluate(a, b)

    def cca_result(self, setup: str = "1k") -> ProtocolResult:
        """CCA baseline: fit on train fixed features, evaluate on test."""
        train_img, train_rec = corpus_features(self.train_corpus,
                                               self.featurizer)
        test_img, test_rec = corpus_features(self.test_corpus,
                                             self.featurizer)
        cca = CCA(dim=min(self.scale.latent_dim, train_img.shape[1],
                          train_rec.shape[1]),
                  reg=1e-2).fit(train_img, train_rec)
        return self._protocol(setup).evaluate(cca.transform_x(test_img),
                                              cca.transform_y(test_rec))
