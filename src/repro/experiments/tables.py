"""Paper-style table formatting."""

from __future__ import annotations

from ..retrieval import ProtocolResult

__all__ = ["format_metric", "result_row", "format_results_table",
           "PAPER_REFERENCE"]

# The paper's own 1k/10k numbers (Table 3), kept for side-by-side
# reporting in EXPERIMENTS.md. Format: name -> (i2r MedR, r2i MedR).
PAPER_REFERENCE = {
    "1k": {
        "random": (499.0, 499.0), "cca": (15.7, 24.8), "pwc": (5.2, 5.1),
        "pwc_star": (5.0, 5.3), "pwc_pp": (3.3, 3.5),
        "adamine_sem": (21.1, 21.1), "adamine_ins": (1.5, 1.6),
        "adamine_ins_cls": (1.1, 1.2), "adamine_avg": (2.3, 2.2),
        "adamine_ingr": (4.9, 5.0), "adamine_instr": (3.9, 3.7),
        "adamine": (1.0, 1.0),
    },
    "10k": {
        "pwc_pp": (34.6, 35.0), "adamine_sem": (207.3, 205.4),
        "adamine_ins": (15.4, 15.8), "adamine_ins_cls": (14.8, 15.2),
        "adamine_avg": (24.6, 24.0), "adamine_ingr": (52.8, 53.8),
        "adamine_instr": (39.0, 39.2), "adamine": (13.2, 12.2),
    },
}

_METRICS = ("MedR", "R@1", "R@5", "R@10")


def format_metric(mean: float, std: float) -> str:
    """Render ``mean ± std`` the way the paper's tables do."""
    return f"{mean:.1f}±{std:.1f}"


def result_row(name: str, result: ProtocolResult) -> str:
    """One table line: scenario name + both directions' metrics."""
    cells = [f"{name:<18}"]
    for direction in (result.image_to_recipe, result.recipe_to_image):
        for metric in _METRICS:
            mean, std = direction[metric]
            cells.append(f"{format_metric(mean, std):>12}")
    return " ".join(cells)


def format_results_table(rows: list[tuple[str, ProtocolResult]],
                         title: str = "") -> str:
    """Render a full paper-style table for a list of scenario results."""
    header_cells = [f"{'scenario':<18}"]
    for direction in ("im->rec", "rec->im"):
        for metric in _METRICS:
            header_cells.append(f"{direction + ' ' + metric:>12}")
    lines = []
    if title:
        lines.append(title)
    lines.append(" ".join(header_cells))
    lines.append("-" * len(lines[-1]))
    for name, result in rows:
        lines.append(result_row(name, result))
    return "\n".join(lines)
