"""Table 3 — state-of-the-art comparison (1k and 10k setups).

Rows: Random, CCA, PWC*, PWC++, every AdaMine scenario, AdaMine.
Expected shape (MedR, lower is better):

* Random ≈ bag_size / 2; CCA and AdaMine_sem far behind triplet models;
* AdaMine < AdaMine_ins+cls < AdaMine_ins < AdaMine_avg;
* AdaMine ≪ PWC++ ≤ PWC*;
* ingredient-only / instruction-only ablations clearly degraded.
"""

from __future__ import annotations

import argparse

from ..retrieval import ProtocolResult
from .runner import ExperimentRunner
from .tables import format_results_table

__all__ = ["TRAINED_SCENARIOS", "run", "main"]

TRAINED_SCENARIOS = (
    "pwc_star", "pwc_pp", "adamine_sem", "adamine_ins", "adamine_ins_cls",
    "adamine_avg", "adamine_ingr", "adamine_instr", "adamine",
)


def run(runner: ExperimentRunner, setups: tuple[str, ...] = ("1k", "10k")
        ) -> dict[str, dict[str, ProtocolResult]]:
    """Evaluate all baselines + scenarios; returns results[setup][name]."""
    results: dict[str, dict[str, ProtocolResult]] = {}
    for setup in setups:
        per_setup = {"random": runner.random_result(setup),
                     "cca": runner.cca_result(setup)}
        for name in TRAINED_SCENARIOS:
            per_setup[name] = runner.evaluate(name, setup=setup)
        results[setup] = per_setup
    return results


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench")
    args = parser.parse_args(argv)
    runner = ExperimentRunner(scale=args.scale, verbose=True)
    results = run(runner)
    for setup, per_setup in results.items():
        bag = runner._protocol(setup).bag_size
        print(format_results_table(
            list(per_setup.items()),
            title=f"\nTable 3 ({setup} setup, bags of {bag}):"))


if __name__ == "__main__":
    main()
