"""Table 1 — impact of semantic information (10k setup).

Compares AdaMine_ins (retrieval loss only), AdaMine_ins+cls (retrieval
+ classification head, the strategy of [33]) and AdaMine (retrieval +
semantic loss) on the large-bag protocol, both directions.

Expected shape: AdaMine < AdaMine_ins+cls < AdaMine_ins on MedR.
"""

from __future__ import annotations

import argparse

from ..retrieval import ProtocolResult
from .runner import ExperimentRunner
from .tables import format_results_table

__all__ = ["SCENARIOS", "run", "main"]

SCENARIOS = ("adamine_ins", "adamine_ins_cls", "adamine")


def run(runner: ExperimentRunner) -> dict[str, ProtocolResult]:
    """Evaluate the three scenarios on the 10k-style setup."""
    return {name: runner.evaluate(name, setup="10k") for name in SCENARIOS}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench")
    args = parser.parse_args(argv)
    runner = ExperimentRunner(scale=args.scale, verbose=True)
    results = run(runner)
    print(format_results_table(
        list(results.items()),
        title="Table 1: impact of the semantic information (10k setup)"))


if __name__ == "__main__":
    main()
