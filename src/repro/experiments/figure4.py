"""Figure 4 — MedR as a function of the semantic weight λ.

Reproduces the paper's sweep over λ ∈ {0.1, 0.3, 0.5, 0.7, 0.9}: a
fairly flat curve for small λ with degradation once the semantic
grouping dominates the instance alignment (λ > 0.5).
"""

from __future__ import annotations

import argparse

from ..analysis import PAPER_LAMBDAS, LambdaSweepPoint, run_lambda_sweep
from .runner import ExperimentRunner

__all__ = ["run", "main"]


def run(runner: ExperimentRunner,
        lambdas: tuple[float, ...] = PAPER_LAMBDAS
        ) -> list[LambdaSweepPoint]:
    """Train AdaMine per λ on the runner's corpus; validation MedR."""
    return run_lambda_sweep(
        runner.featurizer, runner.train_corpus, runner.val_corpus,
        runner.num_classes, runner.scale.dataset.image_size,
        lambdas=lambdas, base_config=runner.scale.training,
        latent_dim=runner.scale.latent_dim,
        backbone=runner.scale.backbone,
        seed=runner.scale.dataset.seed)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench")
    args = parser.parse_args(argv)
    runner = ExperimentRunner(scale=args.scale, verbose=True)
    points = run(runner)
    print("Figure 4: validation MedR vs lambda")
    for point in points:
        bar = "#" * int(round(point.medr))
        print(f"  lambda={point.lambda_sem:.1f}  MedR={point.medr:5.1f}  {bar}")


if __name__ == "__main__":
    main()
