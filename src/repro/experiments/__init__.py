"""Experiment harness: one module per paper table/figure."""

from .configs import SCALES, ExperimentScale, get_scale
from .runner import ExperimentRunner
from .tables import (PAPER_REFERENCE, format_metric, format_results_table,
                     result_row)

__all__ = [
    "ExperimentScale", "SCALES", "get_scale",
    "ExperimentRunner",
    "format_metric", "result_row", "format_results_table",
    "PAPER_REFERENCE",
]
