"""Generate a markdown report of every reproduced experiment.

    python -m repro.experiments.report --scale bench --out report.md

The report contains one section per table/figure with the measured
numbers next to the paper's (where the paper reports them), plus the
latent-space diagnostics — the same content EXPERIMENTS.md snapshots.
"""

from __future__ import annotations

import argparse
import io
import time

from ..analysis import summarize_latent_space
from . import figure3, figure4, table1, table2, table3, table4, table5
from .runner import ExperimentRunner
from .tables import PAPER_REFERENCE

__all__ = ["generate_report", "main"]


def _metric_row(name: str, result, paper: tuple[float, float] | None) -> str:
    i2r = result.image_to_recipe
    r2i = result.recipe_to_image
    paper_text = (f"{paper[0]:.1f} / {paper[1]:.1f}" if paper else "—")
    return (f"| {name} | {paper_text} "
            f"| {i2r['MedR'][0]:.1f} / {r2i['MedR'][0]:.1f} "
            f"| {i2r['R@1'][0]:.1f} | {i2r['R@5'][0]:.1f} "
            f"| {i2r['R@10'][0]:.1f} |")


def _table_section(out, title: str, results: dict, setup: str) -> None:
    out.write(f"\n## {title}\n\n")
    out.write("| scenario | paper MedR (i2r/r2i) | measured MedR (i2r/r2i) "
              "| R@1 | R@5 | R@10 |\n")
    out.write("|---|---|---|---|---|---|\n")
    reference = PAPER_REFERENCE.get(setup, {})
    for name, result in results.items():
        out.write(_metric_row(name, result, reference.get(name)) + "\n")


def generate_report(runner: ExperimentRunner) -> str:
    """Run every experiment on ``runner`` and render markdown."""
    out = io.StringIO()
    scale = runner.scale
    out.write("# AdaMine reproduction report\n\n")
    out.write(f"scale `{scale.name}`: {scale.dataset.num_pairs} pairs, "
              f"{scale.dataset.num_classes} classes, "
              f"{scale.dataset.image_size}px images, "
              f"{scale.training.epochs} epochs, "
              f"λ={scale.training.lambda_sem}, "
              f"backbone `{scale.backbone}`\n")
    out.write(f"\nbags: 1k-style {scale.small_bag}, "
              f"10k-style {scale.large_bag} "
              f"(paper: (1000, 10) and (10000, 5))\n")

    results1 = table1.run(runner)
    _table_section(out, "Table 1 — semantic information (10k-style)",
                   results1, "10k")

    results3 = table3.run(runner)
    for setup in ("1k", "10k"):
        _table_section(out, f"Table 3 — SOTA comparison ({setup}-style)",
                       results3[setup], setup)

    results2 = table2.run(runner)
    out.write("\n## Table 2 — recipe-to-image neighbourhoods\n\n")
    out.write(f"mean same-class fraction in the top-5: "
              f"AdaMine {results2.mean_same_class_fraction('adamine'):.2f},"
              f" AdaMine_ins "
              f"{results2.mean_same_class_fraction('adamine_ins'):.2f}\n")

    results4 = table4.run(runner)
    out.write("\n## Table 4 — ingredient-to-image within 'pizza'\n\n")
    out.write("| ingredient | top-5 hit-rate |\n|---|---|\n")
    for ingredient, result in results4.items():
        out.write(f"| {ingredient} | {result.hit_rate:.2f} |\n")

    out.write("\n## Table 5 — removing an ingredient\n\n")
    try:
        results5 = table5.run(runner)
        out.write(f"containment with broccoli {results5.mean_with_rate:.2f}"
                  f" → after removal {results5.mean_without_rate:.2f} "
                  f"(effect {results5.mean_effect:+.2f}, "
                  f"{len(results5.comparisons)} queries)\n")
    except ValueError as error:
        out.write(f"skipped: {error}\n")

    resultsf3 = figure3.run(runner)
    out.write("\n## Figure 3 — latent-space structure\n\n")
    out.write("| model | kNN purity | pair distance | separation |\n")
    out.write("|---|---|---|---|\n")
    for side in (resultsf3.adamine_ins, resultsf3.adamine):
        out.write(f"| {side.scenario} | {side.knn_purity:.2f} "
                  f"| {side.pair_distance:.3f} | {side.separation:.2f} |\n")

    resultsf4 = figure4.run(runner)
    out.write("\n## Figure 4 — MedR vs λ\n\n")
    out.write("| λ | validation MedR |\n|---|---|\n")
    for point in resultsf4:
        out.write(f"| {point.lambda_sem:.1f} | {point.medr:.1f} |\n")

    model = runner.scenario("adamine")
    image_emb, recipe_emb = model.encode_corpus(runner.test_corpus)
    stats = summarize_latent_space(image_emb, recipe_emb)
    out.write("\n## Latent-space diagnostics (AdaMine)\n\n")
    out.write(f"alignment {stats.alignment:.3f}, "
              f"uniformity (images) {stats.uniformity_images:.3f}, "
              f"uniformity (recipes) {stats.uniformity_recipes:.3f}, "
              f"modality gap {stats.modality_gap:.3f}\n")
    return out.getvalue()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench")
    parser.add_argument("--out", default=None,
                        help="write the report here (default: stdout)")
    args = parser.parse_args(argv)
    started = time.time()
    runner = ExperimentRunner(scale=args.scale, verbose=True)
    report = generate_report(runner)
    report += (f"\n---\ngenerated in {time.time() - started:.0f}s at "
               f"scale {args.scale}\n")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)


if __name__ == "__main__":
    main()
