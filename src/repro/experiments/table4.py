"""Table 4 — ingredient-to-image within a class.

The paper searches single ingredients (mushrooms, pineapple, olives,
pepperoni, strawberries) *within the class pizza* and shows the top
retrieved images contain the requested ingredient. We reproduce the
exact query construction (ingredient word + mean instruction
embedding) and report the containment hit-rate of the top-k images.
"""

from __future__ import annotations

import argparse

from ..analysis import IngredientSearchResult, ingredient_to_image
from .runner import ExperimentRunner

__all__ = ["PAPER_INGREDIENTS", "run", "main"]

PAPER_INGREDIENTS = ("mushrooms", "pineapple", "olives", "pepperoni",
                     "strawberries")


def run(runner: ExperimentRunner,
        ingredients: tuple[str, ...] = PAPER_INGREDIENTS,
        class_name: str = "pizza", k: int = 5
        ) -> dict[str, IngredientSearchResult]:
    """Search each ingredient within ``class_name`` on the test split."""
    model = runner.scenario("adamine")
    class_id = runner.dataset.taxonomy[class_name].class_id
    results = {}
    for ingredient in ingredients:
        token = ingredient.replace(" ", "_")
        if token not in runner.featurizer.ingredient_vocab:
            continue  # too rare to appear in the train vocabulary
        results[ingredient] = ingredient_to_image(
            model, runner.featurizer, runner.dataset, runner.test_corpus,
            ingredient, k=k, class_id=class_id)
    return results


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench")
    args = parser.parse_args(argv)
    runner = ExperimentRunner(scale=args.scale, verbose=True)
    results = run(runner)
    print("Table 4: ingredient-to-image within class 'pizza'")
    for ingredient, result in results.items():
        print(f"  {ingredient:<14} hit-rate {result.hit_rate:.2f} "
              f"({[c for c in result.containment]})")


if __name__ == "__main__":
    main()
