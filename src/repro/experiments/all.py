"""Run every table and figure in one session.

    python -m repro.experiments.all --scale bench

Shares one :class:`ExperimentRunner`, so each scenario trains once.
"""

from __future__ import annotations

import argparse
import time

from . import figure3, figure4, table1, table2, table3, table4, table5
from .runner import ExperimentRunner
from .tables import format_results_table

__all__ = ["main"]


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench")
    args = parser.parse_args(argv)
    started = time.time()
    runner = ExperimentRunner(scale=args.scale, verbose=True)

    print("\n" + "=" * 70)
    results1 = table1.run(runner)
    print(format_results_table(list(results1.items()),
                               title="Table 1: semantic information (10k)"))

    print("\n" + "=" * 70)
    results3 = table3.run(runner)
    for setup, per_setup in results3.items():
        print(format_results_table(list(per_setup.items()),
                                   title=f"Table 3 ({setup} setup)"))
        print()

    print("=" * 70)
    results2 = table2.run(runner)
    print("Table 2: mean same-class fraction  "
          f"AdaMine={results2.mean_same_class_fraction('adamine'):.2f}  "
          f"AdaMine_ins="
          f"{results2.mean_same_class_fraction('adamine_ins'):.2f}")

    print("\n" + "=" * 70)
    results4 = table4.run(runner)
    print("Table 4: ingredient-to-image hit-rates within 'pizza'")
    for ingredient, result in results4.items():
        print(f"  {ingredient:<14} {result.hit_rate:.2f}")

    print("\n" + "=" * 70)
    try:
        results5 = table5.run(runner)
        print(f"Table 5: removing 'broccoli'  with={results5.mean_with_rate:.2f} "
              f"without={results5.mean_without_rate:.2f} "
              f"effect={results5.mean_effect:+.2f}")
    except ValueError as error:
        print(f"Table 5 skipped: {error}")

    print("\n" + "=" * 70)
    resultsf3 = figure3.run(runner)
    print("Figure 3: latent structure")
    for side in (resultsf3.adamine_ins, resultsf3.adamine):
        print(f"  {side.scenario:<12} purity {side.knn_purity:.2f}  "
              f"pair distance {side.pair_distance:.3f}  "
              f"separation {side.separation:.2f}")

    print("\n" + "=" * 70)
    resultsf4 = figure4.run(runner)
    print("Figure 4: MedR vs lambda")
    for point in resultsf4:
        print(f"  lambda={point.lambda_sem:.1f}  MedR={point.medr:5.1f}")

    print(f"\nall experiments done in {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
