"""Table 2 — recipe-to-image qualitative comparison.

For a handful of recipe queries, retrieve the top-5 test images with
AdaMine and with AdaMine_ins, and annotate each hit as the exact match
(green in the paper), a same-class image (blue) or an off-class image
(red). The paper's claim: AdaMine's neighbourhoods are more
semantically coherent, i.e. a higher same-class fraction at equal or
better match rank.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from ..analysis import RecipeToImageResult, recipe_to_image
from .runner import ExperimentRunner

__all__ = ["Table2Result", "run", "main"]


@dataclass(frozen=True)
class Table2Result:
    """Per-query side-by-side results for the two models."""

    adamine: list[RecipeToImageResult]
    adamine_ins: list[RecipeToImageResult]

    def mean_same_class_fraction(self, which: str = "adamine") -> float:
        results = getattr(self, which)
        return float(np.mean([r.same_class_fraction for r in results]))


def run(runner: ExperimentRunner, num_queries: int = 4,
        k: int = 5) -> Table2Result:
    """Pick queries from distinct head classes and retrieve with both
    models (like the paper's cucumber-salad / chicken / pizza /
    chocolate examples)."""
    corpus = runner.test_corpus
    rng = np.random.default_rng(runner.scale.dataset.seed)
    queries = []
    for class_id in np.unique(corpus.true_class_ids):
        rows = np.flatnonzero(corpus.true_class_ids == class_id)
        queries.append(int(rows[rng.integers(len(rows))]))
        if len(queries) == num_queries:
            break
    query_rows = np.array(queries)
    return Table2Result(
        adamine=recipe_to_image(runner.scenario("adamine"), runner.dataset,
                                corpus, query_rows, k=k),
        adamine_ins=recipe_to_image(runner.scenario("adamine_ins"),
                                    runner.dataset, corpus, query_rows,
                                    k=k),
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench")
    args = parser.parse_args(argv)
    runner = ExperimentRunner(scale=args.scale, verbose=True)
    result = run(runner)
    print("Table 2: recipe-to-image (top-5 relations per query)")
    for am, ins in zip(result.adamine, result.adamine_ins):
        print(f"\nquery: {am.query_title!r}")
        print("  AdaMine    :", [h.relation for h in am.hits],
              f"(match rank {am.match_rank})")
        print("  AdaMine_ins:", [h.relation for h in ins.hits],
              f"(match rank {ins.match_rank})")
    print(f"\nmean same-class fraction: "
          f"AdaMine={result.mean_same_class_fraction('adamine'):.2f} "
          f"AdaMine_ins={result.mean_same_class_fraction('adamine_ins'):.2f}")


if __name__ == "__main__":
    main()
