"""Table 5 — removing an ingredient from the query.

The paper takes a recipe with broccoli, retrieves top-4 images, then
deletes broccoli (from the ingredient list and from every instruction
mentioning it) and retrieves again: images with broccoli disappear
from the results. We run the same edit over several broccoli recipes
and report mean containment before and after.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from ..analysis import RemovalComparison, remove_ingredient_comparison
from .runner import ExperimentRunner

__all__ = ["Table5Result", "run", "main"]


@dataclass(frozen=True)
class Table5Result:
    """Aggregated removal effect over several query recipes."""

    ingredient: str
    comparisons: tuple[RemovalComparison, ...]

    @property
    def mean_with_rate(self) -> float:
        return float(np.mean([c.with_rate for c in self.comparisons]))

    @property
    def mean_without_rate(self) -> float:
        return float(np.mean([c.without_rate for c in self.comparisons]))

    @property
    def mean_effect(self) -> float:
        return self.mean_with_rate - self.mean_without_rate


def run(runner: ExperimentRunner, ingredient: str = "broccoli",
        max_queries: int = 5, k: int = 4) -> Table5Result:
    """Apply the removal edit to up to ``max_queries`` recipes that
    contain ``ingredient`` in the test split."""
    model = runner.scenario("adamine")
    corpus = runner.test_corpus
    rows = [row for row in range(len(corpus))
            if ingredient in runner.dataset[
                int(corpus.recipe_indices[row])].ingredients]
    if not rows:
        raise ValueError(f"no test recipe contains {ingredient!r}")
    comparisons = tuple(
        remove_ingredient_comparison(model, runner.featurizer,
                                     runner.dataset, corpus, row,
                                     ingredient, k=k)
        for row in rows[:max_queries])
    return Table5Result(ingredient, comparisons)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench")
    parser.add_argument("--ingredient", default="broccoli")
    args = parser.parse_args(argv)
    runner = ExperimentRunner(scale=args.scale, verbose=True)
    result = run(runner, ingredient=args.ingredient)
    print(f"Table 5: removing '{result.ingredient}' "
          f"({len(result.comparisons)} queries, top-4)")
    print(f"  containment with ingredient   : {result.mean_with_rate:.2f}")
    print(f"  containment after removal     : {result.mean_without_rate:.2f}")
    print(f"  removal effect                : {result.mean_effect:+.2f}")


if __name__ == "__main__":
    main()
