"""Figure 3 — t-SNE of the latent space, AdaMine_ins vs AdaMine.

The paper plots 400 matching pairs from 5 head classes and argues that
AdaMine (a) clusters classes and (b) shortens the traces between
matching pairs. We regenerate the map with our own t-SNE and report
quantitative proxies for both claims (kNN class purity, matched-pair
distance, class separation ratio) alongside the 2-D coordinates.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from ..analysis import (TSNE, class_separation_ratio, knn_purity,
                        matched_pair_distance)
from .runner import ExperimentRunner

__all__ = ["Figure3Side", "Figure3Result", "run", "main"]


@dataclass(frozen=True)
class Figure3Side:
    """One panel: map coordinates + structure metrics for one model."""

    scenario: str
    coordinates: np.ndarray     # (2n, 2): images then recipes
    class_ids: np.ndarray       # (2n,)
    knn_purity: float           # latent-space class purity
    pair_distance: float        # mean matched-pair cosine distance
    separation: float           # inter/intra class distance ratio


@dataclass(frozen=True)
class Figure3Result:
    adamine_ins: Figure3Side
    adamine: Figure3Side


def _panel(runner: ExperimentRunner, scenario: str, rows: np.ndarray,
           tsne_iterations: int) -> Figure3Side:
    corpus = runner.test_corpus.subset(rows)
    model = runner.scenario(scenario)
    image_emb, recipe_emb = model.encode_corpus(corpus)
    stacked = np.concatenate([image_emb, recipe_emb])
    classes = np.concatenate([corpus.true_class_ids,
                              corpus.true_class_ids])
    coordinates = TSNE(perplexity=min(15.0, len(stacked) / 4),
                       n_iter=tsne_iterations,
                       seed=runner.scale.dataset.seed
                       ).fit_transform(stacked)
    return Figure3Side(
        scenario=scenario,
        coordinates=coordinates,
        class_ids=classes,
        knn_purity=knn_purity(stacked, classes,
                              k=min(10, len(stacked) - 1)),
        pair_distance=matched_pair_distance(image_emb, recipe_emb),
        separation=class_separation_ratio(stacked, classes),
    )


def run(runner: ExperimentRunner, pairs_per_class: int = 20,
        num_classes: int = 5, tsne_iterations: int = 250) -> Figure3Result:
    """Sample pairs from the most frequent classes and map both models."""
    corpus = runner.test_corpus
    classes, counts = np.unique(corpus.true_class_ids, return_counts=True)
    head = classes[np.argsort(-counts)][:num_classes]
    rng = np.random.default_rng(runner.scale.dataset.seed)
    rows = []
    for class_id in head:
        members = np.flatnonzero(corpus.true_class_ids == class_id)
        take = min(pairs_per_class, len(members))
        rows.extend(rng.choice(members, size=take, replace=False))
    rows = np.array(sorted(rows))
    return Figure3Result(
        adamine_ins=_panel(runner, "adamine_ins", rows, tsne_iterations),
        adamine=_panel(runner, "adamine", rows, tsne_iterations),
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench")
    args = parser.parse_args(argv)
    runner = ExperimentRunner(scale=args.scale, verbose=True)
    result = run(runner)
    print("Figure 3: latent-space structure (higher purity/separation and "
          "lower pair distance = better)")
    for side in (result.adamine_ins, result.adamine):
        print(f"  {side.scenario:<12} kNN purity {side.knn_purity:.2f}  "
              f"pair distance {side.pair_distance:.3f}  "
              f"separation {side.separation:.2f}")


if __name__ == "__main__":
    main()
