"""Experiment scales.

The paper trains on 238k pairs for 80 epochs on a Titan X; this CPU
reproduction keeps the protocol's *shape* at configurable scales:

* ``test``  — seconds; used by the integration test suite.
* ``bench`` — a couple of minutes per scenario; used by the benchmark
  harness that regenerates every table/figure.
* ``full``  — tens of minutes; the closest CPU-tractable approximation,
  for manual runs (``python -m repro.experiments.table3 --scale full``).

The "1k" / "10k" retrieval setups (10 bags / 5 bags in the paper) keep
their bag-count structure with bag sizes scaled to the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.trainer import TrainingConfig
from ..data.generator import DatasetConfig

__all__ = ["ExperimentScale", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Everything that fixes the size of an experiment run."""

    name: str
    dataset: DatasetConfig
    training: TrainingConfig
    word_dim: int = 16
    sentence_dim: int = 16
    max_ingredients: int = 10
    max_sentences: int = 6
    latent_dim: int = 32
    backbone: str = "mlp"
    small_bag: tuple[int, int] = (100, 10)   # ("1k setup": size, bags)
    large_bag: tuple[int, int] = (500, 5)    # ("10k setup": size, bags)


SCALES: dict[str, ExperimentScale] = {
    "test": ExperimentScale(
        name="test",
        dataset=DatasetConfig(num_pairs=200, num_classes=6, image_size=12,
                              seed=0),
        training=TrainingConfig(epochs=10, freeze_epochs=0, batch_size=24,
                                learning_rate=3e-3, augment=False,
                                eval_bag_size=30, eval_num_bags=1),
        word_dim=12, sentence_dim=12, latent_dim=24, backbone="hist",
        small_bag=(20, 3), large_bag=(30, 2),
    ),
    "bench": ExperimentScale(
        name="bench",
        dataset=DatasetConfig(num_pairs=2000, num_classes=20, image_size=16,
                              image_noise=0.05, seed=0),
        # lambda_sem is 0.05 rather than the paper's 0.3: with 20 classes
        # instead of 1048, each class covers ~5% of the corpus and the
        # semantic pull is ~50x stronger relative to the instance task
        # (see EXPERIMENTS.md, calibration note).
        training=TrainingConfig(epochs=30, freeze_epochs=0, batch_size=50,
                                learning_rate=2e-3, lambda_sem=0.05,
                                augment=False,
                                eval_bag_size=150, eval_num_bags=2),
        word_dim=16, sentence_dim=16, latent_dim=32, backbone="hist",
        small_bag=(100, 10), large_bag=(250, 5),
    ),
    "full": ExperimentScale(
        name="full",
        dataset=DatasetConfig(num_pairs=6000, num_classes=20, image_size=24,
                              seed=0),
        training=TrainingConfig(epochs=20, freeze_epochs=4, batch_size=100,
                                learning_rate=1e-3, lambda_sem=0.1,
                                augment=True,
                                eval_bag_size=400, eval_num_bags=2),
        word_dim=24, sentence_dim=24, latent_dim=48, backbone="resnet",
        small_bag=(300, 10), large_bag=(900, 5),
    ),
}


def get_scale(scale: str | ExperimentScale) -> ExperimentScale:
    """Resolve a scale by name, passing through explicit scales."""
    if isinstance(scale, ExperimentScale):
        return scale
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; "
                         f"expected one of {sorted(SCALES)}")
    return SCALES[scale]
