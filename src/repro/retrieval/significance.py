"""Paired bootstrap significance testing for retrieval comparisons.

When two models are evaluated on the same query set, the per-query
match ranks are paired. The paired bootstrap resamples queries with
replacement and measures how often the sign of the metric difference
flips — a standard, distribution-free way to decide whether "model A's
MedR is lower than model B's" is more than bag-sampling luck.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distance import cosine_distance_matrix
from .ranking import ranks_of_matches

__all__ = ["BootstrapComparison", "paired_bootstrap", "compare_models"]


@dataclass(frozen=True)
class BootstrapComparison:
    """Outcome of a paired bootstrap test on a rank-based metric."""

    metric: str
    value_a: float
    value_b: float
    p_value: float          # P(metric_a >= metric_b) under resampling
    num_samples: int

    @property
    def significant(self) -> bool:
        """True when A beats B at the 5% level."""
        return self.p_value < 0.05


def _metric(ranks: np.ndarray, metric: str) -> float:
    if metric == "MedR":
        return float(np.median(ranks))
    if metric.startswith("R@"):
        k = int(metric[2:])
        return float(100.0 * (ranks <= k).mean())
    raise ValueError(f"unknown metric {metric!r}")


def paired_bootstrap(ranks_a: np.ndarray, ranks_b: np.ndarray,
                     metric: str = "MedR", num_samples: int = 2000,
                     seed: int = 0) -> BootstrapComparison:
    """Test whether model A beats model B on paired per-query ranks.

    For MedR "beats" means lower; for R@K it means higher. The reported
    p-value is the bootstrap probability that A does **not** beat B.
    """
    ranks_a = np.asarray(ranks_a)
    ranks_b = np.asarray(ranks_b)
    if ranks_a.shape != ranks_b.shape or ranks_a.ndim != 1:
        raise ValueError("need two aligned 1-D rank arrays")
    if num_samples < 100:
        raise ValueError("num_samples too small for a stable p-value")
    n = len(ranks_a)
    rng = np.random.default_rng(seed)
    lower_is_better = metric == "MedR"
    losses = 0
    for __ in range(num_samples):
        rows = rng.integers(0, n, size=n)
        a = _metric(ranks_a[rows], metric)
        b = _metric(ranks_b[rows], metric)
        if (a >= b) if lower_is_better else (a <= b):
            losses += 1
    return BootstrapComparison(
        metric=metric,
        value_a=_metric(ranks_a, metric),
        value_b=_metric(ranks_b, metric),
        p_value=losses / num_samples,
        num_samples=num_samples)


def compare_models(image_a: np.ndarray, recipe_a: np.ndarray,
                   image_b: np.ndarray, recipe_b: np.ndarray,
                   metric: str = "MedR", num_samples: int = 2000,
                   seed: int = 0) -> BootstrapComparison:
    """Paired bootstrap over the image→recipe ranks of two models.

    All four embedding matrices must be row-aligned to the same pairs.
    """
    if not (len(image_a) == len(recipe_a) == len(image_b) == len(recipe_b)):
        raise ValueError("all embedding matrices must be aligned")
    ranks_a = ranks_of_matches(cosine_distance_matrix(image_a, recipe_a))
    ranks_b = ranks_of_matches(cosine_distance_matrix(image_b, recipe_b))
    return paired_bootstrap(ranks_a, ranks_b, metric=metric,
                            num_samples=num_samples, seed=seed)
