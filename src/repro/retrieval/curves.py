"""Rank-distribution analyses beyond MedR/R@K point metrics.

* :func:`recall_curve` — R@K for a whole sweep of K (recall curves are
  the standard companion plot to Table 3's point metrics);
* :func:`rank_histogram` — the distribution of match ranks;
* :func:`mean_reciprocal_rank` — MRR, a complementary point metric.
"""

from __future__ import annotations

import numpy as np

__all__ = ["recall_curve", "rank_histogram", "mean_reciprocal_rank"]


def recall_curve(ranks: np.ndarray, max_k: int | None = None
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(ks, recalls)`` with R@K in percent for K = 1..max_k."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        raise ValueError("no ranks")
    if max_k is None:
        max_k = int(ranks.max())
    if max_k < 1:
        raise ValueError("max_k must be >= 1")
    ks = np.arange(1, max_k + 1)
    sorted_ranks = np.sort(ranks)
    counts = np.searchsorted(sorted_ranks, ks, side="right")
    return ks, 100.0 * counts / ranks.size


def rank_histogram(ranks: np.ndarray, num_bins: int = 10,
                   max_rank: int | None = None
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of match ranks: ``(bin_edges, counts)``."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        raise ValueError("no ranks")
    if max_rank is None:
        max_rank = int(ranks.max())
    edges = np.linspace(1, max_rank + 1, num_bins + 1)
    counts, __ = np.histogram(ranks, bins=edges)
    return edges, counts


def mean_reciprocal_rank(ranks: np.ndarray) -> float:
    """MRR = mean(1 / rank); 1.0 is perfect retrieval."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        raise ValueError("no ranks")
    if (ranks < 1).any():
        raise ValueError("ranks are 1-based")
    return float((1.0 / ranks).mean())
