"""Rank computation for cross-modal retrieval.

Queries are rows of a distance matrix whose diagonal holds the
matching item (the paper's protocol: every query's ground truth is its
own pair in the other modality).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ranks_of_matches", "rank_items"]


def ranks_of_matches(distances: np.ndarray) -> np.ndarray:
    """1-based rank of each query's matching item.

    ``distances[i, j]`` is the distance from query ``i`` to candidate
    ``j``; the match of query ``i`` is candidate ``i``. Ties are broken
    pessimistically (the match ranks after equal-distance candidates),
    which makes reported metrics conservative.
    """
    distances = np.asarray(distances)
    n, m = distances.shape
    if n != m:
        raise ValueError(f"expected a square matrix, got {distances.shape}")
    match_distance = np.diag(distances)[:, None]
    better = (distances < match_distance).sum(axis=1)
    ties = (distances == match_distance).sum(axis=1) - 1  # exclude the match
    return better + ties + 1


def rank_items(distances_row: np.ndarray, k: int | None = None) -> np.ndarray:
    """Candidate indices sorted by increasing distance (top-``k``)."""
    order = np.argsort(distances_row, kind="stable")
    if k is not None:
        order = order[:k]
    return order
