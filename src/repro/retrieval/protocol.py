"""The paper's bag-resampling evaluation protocol (§4.2).

From the test set, sample ``num_bags`` unique subsets of ``bag_size``
matching pairs; within each bag, use every item of one modality as a
query against all ``bag_size`` candidates of the other modality, in
both directions; report mean ± std of MedR and R@K over bags.

The paper uses 10 bags of 1 000 ("1k setup") and 5 bags of 10 000
("10k setup"); both are configurable here so scaled-down corpora keep
the protocol's exact shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distance import cosine_distance_matrix
from .metrics import RetrievalMetrics, aggregate_metrics
from .ranking import ranks_of_matches

__all__ = ["ProtocolResult", "RetrievalProtocol", "evaluate_embeddings"]


@dataclass(frozen=True)
class ProtocolResult:
    """Aggregated two-direction retrieval results.

    ``image_to_recipe`` / ``recipe_to_image`` map metric names to
    ``(mean, std)`` tuples over bags.
    """

    image_to_recipe: dict[str, tuple[float, float]]
    recipe_to_image: dict[str, tuple[float, float]]
    bag_size: int
    num_bags: int

    def medr(self, direction: str = "image_to_recipe") -> float:
        return getattr(self, direction)["MedR"][0]

    def summary(self) -> str:
        def fmt(metrics):
            return ", ".join(f"{k}={m:.1f}±{s:.1f}"
                             for k, (m, s) in metrics.items())

        return (f"im->rec: {fmt(self.image_to_recipe)}\n"
                f"rec->im: {fmt(self.recipe_to_image)}")


class RetrievalProtocol:
    """Resampled-bag evaluation of a pair of embedding matrices.

    Parameters
    ----------
    bag_size:
        Matching pairs per bag (1 000 or 10 000 in the paper).
    num_bags:
        Number of resampled bags (10 and 5 in the paper).
    seed:
        Bag-sampling seed.
    """

    def __init__(self, bag_size: int = 1000, num_bags: int = 10,
                 seed: int = 0):
        if bag_size < 2:
            raise ValueError("bag_size must be >= 2")
        if num_bags < 1:
            raise ValueError("num_bags must be >= 1")
        self.bag_size = bag_size
        self.num_bags = num_bags
        self.seed = seed

    def sample_bags(self, population: int) -> list[np.ndarray]:
        """Draw ``num_bags`` subsets of ``bag_size`` indices.

        Bags are sampled without replacement within a bag; if the
        population is smaller than ``bag_size``, the whole population
        forms each bag (degenerate but well-defined for tiny tests).
        """
        rng = np.random.default_rng(self.seed)
        size = min(self.bag_size, population)
        return [rng.choice(population, size=size, replace=False)
                for __ in range(self.num_bags)]

    def evaluate(self, image_embeddings: np.ndarray,
                 recipe_embeddings: np.ndarray) -> ProtocolResult:
        """Run the full two-direction protocol.

        Row ``i`` of both matrices must correspond to the same pair.
        """
        if image_embeddings.shape != recipe_embeddings.shape:
            raise ValueError("embedding matrices must be aligned")
        n = len(image_embeddings)
        i2r_bags, r2i_bags = [], []
        for bag in self.sample_bags(n):
            distances = cosine_distance_matrix(image_embeddings[bag],
                                               recipe_embeddings[bag])
            i2r_bags.append(RetrievalMetrics.from_ranks(
                ranks_of_matches(distances)))
            r2i_bags.append(RetrievalMetrics.from_ranks(
                ranks_of_matches(distances.T)))
        return ProtocolResult(
            image_to_recipe=aggregate_metrics(i2r_bags),
            recipe_to_image=aggregate_metrics(r2i_bags),
            bag_size=min(self.bag_size, n),
            num_bags=self.num_bags,
        )


def evaluate_embeddings(image_embeddings: np.ndarray,
                        recipe_embeddings: np.ndarray,
                        bag_size: int = 1000, num_bags: int = 10,
                        seed: int = 0) -> ProtocolResult:
    """One-call convenience wrapper around :class:`RetrievalProtocol`."""
    protocol = RetrievalProtocol(bag_size=bag_size, num_bags=num_bags,
                                 seed=seed)
    return protocol.evaluate(image_embeddings, recipe_embeddings)
