"""Cosine distances over plain numpy embeddings (evaluation path).

Training-time distances live in :mod:`repro.autograd.functional`; this
module is the inference/evaluation twin operating on raw arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["normalize_rows", "cosine_distance_matrix", "cosine_distance",
           "cosine_distances_to"]


def normalize_rows(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """L2-normalize each row of ``x``."""
    x = np.asarray(x, dtype=np.float64)
    norms = np.linalg.norm(x, axis=-1, keepdims=True)
    return x / np.maximum(norms, eps)


def cosine_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs cosine distance: (n, d) x (m, d) -> (n, m)."""
    return 1.0 - normalize_rows(a) @ normalize_rows(b).T


def cosine_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise cosine distance between two aligned matrices."""
    a = normalize_rows(a)
    b = normalize_rows(b)
    return 1.0 - (a * b).sum(axis=-1)


def cosine_distances_to(rows: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Cosine distance from one query ``vector`` to each unit-norm row.

    ``rows`` must already be L2-normalized (index embeddings are).  The
    reduction is a per-row pairwise sum over the feature axis, whose
    result depends only on the row contents — unlike the BLAS matmul
    path, whose kernel choice (and hence last-ulp rounding) varies with
    the matrix shape.  That shape-independence is what lets a sharded
    index return distances bitwise-identical to the monolithic one:
    each shard holds a row subset, and subsetting must not move a bit.
    """
    query = normalize_rows(np.asarray(vector,
                                      dtype=np.float64).reshape(1, -1))[0]
    return 1.0 - np.add.reduce(rows * query, axis=1)
