"""Cosine distances over plain numpy embeddings (evaluation path).

Training-time distances live in :mod:`repro.autograd.functional`; this
module is the inference/evaluation twin operating on raw arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["normalize_rows", "cosine_distance_matrix", "cosine_distance"]


def normalize_rows(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """L2-normalize each row of ``x``."""
    x = np.asarray(x, dtype=np.float64)
    norms = np.linalg.norm(x, axis=-1, keepdims=True)
    return x / np.maximum(norms, eps)


def cosine_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs cosine distance: (n, d) x (m, d) -> (n, m)."""
    return 1.0 - normalize_rows(a) @ normalize_rows(b).T


def cosine_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise cosine distance between two aligned matrices."""
    a = normalize_rows(a)
    b = normalize_rows(b)
    return 1.0 - (a * b).sum(axis=-1)
