"""Cross-modal retrieval metrics: MedR and R@K.

Matches §4.2 of the paper: the median retrieval rank (MedR, lower is
better) and the recall percentage at top K (R@K in [0, 100], higher is
better), both computed over all queries of a bag and then aggregated
(mean ± std) over bags.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["median_rank", "recall_at_k", "RetrievalMetrics",
           "aggregate_metrics"]


def median_rank(ranks: np.ndarray) -> float:
    """Median of 1-based match ranks (MedR)."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        raise ValueError("no ranks to aggregate")
    return float(np.median(ranks))


def recall_at_k(ranks: np.ndarray, k: int) -> float:
    """Percentage of queries whose match ranks in the top ``k``."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        raise ValueError("no ranks to aggregate")
    if k < 1:
        raise ValueError("k must be >= 1")
    return float(100.0 * (ranks <= k).mean())


@dataclass(frozen=True)
class RetrievalMetrics:
    """MedR and R@{1,5,10} for one retrieval direction on one bag."""

    medr: float
    r_at_1: float
    r_at_5: float
    r_at_10: float

    @classmethod
    def from_ranks(cls, ranks: np.ndarray) -> "RetrievalMetrics":
        return cls(
            medr=median_rank(ranks),
            r_at_1=recall_at_k(ranks, 1),
            r_at_5=recall_at_k(ranks, 5),
            r_at_10=recall_at_k(ranks, 10),
        )

    def as_dict(self) -> dict[str, float]:
        return {"MedR": self.medr, "R@1": self.r_at_1,
                "R@5": self.r_at_5, "R@10": self.r_at_10}

    def summary(self) -> str:
        """One-line human rendering (CLI probe/monitor output)."""
        return (f"MedR {self.medr:.1f}  R@1 {self.r_at_1:.1f}%  "
                f"R@5 {self.r_at_5:.1f}%  R@10 {self.r_at_10:.1f}%")


def aggregate_metrics(per_bag: list[RetrievalMetrics]
                      ) -> dict[str, tuple[float, float]]:
    """Mean ± std of each metric across bags (paper's reporting format)."""
    if not per_bag:
        raise ValueError("no bags to aggregate")
    result = {}
    for key in ("MedR", "R@1", "R@5", "R@10"):
        values = np.array([m.as_dict()[key] for m in per_bag])
        result[key] = (float(values.mean()), float(values.std()))
    return result
