"""Exact nearest-neighbour index over latent embeddings.

Backs the qualitative experiments (Tables 2, 4, 5) and the serving
layer: retrieve the closest images for an arbitrary query vector,
optionally constrained to one semantic class (the paper's "within the
class pizza" search).

Single-query distances use a shape-stable kernel
(:func:`~repro.retrieval.distance.cosine_distances_to`) so an index
built over any row subset returns bitwise-identical distances for
those rows — the invariant the sharded cluster
(:mod:`repro.serving.cluster`) relies on to merge per-shard top-k into
exactly the monolithic result.  Batched queries
(:meth:`NearestNeighborIndex.query_batch`) instead use one BLAS matmul
for throughput; their distances agree with the single-query path to
within one ulp but are not guaranteed bit-identical.
"""

from __future__ import annotations

import numpy as np

from .distance import (cosine_distance_matrix, cosine_distances_to,
                       normalize_rows)

__all__ = ["NearestNeighborIndex"]


class NearestNeighborIndex:
    """Brute-force cosine index with optional per-item class metadata."""

    def __init__(self, embeddings: np.ndarray,
                 ids: np.ndarray | None = None,
                 class_ids: np.ndarray | None = None):
        self.embeddings = normalize_rows(embeddings)
        n = len(self.embeddings)
        self.ids = (np.arange(n) if ids is None
                    else np.asarray(ids, dtype=np.int64))
        if len(self.ids) != n:
            raise ValueError("ids must align with embeddings")
        self.class_ids = (None if class_ids is None
                          else np.asarray(class_ids, dtype=np.int64))
        if self.class_ids is not None and len(self.class_ids) != n:
            raise ValueError("class_ids must align with embeddings")

    @classmethod
    def from_normalized(cls, embeddings: np.ndarray,
                        ids: np.ndarray,
                        class_ids: np.ndarray | None = None
                        ) -> "NearestNeighborIndex":
        """Adopt already-normalized rows verbatim (no re-normalize).

        The constructor normalizes, which is correct for raw vectors
        but moves the last ulp of rows that are already unit-norm —
        re-normalization is not bitwise idempotent.  Snapshot loaders
        (streaming-ingest base folds) use this path so a round trip
        through disk reproduces distances bit for bit.
        """
        dup = object.__new__(cls)
        dup.embeddings = np.asarray(embeddings, dtype=np.float64).copy()
        if dup.embeddings.ndim != 2:
            raise ValueError("embeddings must be 2-D")
        dup.ids = np.asarray(ids, dtype=np.int64).copy()
        if len(dup.ids) != len(dup.embeddings):
            raise ValueError("ids must align with embeddings")
        dup.class_ids = (None if class_ids is None
                         else np.asarray(class_ids, dtype=np.int64).copy())
        if (dup.class_ids is not None
                and len(dup.class_ids) != len(dup.embeddings)):
            raise ValueError("class_ids must align with embeddings")
        return dup

    def __len__(self) -> int:
        return len(self.embeddings)

    # ------------------------------------------------------------------
    # Derived indexes (sharding / replica repair)
    # ------------------------------------------------------------------
    def subset(self, positions: np.ndarray,
               relabel: np.ndarray | None = None) -> "NearestNeighborIndex":
        """A new index over the rows at ``positions``.

        The already-normalized embedding rows are copied verbatim —
        re-normalizing near-unit rows can move the last ulp, which
        would break the shard/monolith bitwise-identity contract.
        ``relabel`` substitutes new ids for the subset (the cluster
        relabels shard items with their global row positions so merged
        results can be tie-broken and mapped back exactly).
        """
        positions = np.asarray(positions, dtype=np.int64)
        dup = object.__new__(NearestNeighborIndex)
        dup.embeddings = self.embeddings[positions].copy()
        if relabel is None:
            dup.ids = self.ids[positions].copy()
        else:
            dup.ids = np.asarray(relabel, dtype=np.int64).copy()
            if len(dup.ids) != len(positions):
                raise ValueError("relabel must align with positions")
        dup.class_ids = (None if self.class_ids is None
                         else self.class_ids[positions].copy())
        return dup

    def clone(self) -> "NearestNeighborIndex":
        """Deep copy with embeddings copied verbatim (no re-normalize).

        Used by cluster anti-entropy to rebuild a dead or corrupted
        replica from a healthy sibling without disturbing a single bit
        of the surviving data.
        """
        return self.subset(np.arange(len(self.embeddings)))

    def append_rows(self, rows: np.ndarray, ids: np.ndarray,
                    class_ids: np.ndarray | None = None
                    ) -> "NearestNeighborIndex":
        """A new index with ``rows`` appended — copied verbatim.

        ``rows`` must already be unit-normalized (the caller normalized
        them exactly once, at ingest time); like :meth:`subset`, this
        path never re-normalizes, so folding a delta overlay into a new
        base cannot perturb a single existing distance bit.  ``ids``
        aligns with ``rows``; ``class_ids`` is required iff the base
        carries class metadata.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.embeddings.shape[1]:
            raise ValueError(
                f"rows must be (n, {self.embeddings.shape[1]}); "
                f"got {rows.shape}")
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) != len(rows):
            raise ValueError("ids must align with rows")
        dup = object.__new__(NearestNeighborIndex)
        dup.embeddings = np.concatenate([self.embeddings, rows])
        dup.ids = np.concatenate([self.ids, ids])
        if self.class_ids is None:
            if class_ids is not None:
                raise ValueError("index built without class metadata")
            dup.class_ids = None
        else:
            if class_ids is None:
                raise ValueError(
                    "class_ids required: index carries class metadata")
            class_ids = np.asarray(class_ids, dtype=np.int64)
            if len(class_ids) != len(rows):
                raise ValueError("class_ids must align with rows")
            dup.class_ids = np.concatenate([self.class_ids, class_ids])
        return dup

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def pool_size(self, class_id: int | None = None) -> int:
        """Number of candidates a query with this ``class_id`` ranks.

        This is the upper bound on how many results :meth:`query` can
        return for that constraint; callers needing exactly ``k``
        results should check it (or pass ``strict=True``).
        """
        if class_id is None:
            return len(self.embeddings)
        if self.class_ids is None:
            raise ValueError("index built without class metadata")
        return int(np.count_nonzero(self.class_ids == class_id))

    def _candidates(self, k: int, class_id: int | None,
                    strict: bool,
                    mask: np.ndarray | None = None) -> np.ndarray:
        if k < 1:
            raise ValueError("k must be >= 1")
        candidates = np.arange(len(self.embeddings))
        if class_id is not None:
            if self.class_ids is None:
                raise ValueError("index built without class metadata")
            candidates = np.flatnonzero(self.class_ids == class_id)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if len(mask) != len(self.embeddings):
                raise ValueError("mask must align with embeddings")
            candidates = candidates[mask[candidates]]
        if strict and candidates.size < k:
            raise ValueError(
                f"k={k} exceeds the candidate pool of {candidates.size}"
                + ("" if class_id is None else f" for class {class_id}"))
        return candidates

    def query(self, vector: np.ndarray, k: int = 5,
              class_id: int | None = None, strict: bool = False,
              mask: np.ndarray | None = None
              ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` ``(ids, distances)`` for one query vector.

        ``class_id`` restricts candidates to one class (requires the
        index to have been built with ``class_ids``).

        Contract: returns ``min(k, pool)`` pairs, where ``pool`` is
        the candidate count for the constraint (see
        :meth:`pool_size`) — a class-filtered pool smaller than ``k``
        yields fewer results rather than padding with junk; an *empty*
        pool yields an empty pair.  Pass ``strict=True`` to raise
        :class:`ValueError` instead whenever ``k`` exceeds the pool.

        Ties are broken by candidate position (stable sort), so equal
        distances resolve to the lower row — the same order the
        cluster's merge reproduces across shards.

        ``mask`` is an optional per-row liveness filter aligned with
        the embedding rows; masked-out rows are excluded from the
        candidate pool (the streaming-ingest overlay uses it to hide
        tombstoned base rows without touching the frozen arrays).
        """
        candidates, distances = self.query_positions(
            vector, k=k, class_id=class_id, strict=strict, mask=mask)
        return self.ids[candidates], distances

    def query_positions(self, vector: np.ndarray, k: int = 5,
                        class_id: int | None = None,
                        strict: bool = False,
                        mask: np.ndarray | None = None
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` ``(row positions, distances)`` for one vector.

        Same contract as :meth:`query` but returns raw row positions
        instead of ids — the form the delta overlay merges on, since
        positions are the tie-break key of the cluster's
        ``(distance, position)`` lexsort.
        """
        candidates = self._candidates(k, class_id, strict, mask=mask)
        if candidates.size == 0:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64))
        distances = cosine_distances_to(self.embeddings[candidates],
                                        vector)
        order = np.argsort(distances, kind="stable")[:k]
        return candidates[order], distances[order]

    def query_batch(self, vectors: np.ndarray, k: int = 5,
                    class_id: int | None = None, strict: bool = False,
                    mask: np.ndarray | None = None
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` for a whole batch of queries in one matmul.

        ``vectors`` is ``(B, d)``; returns ``(ids, distances)`` each of
        shape ``(B, min(k, pool))``, row ``b`` being the same result
        :meth:`query` gives for ``vectors[b]`` (distances may differ in
        the last ulp: the batched path trades the shape-stable kernel
        for one BLAS call over all queries).  Pool semantics match
        :meth:`query`: an empty pool yields ``(B, 0)`` arrays unless
        ``strict``.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError(
                f"vectors must be 2-D (batch, dim); got {vectors.shape}")
        candidates = self._candidates(k, class_id, strict, mask=mask)
        if candidates.size == 0:
            return (np.empty((len(vectors), 0), dtype=np.int64),
                    np.empty((len(vectors), 0), dtype=np.float64))
        distances = cosine_distance_matrix(vectors,
                                           self.embeddings[candidates])
        order = np.argsort(distances, axis=1,
                           kind="stable")[:, :min(k, candidates.size)]
        return (self.ids[candidates[order]],
                np.take_along_axis(distances, order, axis=1))
