"""Exact nearest-neighbour index over latent embeddings.

Backs the qualitative experiments (Tables 2, 4, 5): retrieve the
closest images for an arbitrary query vector, optionally constrained
to one semantic class (the paper's "within the class pizza" search).
"""

from __future__ import annotations

import numpy as np

from .distance import cosine_distance_matrix, normalize_rows

__all__ = ["NearestNeighborIndex"]


class NearestNeighborIndex:
    """Brute-force cosine index with optional per-item class metadata."""

    def __init__(self, embeddings: np.ndarray,
                 ids: np.ndarray | None = None,
                 class_ids: np.ndarray | None = None):
        self.embeddings = normalize_rows(embeddings)
        n = len(self.embeddings)
        self.ids = (np.arange(n) if ids is None
                    else np.asarray(ids, dtype=np.int64))
        if len(self.ids) != n:
            raise ValueError("ids must align with embeddings")
        self.class_ids = (None if class_ids is None
                          else np.asarray(class_ids, dtype=np.int64))
        if self.class_ids is not None and len(self.class_ids) != n:
            raise ValueError("class_ids must align with embeddings")

    def __len__(self) -> int:
        return len(self.embeddings)

    def pool_size(self, class_id: int | None = None) -> int:
        """Number of candidates a query with this ``class_id`` ranks.

        This is the upper bound on how many results :meth:`query` can
        return for that constraint; callers needing exactly ``k``
        results should check it (or pass ``strict=True``).
        """
        if class_id is None:
            return len(self.embeddings)
        if self.class_ids is None:
            raise ValueError("index built without class metadata")
        return int(np.count_nonzero(self.class_ids == class_id))

    def query(self, vector: np.ndarray, k: int = 5,
              class_id: int | None = None, strict: bool = False
              ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` ``(ids, distances)`` for one query vector.

        ``class_id`` restricts candidates to one class (requires the
        index to have been built with ``class_ids``).

        Contract: returns ``min(k, pool)`` pairs, where ``pool`` is
        the candidate count for the constraint (see
        :meth:`pool_size`) — a class-filtered pool smaller than ``k``
        yields fewer results rather than padding with junk.  Pass
        ``strict=True`` to raise :class:`ValueError` instead when
        ``k`` exceeds the pool.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        vector = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        candidates = np.arange(len(self.embeddings))
        if class_id is not None:
            if self.class_ids is None:
                raise ValueError("index built without class metadata")
            candidates = np.flatnonzero(self.class_ids == class_id)
            if candidates.size == 0:
                raise ValueError(f"no items of class {class_id} in index")
        if strict and candidates.size < k:
            raise ValueError(
                f"k={k} exceeds the candidate pool of {candidates.size}"
                + ("" if class_id is None else f" for class {class_id}"))
        distances = cosine_distance_matrix(
            vector, self.embeddings[candidates])[0]
        order = np.argsort(distances, kind="stable")[:k]
        return self.ids[candidates[order]], distances[order]
