"""Cross-modal retrieval engine: distances, ranking, metrics, protocol."""

from .distance import cosine_distance, cosine_distance_matrix, normalize_rows
from .ranking import rank_items, ranks_of_matches
from .metrics import (RetrievalMetrics, aggregate_metrics, median_rank,
                      recall_at_k)
from .protocol import ProtocolResult, RetrievalProtocol, evaluate_embeddings
from .index import NearestNeighborIndex
from .significance import (BootstrapComparison, compare_models,
                           paired_bootstrap)
from .curves import mean_reciprocal_rank, rank_histogram, recall_curve

__all__ = [
    "normalize_rows", "cosine_distance_matrix", "cosine_distance",
    "ranks_of_matches", "rank_items",
    "median_rank", "recall_at_k", "RetrievalMetrics", "aggregate_metrics",
    "RetrievalProtocol", "ProtocolResult", "evaluate_embeddings",
    "NearestNeighborIndex",
    "paired_bootstrap", "compare_models", "BootstrapComparison",
    "recall_curve", "rank_histogram", "mean_reciprocal_rank",
]
