"""Training schedules.

The paper's recipe (§4.4): freeze the vision backbone, train the text
branch and the two latent-space projections for 20 epochs, then
unfreeze the backbone and fine-tune everything for 60 more epochs.
:class:`TwoPhaseSchedule` encodes exactly that policy, with the epoch
counts made configurable so scaled-down runs keep the same shape.
"""

from __future__ import annotations

import math

from ..nn import Module
from .optimizer import Optimizer

__all__ = ["TwoPhaseSchedule", "StepDecay", "CosineDecay"]


class TwoPhaseSchedule:
    """Freeze a backbone for the first phase, unfreeze it afterwards.

    Parameters
    ----------
    backbone:
        Module to keep frozen during phase one (the image CNN).
    freeze_epochs:
        Number of initial epochs with the backbone frozen
        (20 in the paper).
    total_epochs:
        Overall epoch budget (80 in the paper).
    """

    def __init__(self, backbone: Module, freeze_epochs: int, total_epochs: int):
        if freeze_epochs < 0 or total_epochs < freeze_epochs:
            raise ValueError(
                f"invalid schedule: freeze={freeze_epochs}, total={total_epochs}"
            )
        self.backbone = backbone
        self.freeze_epochs = freeze_epochs
        self.total_epochs = total_epochs
        self._unfrozen = False
        if freeze_epochs > 0:
            backbone.freeze()
        else:
            self._unfrozen = True

    def on_epoch_start(self, epoch: int) -> None:
        """Notify the schedule that ``epoch`` (0-based) is beginning."""
        if not self._unfrozen and epoch >= self.freeze_epochs:
            self.backbone.unfreeze()
            self._unfrozen = True

    @property
    def backbone_frozen(self) -> bool:
        return not self._unfrozen


class StepDecay:
    """Multiply the learning rate by ``gamma`` every ``step`` epochs."""

    def __init__(self, optimizer: Optimizer, step: int, gamma: float = 0.1):
        if step < 1:
            raise ValueError("step must be >= 1")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step = step
        self.gamma = gamma
        self._base_lr = optimizer.lr

    def on_epoch_start(self, epoch: int) -> None:
        """Set the optimizer's lr for the given 0-based epoch."""
        self.optimizer.lr = self._base_lr * self.gamma ** (epoch // self.step)


class CosineDecay:
    """Cosine-anneal the learning rate over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 min_lr: float = 0.0):
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        if min_lr < 0:
            raise ValueError("min_lr must be non-negative")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self._base_lr = optimizer.lr

    def on_epoch_start(self, epoch: int) -> None:
        """Set the optimizer's lr for the given 0-based epoch."""
        progress = min(epoch / max(self.total_epochs - 1, 1), 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        self.optimizer.lr = self.min_lr + (self._base_lr
                                           - self.min_lr) * cosine
