"""Optimizers and training schedules."""

from .optimizer import Optimizer
from .sgd import SGD
from .adam import Adam
from .schedule import CosineDecay, StepDecay, TwoPhaseSchedule

__all__ = ["Optimizer", "SGD", "Adam", "TwoPhaseSchedule",
           "StepDecay", "CosineDecay"]
