"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn import Parameter
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """Vanilla SGD: ``p -= lr * grad`` with classical momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad
