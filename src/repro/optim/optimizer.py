"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, Sequence

from ..nn import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class holding a parameter list and the step/zero_grad API.

    Frozen parameters (``requires_grad == False``) are skipped at step
    time, which is how the two-phase backbone freezing interacts with a
    single optimizer instance.
    """

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: Sequence[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear the gradient buffers of all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError
