"""Adam optimizer (Kingma & Ba, 2014) — the paper's optimizer (lr 1e-4)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn import Parameter
from .optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-4,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Moments + step count + lr, for checkpoint/resume."""
        return {"t": self._t, "lr": self.lr,
                "m": [m.copy() for m in self._m],
                "v": [v.copy() for v in self._v]}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (validates moment shapes)."""
        moments_m, moments_v = state["m"], state["v"]
        if len(moments_m) != len(self.params) or \
                len(moments_v) != len(self.params):
            raise ValueError(
                f"optimizer state holds {len(moments_m)} moment pairs for "
                f"{len(self.params)} parameters")
        for i, (m, v) in enumerate(zip(moments_m, moments_v)):
            m = np.asarray(m, dtype=np.float64)
            v = np.asarray(v, dtype=np.float64)
            if m.shape != self._m[i].shape or v.shape != self._v[i].shape:
                raise ValueError(
                    f"optimizer moment {i} shape mismatch: "
                    f"{m.shape}/{v.shape} vs {self._m[i].shape}")
            # Copy into the existing moment buffers (same rationale as
            # Module.load_state_dict: rebinding changes buffer alignment
            # and with it the last ulp of subsequent BLAS results).
            np.copyto(self._m[i], m)
            np.copyto(self._v[i], v)
        self._t = int(state["t"])
        self.lr = float(state["lr"])

    def step(self) -> None:
        self._t += 1
        correction1 = 1.0 - self.beta1 ** self._t
        correction2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / correction1
            v_hat = v / correction2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
