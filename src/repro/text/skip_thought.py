"""SkipThoughtLite: a frozen sentence encoder for instruction text.

The paper uses skip-thought vectors (Kiros et al., 2015) as a frozen
word-level encoder of instruction sentences; only the sentence-level
LSTM above it is trained. Skip-thought trains an encoder so a
sentence's representation predicts its neighbouring sentences.

This scaled-down stand-in keeps that training signal: a linear encoder
over a bag of word2vec-style vectors, trained contrastively so that
*adjacent* instruction sentences (same recipe) score higher than random
sentences from other recipes. After :meth:`fit`, the encoder is frozen
and :meth:`encode` maps each sentence to a fixed vector — exactly the
role skip-thought plays in the AdaMine pipeline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tokenizer import tokenize
from .vocab import Vocabulary

__all__ = ["SkipThoughtLite"]


class SkipThoughtLite:
    """Frozen sentence encoder trained with a neighbour-sentence objective.

    Parameters
    ----------
    vocab:
        Instruction-word vocabulary.
    word_vectors:
        Pretrained word embedding table, shape ``(len(vocab), word_dim)``.
    dim:
        Output sentence embedding dimensionality.
    lr:
        Contrastive training learning rate.
    seed:
        RNG seed.
    """

    def __init__(self, vocab: Vocabulary, word_vectors: np.ndarray,
                 dim: int = 32, lr: float = 0.05, seed: int = 0):
        if word_vectors.shape[0] != len(vocab):
            raise ValueError("word_vectors rows must match vocabulary size")
        self.vocab = vocab
        self.word_vectors = np.asarray(word_vectors, dtype=np.float64)
        self.dim = dim
        self.lr = lr
        rng = np.random.default_rng(seed)
        word_dim = word_vectors.shape[1]
        scale = 1.0 / np.sqrt(word_dim)
        self.projection = rng.uniform(-scale, scale, size=(word_dim, dim))
        self._fitted = False

    # ------------------------------------------------------------------
    def _bag(self, sentence: str) -> np.ndarray:
        """Mean word vector of a sentence (zero vector if no known word)."""
        ids = [i for i in self.vocab.encode(tokenize(sentence)) if i > 1]
        if not ids:
            return np.zeros(self.word_vectors.shape[1])
        return self.word_vectors[ids].mean(axis=0)

    def encode(self, sentence: str) -> np.ndarray:
        """Map one sentence to its frozen embedding (unit-normalized)."""
        raw = np.tanh(self._bag(sentence) @ self.projection)
        norm = np.linalg.norm(raw)
        return raw / norm if norm > 0 else raw

    def encode_many(self, sentences: Sequence[str]) -> np.ndarray:
        """Encode a list of sentences to an ``(n, dim)`` matrix."""
        if not sentences:
            return np.zeros((0, self.dim))
        return np.stack([self.encode(s) for s in sentences])

    # ------------------------------------------------------------------
    def fit(self, documents: Sequence[Sequence[str]], epochs: int = 2,
            seed: int = 0) -> "SkipThoughtLite":
        """Contrastive pretraining on documents (lists of sentences).

        For each adjacent sentence pair (a, b) in a document, push
        ``enc(a)·enc(b)`` above ``enc(a)·enc(r)`` for a random sentence
        ``r`` drawn from another document (margin hinge on the linear
        pre-activation scores, SGD on the shared projection).
        """
        rng = np.random.default_rng(seed)
        bags = [[self._bag(s) for s in doc] for doc in documents]
        flat = [b for doc in bags for b in doc]
        if len(flat) < 3:
            raise ValueError("need at least 3 sentences to pretrain")
        flat = np.stack(flat)
        margin = 0.2
        for __ in range(epochs):
            for doc in bags:
                for i in range(len(doc) - 1):
                    anchor, positive = doc[i], doc[i + 1]
                    negative = flat[rng.integers(len(flat))]
                    self._hinge_step(anchor, positive, negative, margin)
        self._fitted = True
        return self

    def _hinge_step(self, anchor: np.ndarray, positive: np.ndarray,
                    negative: np.ndarray, margin: float) -> None:
        za = anchor @ self.projection
        zp = positive @ self.projection
        zn = negative @ self.projection
        # hinge on raw scores: want za·zp > za·zn + margin
        if za @ zp - za @ zn >= margin:
            return
        # d/dW of -(za·zp - za·zn): product-rule over the shared projection
        grad = -(np.outer(anchor, zp) + np.outer(positive, za)
                 - np.outer(anchor, zn) - np.outer(negative, za))
        self.projection -= self.lr * grad

    @property
    def is_fitted(self) -> bool:
        return self._fitted
