"""Skip-gram word2vec with negative sampling (Mikolov et al., 2013).

The paper initializes the ingredient branch with word2vec vectors
pretrained on the recipe corpus; this is a from-scratch numpy
implementation (manual gradients — no autograd graph needed) producing
those pretrained vectors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .vocab import Vocabulary

__all__ = ["Word2Vec"]


class Word2Vec:
    """Skip-gram with negative sampling over tokenized documents.

    Parameters
    ----------
    vocab:
        Vocabulary assigning ids; index 0 (padding) is never sampled.
    dim:
        Embedding dimensionality.
    window:
        Max distance between center and context words.
    negatives:
        Negative samples per positive pair.
    lr:
        SGD learning rate.
    seed:
        RNG seed for initialization and sampling.
    """

    def __init__(self, vocab: Vocabulary, dim: int = 32, window: int = 3,
                 negatives: int = 5, lr: float = 0.05, seed: int = 0):
        self.vocab = vocab
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.lr = lr
        self._rng = np.random.default_rng(seed)
        scale = 0.5 / dim
        self.input_vectors = self._rng.uniform(-scale, scale,
                                               size=(len(vocab), dim))
        self.output_vectors = np.zeros((len(vocab), dim))
        self._noise = None  # unigram^0.75 table, built at fit time

    # ------------------------------------------------------------------
    def fit(self, documents: Sequence[Sequence[str]],
            epochs: int = 3) -> "Word2Vec":
        """Train on tokenized documents; returns self."""
        encoded = [np.array(self.vocab.encode(doc), dtype=np.int64)
                   for doc in documents if len(doc) >= 2]
        if not encoded:
            raise ValueError("word2vec needs at least one document of >=2 tokens")
        self._build_noise_table(encoded)
        for __ in range(epochs):
            order = self._rng.permutation(len(encoded))
            for doc_index in order:
                self._train_document(encoded[doc_index])
        return self

    def _build_noise_table(self, encoded: list[np.ndarray]) -> None:
        counts = np.zeros(len(self.vocab))
        for doc in encoded:
            np.add.at(counts, doc, 1)
        counts[0] = 0.0  # never draw padding as a negative
        weights = counts ** 0.75
        total = weights.sum()
        if total == 0:
            raise ValueError("empty corpus")
        self._noise = weights / total

    def _train_document(self, doc: np.ndarray) -> None:
        length = len(doc)
        for center_pos in range(length):
            center = doc[center_pos]
            if center <= 1:  # skip pad/unk centers
                continue
            span = self._rng.integers(1, self.window + 1)
            lo = max(0, center_pos - span)
            hi = min(length, center_pos + span + 1)
            for context_pos in range(lo, hi):
                if context_pos == center_pos:
                    continue
                context = doc[context_pos]
                if context <= 1:
                    continue
                negatives = self._rng.choice(
                    len(self.vocab), size=self.negatives, p=self._noise)
                self._sgd_step(center, context, negatives)

    def _sgd_step(self, center: int, context: int,
                  negatives: np.ndarray) -> None:
        """One negative-sampling update (binary logistic per target)."""
        v = self.input_vectors[center]
        targets = np.concatenate(([context], negatives))
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        outs = self.output_vectors[targets]           # (k+1, d)
        scores = 1.0 / (1.0 + np.exp(-outs @ v))       # sigmoid
        gradient = (scores - labels)[:, None]          # (k+1, 1)
        grad_v = (gradient * outs).sum(axis=0)
        self.output_vectors[targets] -= self.lr * gradient * v[None, :]
        self.input_vectors[center] -= self.lr * grad_v

    # ------------------------------------------------------------------
    def vectors(self) -> np.ndarray:
        """Return the trained input embedding table (padding row zeroed)."""
        table = self.input_vectors.copy()
        table[0] = 0.0
        return table

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two tokens' vectors."""
        va = self.input_vectors[self.vocab[a]]
        vb = self.input_vectors[self.vocab[b]]
        denom = np.linalg.norm(va) * np.linalg.norm(vb)
        if denom == 0:
            return 0.0
        return float(va @ vb / denom)

    def most_similar(self, token: str, k: int = 5) -> list[tuple[str, float]]:
        """Return the ``k`` nearest tokens by cosine similarity."""
        index = self.vocab[token]
        norms = np.linalg.norm(self.input_vectors, axis=1)
        norms[norms == 0] = 1.0
        normalized = self.input_vectors / norms[:, None]
        sims = normalized @ normalized[index]
        sims[index] = -np.inf
        sims[:2] = -np.inf  # pad/unk
        best = np.argsort(-sims)[:k]
        return [(self.vocab.tokens[i], float(sims[i])) for i in best]
