"""Text substrate: tokenization, vocabulary, pretrained encoders."""

from .tokenizer import split_sentences, tokenize
from .vocab import PAD_TOKEN, UNK_TOKEN, Vocabulary
from .word2vec import Word2Vec
from .skip_thought import SkipThoughtLite

__all__ = [
    "tokenize", "split_sentences",
    "Vocabulary", "PAD_TOKEN", "UNK_TOKEN",
    "Word2Vec", "SkipThoughtLite",
]
