"""Vocabulary mapping tokens to integer ids.

Id 0 is the padding token and id 1 the unknown token, matching the
conventions of the embedding layer (padding row zeroed).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Vocabulary", "PAD_TOKEN", "UNK_TOKEN"]

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"


class Vocabulary:
    """Bidirectional token ↔ id mapping with frequency-based pruning."""

    def __init__(self, tokens: Iterable[str] = ()):
        self._token_to_id: dict[str, int] = {PAD_TOKEN: 0, UNK_TOKEN: 1}
        self._id_to_token: list[str] = [PAD_TOKEN, UNK_TOKEN]
        for token in tokens:
            self.add(token)

    @classmethod
    def from_corpus(cls, documents: Iterable[Sequence[str]],
                    min_count: int = 1,
                    max_size: int | None = None) -> "Vocabulary":
        """Build a vocabulary from tokenized documents.

        Tokens are added in decreasing frequency (ties broken
        alphabetically) so ids are stable across runs.
        """
        counts = Counter()
        for doc in documents:
            counts.update(doc)
        eligible = sorted(
            (token for token, n in counts.items() if n >= min_count),
            key=lambda t: (-counts[t], t),
        )
        if max_size is not None:
            eligible = eligible[: max(0, max_size - 2)]
        return cls(eligible)

    def add(self, token: str) -> int:
        """Insert ``token`` if new; return its id."""
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)
        return self._token_to_id[token]

    def encode(self, tokens: Sequence[str]) -> list[int]:
        """Map tokens to ids (unknowns to the UNK id)."""
        return [self._token_to_id.get(t, 1) for t in tokens]

    def decode(self, ids: Sequence[int]) -> list[str]:
        """Map ids back to tokens."""
        return [self._id_to_token[i] for i in ids]

    def encode_padded(self, tokens: Sequence[str], length: int) -> np.ndarray:
        """Encode and right-pad/truncate to ``length`` ids."""
        ids = self.encode(tokens)[:length]
        padded = np.zeros(length, dtype=np.int64)
        padded[: len(ids)] = ids
        return padded

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __getitem__(self, token: str) -> int:
        return self._token_to_id[token]

    @property
    def tokens(self) -> list[str]:
        return list(self._id_to_token)
