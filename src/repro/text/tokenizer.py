"""Minimal text tokenization for recipes.

Recipe1M preprocessing lower-cases text, strips punctuation and splits
on whitespace; this module reproduces that behaviour.
"""

from __future__ import annotations

import re

__all__ = ["tokenize", "split_sentences"]

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")
_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+")


def tokenize(text: str) -> list[str]:
    """Lower-case and split ``text`` into alphanumeric tokens."""
    return _TOKEN_RE.findall(text.lower())


def split_sentences(text: str) -> list[str]:
    """Split instruction text into sentences on terminal punctuation."""
    parts = _SENTENCE_RE.split(text.strip())
    return [p for p in (part.strip() for part in parts) if p]
