"""Command-line interface.

::

    python -m repro generate --out data/ --pairs 1000
    python -m repro train    --data data/ --scenario adamine --out run/
    python -m repro evaluate --data data/ --model run/ --setup 1k
    python -m repro search   --data data/ --model run/ \
                             --ingredients broccoli chicken
    python -m repro serve    --data data/ --model run/ \
                             --ingredients broccoli chicken --deadline 0.5 \
                             --shards 3 --replicas 2 --ingest-log wal/
    python -m repro ingest append --log-dir wal/ --data data/ \
                             --model run/ --recipe-id 7
    python -m repro ingest status --log-dir wal/
    python -m repro metrics dump --jsonl run/telemetry.jsonl

``generate`` writes a synthetic Recipe1M in the Recipe1M JSON layout;
``train`` fits the featurizer + a scenario and saves both; ``evaluate``
runs the paper's bag protocol on the test split; ``search`` answers
fridge queries with the trained engine; ``serve`` answers the same
query through the fault-contained resilient service (deadline,
circuit breakers, degraded fallback; ``--shards N`` serves from a
sharded, replicated index cluster; ``--ingest-log DIR`` recovers and
serves streamed deltas) and reports the structured request outcome;
``ingest`` appends, tombstones, compacts, or inspects a streaming
write-ahead delta log without a running service; ``gateway`` serves
search/ingest over HTTP through the hardened front-end (per-tenant
API keys, ``X-Deadline-Ms`` propagation, slowloris armor, graceful
SIGTERM drain, swap-aware result cache); ``loadgen`` drives the
service with open-loop multi-tenant traffic (``--storm 10`` for a
10× spike, ``--flood tenant:8`` for one abusive tenant, ``--static``
to compare against the legacy fixed cap, ``--url`` to hit a live
gateway over real sockets) and reports per-tenant goodput, shed
reasons, and brownout-ladder transitions.

``train`` and ``serve`` accept ``--telemetry-jsonl PATH`` to stream
spans and events to a JSONL trace with a final metrics snapshot;
``metrics dump`` re-exposes that snapshot as Prometheus text or JSON;
``monitor`` tails such a trace and renders quality-observability
state: golden-probe MedR/R@K, drift scores, SLO burn rates, alerts,
and flight-recorder bundles (exit code 1 while any alert is firing).
"""

from __future__ import annotations

import argparse
import pathlib

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AdaMine cross-modal recipe retrieval")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic Recipe1M dataset")
    generate.add_argument("--out", required=True)
    generate.add_argument("--pairs", type=int, default=1000)
    generate.add_argument("--classes", type=int, default=16)
    generate.add_argument("--image-size", type=int, default=16)
    generate.add_argument("--seed", type=int, default=0)

    train = commands.add_parser("train", help="train a scenario")
    train.add_argument("--data", required=True)
    train.add_argument("--out", required=True)
    train.add_argument("--scenario", default="adamine")
    train.add_argument("--epochs", type=int, default=15)
    train.add_argument("--batch-size", type=int, default=50)
    train.add_argument("--learning-rate", type=float, default=2e-3)
    train.add_argument("--lambda-sem", type=float, default=0.1)
    train.add_argument("--latent-dim", type=int, default=32)
    train.add_argument("--backbone", default="hist",
                       choices=("hist", "mlp", "resnet"))
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--checkpoint-dir", default=None,
                       help="write atomic checkpoints here every "
                            "--checkpoint-every epochs")
    train.add_argument("--checkpoint-every", type=int, default=1,
                       help="epochs between checkpoints (default 1)")
    train.add_argument("--resume", default=None, metavar="PATH",
                       help="resume from a checkpoint file or directory "
                            "(picks the latest loadable checkpoint)")
    train.add_argument("--quarantine", action="store_true",
                       help="skip + report corrupt corpus records instead "
                            "of aborting the import")
    train.add_argument("--telemetry-jsonl", default=None, metavar="PATH",
                       help="stream spans/events to this JSONL file and "
                            "append a final metrics snapshot")

    evaluate = commands.add_parser("evaluate",
                                   help="evaluate a trained scenario")
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument("--setup", default="1k", choices=("1k", "10k"))
    evaluate.add_argument("--bag-size", type=int, default=None)
    evaluate.add_argument("--bags", type=int, default=None)

    search = commands.add_parser("search", help="fridge search")
    search.add_argument("--data", required=True)
    search.add_argument("--model", required=True)
    search.add_argument("--ingredients", nargs="+", required=True)
    search.add_argument("--top-k", type=int, default=5)

    serve = commands.add_parser(
        "serve", help="fridge search through the resilient service "
                      "(deadline, breakers, degraded fallback)")
    serve.add_argument("--data", required=True)
    serve.add_argument("--model", required=True)
    serve.add_argument("--ingredients", nargs="+", required=True)
    serve.add_argument("--top-k", type=int, default=5)
    serve.add_argument("--class-name", default=None,
                       help="restrict results to one semantic class")
    serve.add_argument("--deadline", type=float, default=1.0,
                       help="per-request time budget in seconds")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="admission bound; excess requests are shed")
    serve.add_argument("--adaptive", action="store_true",
                       help="adaptive admission: AIMD concurrency "
                            "limit, fair queuing, brownout ladder "
                            "(replaces the static --max-inflight cap)")
    serve.add_argument("--tenants", action="append", default=None,
                       metavar="NAME[:WEIGHT[:RATE[:BURST[:CRIT]]]]",
                       help="tenant admission policy (repeatable); "
                            "implies --adaptive. RATE/BURST are "
                            "tokens/s (empty RATE = unlimited); CRIT "
                            "is user|background")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="bounded fair-queue depth per tenant lane "
                            "under --adaptive")
    serve.add_argument("--shards", type=int, default=1,
                       help="serve the indexes from a sharded, "
                            "replicated cluster (1 = monolithic)")
    serve.add_argument("--replicas", type=int, default=2,
                       help="replicas per shard when --shards > 1")
    serve.add_argument("--no-degraded", action="store_true",
                       help="disable the model-free degraded fallback")
    serve.add_argument("--telemetry-jsonl", default=None, metavar="PATH",
                       help="stream spans/events to this JSONL file and "
                            "append a final metrics snapshot")
    serve.add_argument("--drift-reference", default=None, metavar="PATH",
                       help="training-time drift reference "
                            "(drift-reference.json) enabling online "
                            "embedding-drift scoring")
    serve.add_argument("--probe", type=int, default=0, metavar="N",
                       help="after serving the query, replay an "
                            "N-query golden probe through the service "
                            "and report online vs offline MedR/R@K")
    serve.add_argument("--ingest-log", default=None, metavar="DIR",
                       help="enable streaming ingest backed by this "
                            "write-ahead log directory (recovers any "
                            "previous deltas before serving)")
    serve.add_argument("--profile-hz", type=float, default=None,
                       metavar="HZ",
                       help="run the sampling profiler at HZ while "
                            "serving and report where the CPU went")

    gateway = commands.add_parser(
        "gateway", help="serve search/ingest over HTTP through the "
                        "hardened gateway (wire armor, graceful "
                        "drain, swap-aware result cache)")
    gateway.add_argument("--data", required=True)
    gateway.add_argument("--model", required=True)
    gateway.add_argument("--host", default="127.0.0.1")
    gateway.add_argument("--port", type=int, default=8080,
                         help="listen port (0 = ephemeral)")
    gateway.add_argument("--api-key", action="append", default=None,
                         dest="api_keys", metavar="KEY:TENANT",
                         help="accept KEY as TENANT (repeatable); "
                              "with no keys the trusted X-Tenant "
                              "header names the tenant")
    gateway.add_argument("--deadline", type=float, default=1.0,
                         help="default per-request budget in seconds")
    gateway.add_argument("--max-deadline-ms", type=float, default=10000.0,
                         help="ceiling for the X-Deadline-Ms header")
    gateway.add_argument("--adaptive", action="store_true",
                         help="adaptive admission (AIMD, fair "
                              "queuing, brownout ladder)")
    gateway.add_argument("--tenants", action="append", default=None,
                         metavar="NAME[:WEIGHT[:RATE[:BURST[:CRIT]]]]",
                         help="tenant admission policy (repeatable); "
                              "implies --adaptive")
    gateway.add_argument("--max-inflight", type=int, default=8)
    gateway.add_argument("--max-queue", type=int, default=64)
    gateway.add_argument("--max-connections", type=int, default=64,
                         help="concurrent connection cap; excess is "
                              "shed at accept with a canned 503")
    gateway.add_argument("--cache-capacity", type=int, default=256)
    gateway.add_argument("--cache-ttl", type=float, default=30.0,
                         help="result-cache freshness window, seconds")
    gateway.add_argument("--stale-ttl", type=float, default=300.0,
                         help="how long past TTL an entry may still "
                              "be served stale under brownout")
    gateway.add_argument("--no-cache", action="store_true",
                         help="disable the result cache")
    gateway.add_argument("--drain-deadline", type=float, default=5.0,
                         help="seconds SIGTERM waits for inflight "
                              "requests before cutting stragglers")
    gateway.add_argument("--duration", type=float, default=None,
                         help="run for N seconds then drain (default: "
                              "run until SIGTERM/SIGINT)")
    gateway.add_argument("--ingest-log", default=None, metavar="DIR",
                         help="enable streaming ingest backed by this "
                              "write-ahead log directory")
    gateway.add_argument("--telemetry-jsonl", default=None,
                         metavar="PATH")
    gateway.add_argument("--profile-hz", type=float, default=None,
                         metavar="HZ",
                         help="run the sampling profiler at HZ for "
                              "the gateway's lifetime (stacks land "
                              "in /stats and flight bundles)")

    loadgen = commands.add_parser(
        "loadgen", help="open-loop multi-tenant load generation "
                        "against the resilient service (overload "
                        "experiments), in-process or --url over HTTP")
    loadgen.add_argument("--data", default=None,
                         help="dataset path (required unless --url)")
    loadgen.add_argument("--model", default=None,
                         help="model run dir (required unless --url)")
    loadgen.add_argument("--url", default=None, metavar="URL",
                         help="drive a live gateway at URL (e.g. "
                              "http://127.0.0.1:8080/search) instead "
                              "of an in-process service")
    loadgen.add_argument("--api-key", action="append", default=None,
                         dest="api_keys", metavar="TENANT:KEY",
                         help="API key to send for TENANT "
                              "(repeatable; --url mode only)")
    loadgen.add_argument("--deadline-ms", type=float, default=None,
                         help="X-Deadline-Ms to send (--url mode)")
    loadgen.add_argument("--duration", type=float, default=2.0,
                         help="run length in seconds")
    loadgen.add_argument("--load", action="append", default=None,
                         metavar="NAME:RPS[:CRIT]", dest="loads",
                         help="offered load per tenant (repeatable); "
                              "CRIT is user|background. Default: "
                              "one 'default' tenant at 20 rps")
    loadgen.add_argument("--tenants", action="append", default=None,
                         metavar="NAME[:WEIGHT[:RATE[:BURST[:CRIT]]]]",
                         help="tenant admission policy (repeatable)")
    loadgen.add_argument("--storm", type=float, default=None,
                         metavar="FACTOR",
                         help="multiply all offered rates by FACTOR "
                              "inside the storm window")
    loadgen.add_argument("--storm-start", type=float, default=0.0)
    loadgen.add_argument("--storm-end", type=float, default=None,
                         help="storm window end (default: run end)")
    loadgen.add_argument("--flood", default=None,
                         metavar="TENANT:FACTOR",
                         help="multiply one tenant's offered rate")
    loadgen.add_argument("--static", action="store_true",
                         help="use the legacy static --max-inflight "
                              "cap instead of adaptive admission")
    loadgen.add_argument("--max-inflight", type=int, default=8)
    loadgen.add_argument("--max-queue", type=int, default=64)
    loadgen.add_argument("--deadline", type=float, default=0.5,
                         help="per-request time budget in seconds")
    loadgen.add_argument("--top-k", type=int, default=5)
    loadgen.add_argument("--telemetry-jsonl", default=None,
                         metavar="PATH")

    ingest = commands.add_parser(
        "ingest", help="streaming ingest against a write-ahead log "
                       "directory (append/delete/compact/status)")
    ingest_commands = ingest.add_subparsers(dest="ingest_command",
                                            required=True)
    append = ingest_commands.add_parser(
        "append", help="durably add one recipe to the delta log")
    append.add_argument("--log-dir", required=True)
    append.add_argument("--data", required=True)
    append.add_argument("--model", required=True)
    append.add_argument("--recipe-id", type=int, required=True,
                        help="dataset row of the recipe to stream in")
    append.add_argument("--class-name", default=None,
                        help="semantic class override (defaults to the "
                             "recipe's own class)")
    delete = ingest_commands.add_parser(
        "delete", help="durably tombstone one item")
    delete.add_argument("--log-dir", required=True)
    delete.add_argument("--data", required=True)
    delete.add_argument("--model", required=True)
    delete.add_argument("--id", type=int, required=True,
                        help="item id to tombstone")
    compact = ingest_commands.add_parser(
        "compact", help="fold the delta log into a new base snapshot")
    compact.add_argument("--log-dir", required=True)
    compact.add_argument("--data", required=True)
    compact.add_argument("--model", required=True)
    status = ingest_commands.add_parser(
        "status", help="read-only summary of a delta log directory")
    status.add_argument("--log-dir", required=True)

    monitor = commands.add_parser(
        "monitor", help="render quality-observability state from a "
                        "telemetry JSONL trace")
    monitor.add_argument("--jsonl", required=True, metavar="PATH",
                         help="telemetry JSONL file to tail")
    monitor.add_argument("--follow", action="store_true",
                         help="keep re-rendering until interrupted")
    monitor.add_argument("--interval", type=float, default=2.0,
                         help="seconds between renders with --follow")

    trace = commands.add_parser(
        "trace", help="inspect spans from a telemetry or flight JSONL "
                      "file: span trees, critical paths")
    trace_commands = trace.add_subparsers(dest="trace_command",
                                          required=True)
    trace_list = trace_commands.add_parser(
        "list", help="one line per trace: root, duration, span count")
    trace_list.add_argument("--jsonl", required=True, metavar="PATH",
                            help="telemetry/flight JSONL file to read")
    trace_list.add_argument("--limit", type=int, default=20,
                            help="show the N slowest traces")
    trace_show = trace_commands.add_parser(
        "show", help="render one trace as an ASCII span tree")
    trace_show.add_argument("trace_id", type=int)
    trace_show.add_argument("--jsonl", required=True, metavar="PATH")
    trace_show.add_argument("--critical", action="store_true",
                            help="mark spans on the blocking critical "
                                 "path")
    trace_critpath = trace_commands.add_parser(
        "critpath", help="aggregate critical-path breakdown: where "
                         "does the time go?")
    trace_critpath.add_argument("--jsonl", required=True,
                                metavar="PATH")
    trace_critpath.add_argument("--quantile", type=float, default=None,
                                help="focus on traces at or above this "
                                     "duration quantile (e.g. 0.99)")

    profile = commands.add_parser(
        "profile", help="sampling profiler: record a serving "
                        "workload, or inspect a collapsed profile")
    profile_commands = profile.add_subparsers(dest="profile_command",
                                              required=True)
    record = profile_commands.add_parser(
        "record", help="profile a synthetic serving workload and "
                       "write collapsed stacks")
    record.add_argument("--data", required=True)
    record.add_argument("--model", required=True)
    record.add_argument("--duration", type=float, default=2.0,
                        help="seconds of workload to sample")
    record.add_argument("--hz", type=float, default=None,
                        help="sampling rate (default 61)")
    record.add_argument("--out", default=None, metavar="PATH",
                        help="write Brendan Gregg folded stacks here "
                             "(default: profile.txt)")
    record.add_argument("--top-k", type=int, default=5)
    record.add_argument("--shards", type=int, default=1)
    profile_top = profile_commands.add_parser(
        "top", help="hottest frames of a collapsed profile")
    profile_top.add_argument("--profile", required=True, metavar="PATH",
                             help="collapsed-stack file (profile.txt "
                                  "from record or a flight bundle)")
    profile_top.add_argument("--limit", type=int, default=15)
    flame = profile_commands.add_parser(
        "flame", help="render a collapsed profile as an ASCII flame "
                      "tree")
    flame.add_argument("--profile", required=True, metavar="PATH")
    flame.add_argument("--width", type=int, default=100)
    flame.add_argument("--min-share", type=float, default=0.01,
                       help="hide subtrees below this sample share")

    metrics = commands.add_parser(
        "metrics", help="inspect telemetry traces written with "
                        "--telemetry-jsonl")
    metrics_commands = metrics.add_subparsers(dest="metrics_command",
                                              required=True)
    dump = metrics_commands.add_parser(
        "dump", help="print the last metrics snapshot of a trace")
    dump.add_argument("--jsonl", required=True, metavar="PATH",
                      help="telemetry JSONL file to read")
    dump.add_argument("--format", default="prom",
                      choices=("prom", "json"),
                      help="Prometheus text (default) or raw JSON")
    return parser


def _load_dataset(path: str, quarantine: bool = False):
    from .data import import_recipe1m
    from .robustness import QuarantineReport

    if not quarantine:
        return import_recipe1m(path)
    report = QuarantineReport()
    dataset = import_recipe1m(path, quarantine=report)
    if report:
        print(report.summary())
    return dataset


def _load_run(model_dir: str, dataset):
    """Rebuild featurizer + model from a training output directory."""
    import json

    from .core import build_scenario
    from .data import RecipeFeaturizer

    model_dir = pathlib.Path(model_dir)
    with open(model_dir / "run.json") as handle:
        run = json.load(handle)
    featurizer = RecipeFeaturizer.load(model_dir)
    model, __ = build_scenario(
        run["scenario"], featurizer, run["num_classes"],
        run["image_size"], latent_dim=run["latent_dim"],
        backbone=run["backbone"], seed=run["seed"])
    model.load(model_dir / "model.npz")
    return featurizer, model


def _command_generate(args) -> int:
    from .data import DatasetConfig, export_recipe1m, generate_dataset

    dataset = generate_dataset(DatasetConfig(
        num_pairs=args.pairs, num_classes=args.classes,
        image_size=args.image_size, seed=args.seed))
    paths = export_recipe1m(dataset, args.out)
    print(dataset.summary())
    for name, path in paths.items():
        print(f"  wrote {name}: {path}")
    return 0


def _command_train(args) -> int:
    import json

    from .core import Trainer, TrainingConfig, build_scenario
    from .data import RecipeFeaturizer
    from .obs import Telemetry

    dataset = _load_dataset(args.data, quarantine=args.quarantine)
    featurizer = RecipeFeaturizer().fit(dataset)
    train = featurizer.encode_split(dataset, "train")
    val = featurizer.encode_split(dataset, "val")
    image_size = dataset.recipes[0].image.shape[-1]
    config = TrainingConfig(
        epochs=args.epochs, freeze_epochs=0, batch_size=args.batch_size,
        learning_rate=args.learning_rate, lambda_sem=args.lambda_sem,
        augment=False, eval_bag_size=min(200, len(val)), eval_num_bags=2,
        seed=args.seed, checkpoint_every=args.checkpoint_every)
    model, config = build_scenario(
        args.scenario, featurizer, len(dataset.taxonomy), image_size,
        base_config=config, latent_dim=args.latent_dim,
        backbone=args.backbone, seed=args.seed)
    telemetry = Telemetry(jsonl_path=args.telemetry_jsonl)
    trainer = Trainer(model, config,
                      class_to_group=dataset.taxonomy.class_to_group_ids(),
                      telemetry=telemetry)
    try:
        if args.resume:
            history = trainer.resume(args.resume, train, val,
                                     checkpoint_dir=args.checkpoint_dir)
        else:
            history = trainer.fit(train, val,
                                  checkpoint_dir=args.checkpoint_dir)
    finally:
        telemetry.close()
    for stats in history:
        print(f"epoch {stats.epoch:3d}  loss {stats.train_loss:.4f}  "
              f"val MedR {stats.val_medr:.1f}")
    if trainer.health.skipped or trainer.health.rollbacks:
        print(trainer.health.summary())
    if args.telemetry_jsonl:
        print(f"telemetry trace: {args.telemetry_jsonl}")

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    featurizer.save(out)
    model.save(out / "model.npz")
    if trainer.drift_reference is not None:
        trainer.drift_reference.save(out / "drift-reference.json")
        print(f"drift reference: {out / 'drift-reference.json'}")
    with open(out / "run.json", "w") as handle:
        json.dump({"scenario": args.scenario,
                   "num_classes": len(dataset.taxonomy),
                   "image_size": image_size,
                   "latent_dim": args.latent_dim,
                   "backbone": args.backbone,
                   "seed": args.seed,
                   "best_val_medr": trainer.best_val_medr}, handle)
    print(f"saved run to {out} (best val MedR "
          f"{trainer.best_val_medr:.1f})")
    return 0


def _command_evaluate(args) -> int:
    from .retrieval import RetrievalProtocol

    dataset = _load_dataset(args.data)
    featurizer, model = _load_run(args.model, dataset)
    test = featurizer.encode_split(dataset, "test")
    defaults = {"1k": (min(100, len(test)), 10),
                "10k": (min(250, len(test)), 5)}
    bag_size, bags = defaults[args.setup]
    protocol = RetrievalProtocol(
        bag_size=args.bag_size or bag_size,
        num_bags=args.bags or bags)
    image_emb, recipe_emb = model.encode_corpus(test)
    result = protocol.evaluate(image_emb, recipe_emb)
    print(result.summary())
    return 0


def _command_search(args) -> int:
    from .core import RecipeSearchEngine

    dataset = _load_dataset(args.data)
    featurizer, model = _load_run(args.model, dataset)
    test = featurizer.encode_split(dataset, "test")
    engine = RecipeSearchEngine(model, featurizer, dataset, test)
    results = engine.search_by_ingredients(args.ingredients, k=args.top_k)
    print(f"top {args.top_k} dishes for {', '.join(args.ingredients)}:")
    for result in results:
        marker = "+" if any(i in result.recipe.ingredients
                            for i in args.ingredients) else " "
        print(f"  [{marker}] {result.recipe.title:<30} "
              f"distance {result.distance:.3f}")
    return 0


def _parse_tenant_policy(spec: str):
    """``NAME[:WEIGHT[:RATE[:BURST[:CRIT]]]]`` → :class:`TenantPolicy`.

    Empty fields keep their defaults, so ``batch:::background`` is a
    weight-1, unlimited-rate background tenant."""
    from .serving import TenantPolicy

    parts = spec.split(":")
    if not parts[0]:
        raise SystemExit(f"--tenants spec needs a name: {spec!r}")
    kwargs = {"name": parts[0]}
    if len(parts) > 1 and parts[1]:
        kwargs["weight"] = float(parts[1])
    if len(parts) > 2 and parts[2]:
        kwargs["rate"] = float(parts[2])
    if len(parts) > 3 and parts[3]:
        kwargs["burst"] = float(parts[3])
    if len(parts) > 4 and parts[4]:
        kwargs["criticality"] = parts[4]
    return TenantPolicy(**kwargs)


def _admission_config(args):
    """Build an :class:`AdmissionConfig` from serve/loadgen flags, or
    ``None`` when the legacy static path was asked for."""
    from .serving import AdmissionConfig

    tenants = tuple(_parse_tenant_policy(spec)
                    for spec in (args.tenants or ()))
    adaptive = bool(getattr(args, "adaptive", False) or tenants
                    or not getattr(args, "static", True))
    if not adaptive:
        return None
    return AdmissionConfig(tenants=tenants,
                           max_queue_depth=args.max_queue,
                           initial_limit=args.max_inflight)


def _command_serve(args) -> int:
    from .core import RecipeSearchEngine
    from .obs import DriftReference, GoldenProbe, GoldenSet, Telemetry
    from .serving import ResilientSearchService, ServiceConfig

    dataset = _load_dataset(args.data)
    featurizer, model = _load_run(args.model, dataset)
    test = featurizer.encode_split(dataset, "test")
    engine = RecipeSearchEngine(model, featurizer, dataset, test)
    telemetry = Telemetry(jsonl_path=args.telemetry_jsonl)
    reference = (DriftReference.load(args.drift_reference)
                 if args.drift_reference else None)
    service = ResilientSearchService(engine, ServiceConfig(
        deadline=args.deadline, max_inflight=args.max_inflight,
        admission=_admission_config(args),
        degraded_enabled=not args.no_degraded,
        shards=args.shards, replicas=args.replicas),
        telemetry=telemetry, drift_reference=reference,
        ingest_log=args.ingest_log)
    if service.ingestor is not None:
        recovery = service.ingestor.recovery
        print(f"ingest log: {args.ingest_log}  "
              f"epoch {recovery['epoch']}  base {recovery['base']}  "
              f"replayed {recovery['replayed_records']} records  "
              f"truncated {recovery['truncated_bytes']} torn bytes")
    if args.profile_hz is not None:
        service.start_profiler(args.profile_hz)
    try:
        response = service.search_by_ingredients(
            args.ingredients, k=args.top_k, class_name=args.class_name)
        if args.probe > 0:
            golden = GoldenSet.from_engine(engine, size=args.probe)
            probe = GoldenProbe(service, golden,
                                registry=telemetry.registry,
                                events=telemetry.events)
            probe.attach()
            online = probe.run()
            offline = probe.baseline
            print(f"golden probe ({len(golden)} queries, "
                  f"depth {golden.depth}):")
            print(f"  online : {online.summary()}")
            if offline is not None:
                print(f"  offline: {offline.summary()}")
    finally:
        telemetry.close()
    outcome = response.outcome
    line = (f"status {outcome.status}  generation {response.generation}  "
            f"attempts {outcome.attempts}  "
            f"latency {outcome.latency * 1000:.1f}ms")
    if outcome.shards_total is not None:
        line += (f"  shards {outcome.shards_answered}"
                 f"/{outcome.shards_total}")
    if outcome.error:
        line += f"  [{outcome.error}]"
    print(line)
    cluster = service.stats().get("cluster")
    if cluster:
        for name, info in cluster.items():
            print(f"  cluster {name}: {info['shards']} shards x "
                  f"{info['replication']} replicas, "
                  f"{info['live_replicas']} live, "
                  f"{info['hedges']} hedges, "
                  f"{info['failovers']} failovers")
    if outcome.stage_ms:
        print("  stages: " + "  ".join(
            f"{stage} {ms:.1f}ms"
            for stage, ms in outcome.stage_ms.items()))
    for result in response.results:
        print(f"  {result.recipe.title:<30} distance {result.distance:.3f}")
    if args.profile_hz is not None:
        service.profiler.stop()
        _print_profile_summary(service)
    if args.telemetry_jsonl:
        print(f"telemetry trace: {args.telemetry_jsonl}")
    return 0 if response.ok else 1


def _print_profile_summary(service) -> None:
    snapshot = service.profiler.snapshot()
    overhead = snapshot["self_overhead"]
    print(f"profile: {snapshot['samples']} samples at "
          f"{snapshot['hz']:g}Hz  overhead "
          f"{overhead['fraction'] * 100:.2f}% "
          f"({overhead['per_sample_us']:.0f}us/sample)")
    for entry in snapshot["top"][:5]:
        print(f"  {entry['frame']:<44} {entry['samples']:>6}  "
              f"{entry['share'] * 100:5.1f}%")
    memory = service.memory.snapshot()
    parts = [f"{name} {nbytes / 1024:.0f}KiB" for name, nbytes
             in sorted(memory["components"].items(),
                       key=lambda kv: -kv[1])[:6]]
    rss = memory["rss_bytes"]
    rss_text = f"{rss / 1048576:.1f}MiB" if rss is not None else "n/a"
    print(f"memory: rss {rss_text}  tracked "
          f"{memory['tracked_bytes'] / 1048576:.1f}MiB  "
          + "  ".join(parts))


def _command_loadgen(args) -> int:
    import itertools
    import threading

    from .serving import LoadGenerator, TenantLoad

    service = telemetry = None
    if args.url is None:
        if not args.data or not args.model:
            raise SystemExit("loadgen needs --data and --model "
                             "(or --url for a live gateway)")
        from .core import RecipeSearchEngine
        from .obs import Telemetry
        from .serving import ResilientSearchService, ServiceConfig

        dataset = _load_dataset(args.data)
        featurizer, model = _load_run(args.model, dataset)
        test = featurizer.encode_split(dataset, "test")
        engine = RecipeSearchEngine(model, featurizer, dataset, test)
        telemetry = Telemetry(jsonl_path=args.telemetry_jsonl)
        service = ResilientSearchService(engine, ServiceConfig(
            deadline=args.deadline, max_inflight=args.max_inflight,
            admission=_admission_config(args)), telemetry=telemetry)

    loads = []
    for spec in (args.loads or ["default:20"]):
        parts = spec.split(":")
        if len(parts) < 2 or not parts[0] or not parts[1]:
            raise SystemExit(f"--load spec must be NAME:RPS: {spec!r}")
        loads.append(TenantLoad(parts[0], float(parts[1]),
                                criticality=(parts[2] if len(parts) > 2
                                             and parts[2] else "user")))
    shapers = []
    if args.storm is not None:
        from .robustness.faults import OverloadStorm
        shapers.append(OverloadStorm(
            args.storm, start_s=args.storm_start,
            end_s=(args.duration if args.storm_end is None
                   else args.storm_end)))
    if args.flood is not None:
        from .robustness.faults import TenantFlood
        tenant, _, factor = args.flood.partition(":")
        if not factor:
            raise SystemExit("--flood spec must be TENANT:FACTOR")
        shapers.append(TenantFlood(tenant, float(factor)))

    if args.url is not None:
        from .serving import HttpRequester

        api_keys = {}
        for spec in (args.api_keys or ()):
            tenant, _, key = spec.partition(":")
            if not key:
                raise SystemExit("--api-key spec must be TENANT:KEY")
            api_keys[tenant] = key
        request_fn = HttpRequester(args.url, api_keys=api_keys,
                                   deadline_ms=args.deadline_ms,
                                   timeout_s=max(args.deadline * 4, 5.0))
        mode = f"http {args.url}"
    else:
        # Round-robin fridge queries drawn from the corpus itself.
        queries = [list(dataset[i].ingredients)[:4] or ["salt"]
                   for i in range(min(len(dataset), 64))]
        counter = itertools.count()
        counter_lock = threading.Lock()

        def request_fn(tenant, criticality):
            with counter_lock:
                ingredients = queries[next(counter) % len(queries)]
            return service.search_by_ingredients(
                ingredients, k=args.top_k, tenant=tenant,
                criticality=criticality)

        mode = ("static" if args.static else "adaptive") + " admission"
    print(f"loadgen: {mode}, {args.duration:.1f}s, "
          + ", ".join(f"{load.name}@{load.rate:g}rps" for load in loads))
    try:
        report = LoadGenerator(request_fn, loads,
                               duration_s=args.duration,
                               shapers=shapers).run()
    finally:
        if telemetry is not None:
            telemetry.close()
    print(report.render())
    if service is not None:
        snapshot = service.admission.snapshot()
        print("admission: " + "  ".join(
            f"{key}={value}" for key, value in snapshot.items()))
        brownout = service.admission.brownout
        if brownout is not None and brownout.transitions:
            print("brownout transitions: " + " -> ".join(
                f"{direction}:{step}"
                for direction, step in brownout.transitions))
    return 0


def _command_gateway(args) -> int:
    from .core import RecipeSearchEngine
    from .obs import Telemetry
    from .serving import (CacheConfig, Gateway, GatewayConfig,
                          ResilientSearchService, ServiceConfig)

    api_keys = {}
    for spec in (args.api_keys or ()):
        key, _, tenant = spec.partition(":")
        if not tenant:
            raise SystemExit("--api-key spec must be KEY:TENANT")
        api_keys[key] = tenant

    dataset = _load_dataset(args.data)
    featurizer, model = _load_run(args.model, dataset)
    test = featurizer.encode_split(dataset, "test")
    engine = RecipeSearchEngine(model, featurizer, dataset, test)
    telemetry = Telemetry(jsonl_path=args.telemetry_jsonl)
    service = ResilientSearchService(engine, ServiceConfig(
        deadline=args.deadline, max_inflight=args.max_inflight,
        admission=_admission_config(args)),
        telemetry=telemetry, ingest_log=args.ingest_log)
    gateway = Gateway(service, GatewayConfig(
        host=args.host, port=args.port, api_keys=api_keys,
        max_connections=args.max_connections,
        max_deadline_ms=args.max_deadline_ms,
        drain_deadline_s=args.drain_deadline,
        cache=CacheConfig(capacity=args.cache_capacity,
                          ttl_s=args.cache_ttl,
                          stale_ttl_s=args.stale_ttl,
                          enabled=not args.no_cache)))
    if args.profile_hz is not None:
        service.start_profiler(args.profile_hz)
    gateway.start()
    gateway.install_signal_handlers()
    auth = (f"{len(api_keys)} API key(s)" if api_keys
            else "trusted X-Tenant")
    print(f"gateway: http://{args.host}:{gateway.port}  "
          f"auth: {auth}  cache: "
          f"{'off' if args.no_cache else f'{args.cache_ttl:g}s ttl'}")
    print("endpoints: POST /search  POST /ingest  POST /delete  "
          "GET /stats  GET /metrics  GET /healthz  GET /readyz")
    try:
        if args.duration is not None:
            gateway.wait_drained(timeout=args.duration)
            gateway.drain(reason="duration")
        else:
            gateway.wait_drained()
    except KeyboardInterrupt:
        gateway.drain(reason="keyboard_interrupt")
    print("gateway drained")
    if args.profile_hz is not None:
        service.profiler.stop()
        _print_profile_summary(service)
    return 0


def _open_ingestor(args):
    """Engine-backed ingestor over the test-split base (the same base
    ``serve`` uses), validated against the log's corpus fingerprint."""
    from .core import RecipeSearchEngine
    from .serving import Ingestor

    dataset = _load_dataset(args.data)
    featurizer, model = _load_run(args.model, dataset)
    test = featurizer.encode_split(dataset, "test")
    engine = RecipeSearchEngine(model, featurizer, dataset, test)
    ingestor = Ingestor(args.log_dir,
                        {"image": engine.image_index,
                         "recipe": engine.recipe_index})
    return dataset, engine, ingestor


def _print_ingest_status(status: dict) -> None:
    log = status["log"]
    print(f"epoch {status['epoch']}  base {status['base']}  "
          f"live items {status['live_items']}  "
          f"delta rows {status['delta_rows']}  "
          f"tombstones {status['tombstones']}")
    print(f"log: segment {log['segment']}  "
          f"lag {log['lag_records']} records  "
          f"appends {log['appends']}  syncs {log['syncs']}")


def _command_ingest(args) -> int:
    from .serving import IngestError, WalError, scan_log

    if args.ingest_command == "status":
        try:
            summary = scan_log(args.log_dir)
        except WalError as exc:
            print(f"ingest error: {exc}")
            return 1
        print(f"log {summary['directory']}: epoch {summary['epoch']}  "
              f"base {summary['base']}  segment {summary['segment']}  "
              f"{summary['records']} pending records "
              f"({summary['adds']} adds, {summary['deletes']} deletes)")
        return 0
    try:
        dataset, engine, ingestor = _open_ingestor(args)
    except IngestError as exc:
        print(f"ingest error: {exc}")
        return 1
    try:
        if args.ingest_command == "append":
            import numpy as np

            recipe = dataset[args.recipe_id]
            class_id = engine.resolve_class(args.class_name)
            if class_id is None:
                class_id = int(recipe.true_class_id)
            from .serving import recipe_to_payload

            with np.errstate(all="ignore"):
                vectors = {"recipe": engine.embed_recipe(recipe),
                           "image": engine.embed_image(recipe.image)}
            ack = ingestor.add(vectors, class_id=class_id,
                               payload=recipe_to_payload(recipe))
            verb = "replaced" if ack.replaced else "added"
            print(f"{verb} item {ack.item_id} "
                  f"({recipe.title!r}, class {class_id}) "
                  f"at {ack.position.segment}:{ack.position.offset}  "
                  f"durable={ack.durable}")
        elif args.ingest_command == "delete":
            try:
                ack = ingestor.delete(args.id)
            except KeyError as exc:
                print(f"ingest error: {exc.args[0]}")
                return 1
            print(f"tombstoned item {ack.item_id} "
                  f"at {ack.position.segment}:{ack.position.offset}  "
                  f"durable={ack.durable}")
        elif args.ingest_command == "compact":
            report = ingestor.compact()
            print(f"compacted to epoch {report.epoch}: "
                  f"{report.live_items} live items  "
                  f"{report.folded_tombstones} tombstones folded  "
                  f"{report.pending_replayed} raced writes replayed  "
                  f"base {report.base_file}")
        _print_ingest_status(ingestor.status())
        return 0
    finally:
        ingestor.close()


def _read_jsonl_tolerant(path) -> list[dict]:
    """Like ``read_jsonl`` but skips malformed lines — a live trace
    may be mid-write on its last line."""
    import json

    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def _gauge_values(registry, name) -> dict[tuple, float]:
    family = registry.get(name)
    if family is None:
        return {}
    return {key: child.value for key, child in family.children()}


def _render_monitor(path) -> tuple[str, bool]:
    """Render one monitor frame; returns ``(text, any_alert_firing)``."""
    from .obs import MetricsRegistry

    records = _read_jsonl_tolerant(path)
    lines = [f"monitor: {path} ({len(records)} records)"]
    firing: dict[str, bool] = {}

    # Event-sourced state: the trace streams events as they happen,
    # while the metrics snapshot only lands when the run closes.
    last = {}
    flights = []
    for record in records:
        if record.get("kind") != "event":
            continue
        event = record.get("event")
        if event in ("probe", "probe_baseline", "drift", "swap"):
            last[event] = record
        elif event == "alert":
            firing[record.get("slo", "?")] = \
                record.get("state") == "firing"
            last[event] = record
        elif event == "flight":
            flights.append(record)

    if "probe" in last:
        probe = last["probe"]
        line = (f"probe: online MedR {probe.get('medr', '?')}  "
                f"R@1 {probe.get('r_at_1', '?')}  "
                f"R@5 {probe.get('r_at_5', '?')}  "
                f"R@10 {probe.get('r_at_10', '?')}")
        if probe.get("baseline_medr") is not None:
            line += (f"  (baseline MedR {probe['baseline_medr']}, "
                     f"delta {probe.get('medr_delta')})")
        lines.append(line)
    if "drift" in last:
        drift = last["drift"]
        scores = ", ".join(
            f"{name} {drift[name]:.3f}" if isinstance(
                drift.get(name), (int, float)) else f"{name} n/a"
            for name in ("embedding_norm", "top1_distance", "margin"))
        lines.append(f"drift (PSI): {scores}")
    if "swap" in last:
        swap = last["swap"]
        lines.append(f"generation: {swap.get('generation')} "
                     f"({'ok' if swap.get('ok') else 'rolled back'})")

    snapshot = None
    for record in records:
        if record.get("kind") == "metrics":
            snapshot = record.get("metrics")
    if snapshot is not None:
        registry = MetricsRegistry.from_dict(snapshot)
        stage_family = registry.get("serving_stage_seconds")
        if stage_family is not None:
            for key, child in stage_family.children():
                if child.count == 0:
                    continue
                quantiles = child.quantiles((0.5, 0.95, 0.99))
                lines.append(
                    f"stage {key[0]}: n={child.count}  "
                    f"p50 {quantiles[0.5] * 1000:.1f}ms  "
                    f"p95 {quantiles[0.95] * 1000:.1f}ms  "
                    f"p99 {quantiles[0.99] * 1000:.1f}ms")
        for key, value in sorted(_gauge_values(
                registry, "slo_burn_rate").items()):
            lines.append(f"burn {key[0]}/{key[1]}: {value:.2f}x")
        for key, value in _gauge_values(
                registry, "slo_alert_firing").items():
            # The snapshot is authoritative over events when present.
            firing[key[0]] = value > 0

        # Overload-control plane: brownout rung and who was shed why.
        for __, level in _gauge_values(registry,
                                       "brownout_level").items():
            lines.append(f"brownout level: {level:g}")
        shed = _gauge_values(registry, "requests_shed_total")
        if shed:
            total = sum(shed.values())
            detail = "  ".join(
                f"{reason}/{tenant} {count:g}"
                for (reason, tenant), count in sorted(shed.items()))
            lines.append(f"shed: {total:g} total  {detail}")

        # Gateway front-door connection + cache traffic.
        conn = _gauge_values(registry, "gateway_active_connections")
        inflight = _gauge_values(registry, "gateway_inflight_requests")
        if conn or inflight:
            lines.append(
                f"gateway: {next(iter(conn.values()), 0):g} "
                f"connections  "
                f"{next(iter(inflight.values()), 0):g} inflight")
        cache = _gauge_values(registry, "gateway_cache_events_total")
        if cache:
            lines.append("cache: " + "  ".join(
                f"{key[0]} {value:g}"
                for key, value in sorted(cache.items())))

        # Memory ledger: rss, tracked total, biggest components.
        rss = next(iter(_gauge_values(
            registry, "memory_rss_bytes").values()), None)
        tracked = next(iter(_gauge_values(
            registry, "memory_tracked_bytes").values()), None)
        if rss is not None or tracked is not None:
            components = _gauge_values(registry,
                                       "memory_component_bytes")
            hot = "  ".join(
                f"{key[0]} {value / 1024:.0f}KiB"
                for key, value in sorted(components.items(),
                                         key=lambda kv: -kv[1])[:5])
            rss_text = (f"{rss / 1048576:.1f}MiB"
                        if rss is not None else "n/a")
            tracked_text = (f"{tracked / 1048576:.1f}MiB"
                            if tracked is not None else "n/a")
            lines.append(f"memory: rss {rss_text}  "
                         f"tracked {tracked_text}  {hot}")
        overhead = next(iter(_gauge_values(
            registry, "profiler_overhead_ratio").values()), None)
        if overhead is not None:
            lines.append(f"profiler overhead: "
                         f"{overhead * 100:.2f}%")

    for name, state in sorted(firing.items()):
        lines.append(f"alert {name}: "
                     f"{'FIRING' if state else 'resolved'}")
    for flight in flights:
        lines.append(f"flight bundle: {flight.get('bundle')} "
                     f"({flight.get('reason')})")
    if not firing:
        lines.append("alerts: none recorded")
    return "\n".join(lines), any(firing.values())


def _command_monitor(args) -> int:
    import time

    text, any_firing = _render_monitor(args.jsonl)
    print(text)
    while args.follow:
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            break
        text, any_firing = _render_monitor(args.jsonl)
        print("\n" + text)
    return 1 if any_firing else 0


def _trace_verdicts(path) -> dict[int, str]:
    """Sampler verdicts by trace id from ``{"kind": "trace"}`` rows."""
    verdicts: dict[int, str] = {}
    for record in _read_jsonl_tolerant(path):
        if record.get("kind") == "trace" and "trace_id" in record:
            verdicts[int(record["trace_id"])] = \
                record.get("verdict", "?")
    return verdicts


def _command_trace(args) -> int:
    from .obs import (aggregate, build_traces, render_tree,
                      spans_from_jsonl)

    records = spans_from_jsonl(args.jsonl)
    if not records:
        print(f"no spans in {args.jsonl}")
        return 1
    trees = build_traces(records)

    if args.trace_command == "show":
        tree = trees.get(args.trace_id)
        if tree is None:
            print(f"trace {args.trace_id} not found in {args.jsonl} "
                  f"({len(trees)} traces present)")
            return 1
        print(render_tree(tree, critical=args.critical))
        return 0

    if args.trace_command == "critpath":
        breakdown = aggregate(trees, focus_quantile=args.quantile)
        scope = ("all traces" if args.quantile is None
                 else f"traces at/above the p{args.quantile * 100:g} "
                      f"duration")
        print(f"critical path over {breakdown['traces']} roots "
              f"({scope}), {breakdown['total_s'] * 1000:.1f}ms "
              f"attributed:")
        for name, entry in breakdown["by_name"].items():
            print(f"  {name:<16} {entry['seconds'] * 1000:>9.2f}ms  "
                  f"{entry['share'] * 100:5.1f}%")
        return 0

    # list: slowest first, with root/span/orphan counts and sampler
    # verdicts when the file carries kept-trace rows.
    verdicts = _trace_verdicts(args.jsonl)
    rows = sorted(trees.values(),
                  key=lambda tree: (tree.root.duration
                                    if tree.root is not None else 0.0),
                  reverse=True)
    print(f"{len(rows)} traces in {args.jsonl}")
    print(f"{'trace':>8}  {'root':<12} {'ms':>9}  {'spans':>5}  "
          f"{'orphans':>7}  verdict")
    for tree in rows[:args.limit]:
        root = tree.root
        name = root.name if root is not None else "(no root)"
        duration = root.duration * 1000.0 if root is not None else 0.0
        print(f"{tree.trace_id:>8}  {name:<12} {duration:>9.2f}  "
              f"{len(tree.spans()):>5}  {len(tree.orphans):>7}  "
              f"{verdicts.get(tree.trace_id, '-')}")
    return 0


def _read_collapsed(path) -> list[str]:
    """Folded lines from a profile file, skipping ``#`` summary rows
    (flight-bundle ``profile.txt`` leads with a commented summary)."""
    lines = []
    with open(path) as handle:
        for line in handle:
            line = line.rstrip("\n")
            if line and not line.lstrip().startswith("#"):
                lines.append(line)
    return lines


def _command_profile(args) -> int:
    from .obs import render_flame, top_frames

    if args.profile_command == "top":
        lines = _read_collapsed(args.profile)
        entries = top_frames(lines, args.limit)
        if not entries:
            print(f"no samples in {args.profile}")
            return 1
        print(f"{'samples':>8}  {'share':>6}  frame")
        for entry in entries:
            print(f"{entry['samples']:>8}  "
                  f"{entry['share'] * 100:5.1f}%  {entry['frame']}")
        return 0

    if args.profile_command == "flame":
        lines = _read_collapsed(args.profile)
        print(render_flame(lines, width=args.width,
                           min_share=args.min_share))
        return 0

    # record: profile a synthetic serving workload end to end.
    import itertools
    import time as _time

    from .core import RecipeSearchEngine
    from .serving import ResilientSearchService, ServiceConfig

    dataset = _load_dataset(args.data)
    featurizer, model = _load_run(args.model, dataset)
    test = featurizer.encode_split(dataset, "test")
    engine = RecipeSearchEngine(model, featurizer, dataset, test)
    service = ResilientSearchService(engine, ServiceConfig(
        shards=args.shards))
    queries = [list(dataset[i].ingredients)[:4] or ["salt"]
               for i in range(min(len(dataset), 64))]
    profiler = service.start_profiler(args.hz)
    deadline = _time.monotonic() + args.duration
    requests = 0
    for index in itertools.count():
        if _time.monotonic() >= deadline:
            break
        service.search_by_ingredients(queries[index % len(queries)],
                                      k=args.top_k)
        requests += 1
    profiler.stop()
    out = pathlib.Path(args.out or "profile.txt")
    out.write_text("\n".join(profiler.collapsed()) + "\n")
    print(f"profiled {requests} requests over {args.duration:.1f}s  "
          f"-> {out}")
    _print_profile_summary(service)
    return 0


def _command_metrics(args) -> int:
    import json

    from .obs import MetricsRegistry, last_metrics_snapshot

    snapshot = last_metrics_snapshot(args.jsonl)
    if snapshot is None:
        print(f"no metrics snapshot in {args.jsonl} "
              f"(crashed run or not a telemetry trace)")
        return 1
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(MetricsRegistry.from_dict(snapshot).to_prometheus(),
              end="")
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "train": _command_train,
    "evaluate": _command_evaluate,
    "search": _command_search,
    "serve": _command_serve,
    "gateway": _command_gateway,
    "loadgen": _command_loadgen,
    "ingest": _command_ingest,
    "monitor": _command_monitor,
    "trace": _command_trace,
    "profile": _command_profile,
    "metrics": _command_metrics,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)
