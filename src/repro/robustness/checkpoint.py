"""Atomic, versioned training checkpoints.

A checkpoint captures *everything* the trainer needs to continue a run
bitwise-deterministically after a crash: model parameters, optimizer
moments, every RNG state that training consumes, the batcher position,
the epoch history, and the best-model snapshot used for the paper's
best-MedR model selection.

Format
------
One ``checkpoint-EEEEEE.npz`` file per checkpoint (``E`` = 0-based
epoch index), written atomically (temp file + fsync + ``os.replace``)
so a crash mid-write can never corrupt an existing checkpoint — at
worst it leaves a ``*.tmp`` file that is ignored and cleaned up.

Inside the archive:

* ``__meta__``    — UTF-8 JSON (version, epoch, optimizer scalars, RNG
  states, serialized history, best MedR);
* ``model/<name>`` — one array per model parameter;
* ``best/<name>``  — the best-epoch snapshot (when one exists);
* ``optim/m/<i>``, ``optim/v/<i>`` — Adam moment estimates, in
  parameter order.

``FORMAT_VERSION`` is embedded in the metadata; loading a checkpoint
written by an incompatible future format fails with a clear
:class:`CheckpointError` instead of silently misrestoring state.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import re
import zipfile
from dataclasses import dataclass, field

import numpy as np

__all__ = ["FORMAT_VERSION", "CheckpointError", "CheckpointState",
           "CheckpointManager"]

FORMAT_VERSION = 1

_FILE_RE = re.compile(r"^checkpoint-(\d{6})\.npz$")


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, truncated, or incompatible."""


@dataclass
class CheckpointState:
    """Everything needed to resume a training run.

    The trainer produces/consumes this; the manager only (de)serializes
    it. ``rng_states`` maps a consumer name (``trainer``, ``batcher``,
    ``augmenter``) to a ``np.random.Generator`` bit-generator state
    dict; ``history`` holds per-epoch stat dicts.
    """

    epoch: int
    model_state: dict[str, np.ndarray]
    optimizer_state: dict  # {"t": int, "lr": float, "m": [...], "v": [...]}
    rng_states: dict[str, dict]
    history: list[dict] = field(default_factory=list)
    best_val_medr: float = float("inf")
    best_state: dict[str, np.ndarray] | None = None
    extra: dict = field(default_factory=dict)
    version: int = FORMAT_VERSION


class CheckpointManager:
    """Write/read atomic checkpoints under one directory.

    Parameters
    ----------
    directory:
        Where checkpoints live; created on first save.
    keep:
        How many most-recent checkpoints to retain (older ones are
        pruned after each successful save). ``None`` keeps everything.
    """

    def __init__(self, directory, keep: int | None = 3):
        if keep is not None and keep < 1:
            raise ValueError("keep must be >= 1 (or None)")
        self.directory = pathlib.Path(directory)
        self.keep = keep

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def path_for_epoch(self, epoch: int) -> pathlib.Path:
        return self.directory / f"checkpoint-{epoch:06d}.npz"

    def save(self, state: CheckpointState) -> pathlib.Path:
        """Atomically persist ``state``; returns the final path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        arrays: dict[str, np.ndarray] = {}
        for name, values in state.model_state.items():
            arrays[f"model/{name}"] = np.asarray(values)
        if state.best_state is not None:
            for name, values in state.best_state.items():
                arrays[f"best/{name}"] = np.asarray(values)
        for i, m in enumerate(state.optimizer_state.get("m", [])):
            arrays[f"optim/m/{i:04d}"] = np.asarray(m)
        for i, v in enumerate(state.optimizer_state.get("v", [])):
            arrays[f"optim/v/{i:04d}"] = np.asarray(v)

        meta = {
            "version": state.version,
            "epoch": int(state.epoch),
            "optimizer": {"t": int(state.optimizer_state.get("t", 0)),
                          "lr": float(state.optimizer_state.get("lr", 0.0))},
            "rng_states": state.rng_states,
            "history": state.history,
            "best_val_medr": state.best_val_medr,
            "has_best": state.best_state is not None,
            "extra": state.extra,
        }
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8)

        final = self.path_for_epoch(state.epoch)
        tmp = final.with_name(final.name + ".tmp")
        try:
            with open(tmp, "wb") as handle:
                np.savez(handle, **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
        finally:
            if tmp.exists():
                tmp.unlink()
        self._prune()
        return final

    def _prune(self) -> None:
        if self.keep is None:
            return
        paths = self.checkpoints()
        for path in paths[:-self.keep]:
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def checkpoints(self) -> list[pathlib.Path]:
        """All checkpoint files, oldest first (``*.tmp`` ignored)."""
        if not self.directory.is_dir():
            return []
        found = [p for p in self.directory.iterdir()
                 if _FILE_RE.match(p.name)]
        return sorted(found)

    def latest(self, verify: bool = True) -> pathlib.Path | None:
        """Most recent *loadable* checkpoint, or ``None``.

        With ``verify`` (default), checkpoints that fail to load — the
        typical leftover of a crash that truncated the file mid-write —
        are skipped, so resume falls back to the last good epoch.
        """
        for path in reversed(self.checkpoints()):
            if not verify:
                return path
            try:
                self.load(path)
            except CheckpointError:
                continue
            return path
        return None

    def load(self, path) -> CheckpointState:
        """Read one checkpoint; raises :class:`CheckpointError` on any
        truncation, corruption, or format-version mismatch."""
        path = pathlib.Path(path)
        if not path.is_file():
            raise CheckpointError(f"no checkpoint at {path}")
        try:
            with np.load(path) as archive:
                arrays = {key: archive[key] for key in archive.files}
        except (zipfile.BadZipFile, OSError, ValueError, EOFError,
                KeyError) as error:
            raise CheckpointError(
                f"checkpoint {path} is corrupt or truncated: {error}"
            ) from error

        if "__meta__" not in arrays:
            raise CheckpointError(f"checkpoint {path} has no metadata")
        try:
            meta = json.loads(arrays.pop("__meta__").tobytes().decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"checkpoint {path} metadata is unreadable: {error}"
            ) from error
        version = meta.get("version")
        if version != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has format version {version!r}; "
                f"this build reads version {FORMAT_VERSION}")

        model_state: dict[str, np.ndarray] = {}
        best_state: dict[str, np.ndarray] = {}
        moments_m: dict[int, np.ndarray] = {}
        moments_v: dict[int, np.ndarray] = {}
        for key, values in arrays.items():
            kind, __, name = key.partition("/")
            if kind == "model":
                model_state[name] = values
            elif kind == "best":
                best_state[name] = values
            elif kind == "optim":
                which, __, index = name.partition("/")
                target = moments_m if which == "m" else moments_v
                target[int(index)] = values
        if not model_state:
            raise CheckpointError(f"checkpoint {path} holds no model state")
        if meta.get("has_best") and not best_state:
            raise CheckpointError(
                f"checkpoint {path} advertises a best-model snapshot but "
                f"none is present")

        optimizer = {
            "t": meta["optimizer"]["t"],
            "lr": meta["optimizer"]["lr"],
            "m": [moments_m[i] for i in sorted(moments_m)],
            "v": [moments_v[i] for i in sorted(moments_v)],
        }
        return CheckpointState(
            epoch=meta["epoch"],
            model_state=model_state,
            optimizer_state=optimizer,
            rng_states=meta["rng_states"],
            history=meta["history"],
            best_val_medr=meta["best_val_medr"],
            best_state=best_state or None,
            extra=meta.get("extra", {}),
        )

    def load_latest(self) -> CheckpointState | None:
        """Load the most recent valid checkpoint, or ``None``."""
        path = self.latest(verify=True)
        return self.load(path) if path is not None else None


def epoch_stats_to_dict(stats) -> dict:
    """Serialize an ``EpochStats``-like dataclass to plain JSON types."""
    return {key: (bool(value) if isinstance(value, (bool, np.bool_))
                  else value)
            for key, value in dataclasses.asdict(stats).items()}
