"""Fault tolerance for training and serving.

Four pillars, each with its own module:

* :mod:`~repro.robustness.checkpoint` — atomic, versioned
  checkpoint/resume for bitwise-deterministic recovery;
* :mod:`~repro.robustness.health` — NaN/Inf guards, gradient clipping,
  loss-spike detection, and the skip budget;
* :mod:`~repro.robustness.quarantine` — corrupt-record validation and
  reporting for the data pipeline;
* :mod:`~repro.robustness.faults` — deterministic fault injection so
  all of the above is testable, including the serving-side injectors
  (slow/NaN embeds, index corruption, swap-mid-query) and the
  cluster-side injectors (replica crashes, slow shards, whole-shard
  loss) that drive the :mod:`repro.serving` chaos suites.
"""

from .checkpoint import (FORMAT_VERSION, CheckpointError, CheckpointManager,
                         CheckpointState)
from .faults import (ChainedClusterFaults, ChainedFaults,
                     ChainedIngestFaults, ChainedServingFaults,
                     ClusterFault, CompactionRacingQueries, CrashFault,
                     CrashMidCompaction, DiskFullOnAppend, FaultInjector,
                     IndexCorruptionFault, IngestFault, NaNEmbedFault,
                     NaNGradientFault, ParamCorruptionFault, ReplicaCrash,
                     ServingFault, ShardLoss, SimulatedCrash,
                     SlowEmbedFault, SlowShard, SwapMidQueryFault,
                     TornWrite, corrupt_file, truncate_file)
from .health import (HealthMonitor, NumericalHealthError, StepVerdict,
                     clip_grad_norm, global_grad_norm)
from .quarantine import (QuarantinedRecord, QuarantineReport, validate_image,
                         validate_recipe, validate_recipe_entry)

__all__ = [
    "FORMAT_VERSION", "CheckpointError", "CheckpointManager",
    "CheckpointState",
    "HealthMonitor", "NumericalHealthError", "StepVerdict",
    "clip_grad_norm", "global_grad_norm",
    "QuarantinedRecord", "QuarantineReport",
    "validate_image", "validate_recipe", "validate_recipe_entry",
    "FaultInjector", "ChainedFaults", "NaNGradientFault",
    "ParamCorruptionFault", "CrashFault", "SimulatedCrash",
    "truncate_file", "corrupt_file",
    "ServingFault", "ChainedServingFaults", "SlowEmbedFault",
    "NaNEmbedFault", "IndexCorruptionFault", "SwapMidQueryFault",
    "ClusterFault", "ChainedClusterFaults", "ReplicaCrash",
    "SlowShard", "ShardLoss",
    "IngestFault", "ChainedIngestFaults", "TornWrite",
    "DiskFullOnAppend", "CrashMidCompaction", "CompactionRacingQueries",
]
