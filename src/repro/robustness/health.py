"""Numerical-health guards for the training loop.

A single NaN gradient is enough to poison every Adam moment and destroy
a multi-epoch run. :class:`HealthMonitor` sits between ``backward()``
and ``optimizer.step()`` and enforces three policies:

* **global-norm gradient clipping** — rescale all gradients when their
  joint L2 norm exceeds ``max_grad_norm``;
* **non-finite / spike detection** — a NaN/Inf loss, NaN/Inf gradient,
  or a loss above ``spike_factor`` × the running loss mean marks the
  batch as unhealthy; the step is *skipped* (parameters untouched);
* **skip budget** — after ``skip_budget`` skipped batches the monitor
  raises :class:`NumericalHealthError` instead of letting a silently
  broken run burn the rest of its schedule.

If parameters themselves have already gone non-finite (a crash class
the skip policy cannot undo), :meth:`params_healthy` reports it so the
trainer can roll back to its last good checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..nn import Parameter

__all__ = ["NumericalHealthError", "StepVerdict", "HealthMonitor",
           "global_grad_norm", "clip_grad_norm"]


class NumericalHealthError(RuntimeError):
    """Raised when a run exhausts its unhealthy-batch skip budget."""


def global_grad_norm(params: list[Parameter]) -> float:
    """Joint L2 norm over every present gradient (NaN-propagating)."""
    total = 0.0
    # errstate: squaring an Inf/huge gradient must report a non-finite
    # norm, not trip numpy's overflow warning machinery.
    with np.errstate(over="ignore", invalid="ignore"):
        for param in params:
            if param.grad is not None:
                total += float(np.sum(param.grad * param.grad))
        return float(np.sqrt(total))


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global norm is <= ``max_norm``.

    Returns the pre-clip norm. Non-finite norms are left untouched —
    the caller is expected to skip the step entirely.
    """
    norm = global_grad_norm(params)
    if np.isfinite(norm) and max_norm > 0 and norm > max_norm:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm


@dataclass
class StepVerdict:
    """Outcome of one health inspection."""

    healthy: bool
    reason: str = ""
    grad_norm: float = 0.0


@dataclass
class HealthMonitor:
    """Stateful batch-health policy for one training run.

    Parameters
    ----------
    max_grad_norm:
        Global-norm clipping threshold (``0`` disables clipping).
    spike_factor:
        A finite loss above ``spike_factor × running-mean`` is treated
        as a divergence spike and skipped (``0`` disables the check).
    skip_budget:
        Unhealthy batches tolerated per run before hard failure.
    warmup_steps:
        Healthy steps observed before spike detection activates (the
        running mean is meaningless on the first few batches).
    on_event:
        Optional ``callable(kind, detail_dict)`` observability hook,
        fired on every guard action: ``"clip"`` (with the pre-clip
        norm), ``"skip"`` (with the reason), ``"rollback"``.  The
        trainer wires this into the telemetry layer; the monitor's
        policy is unaffected by it.
    """

    max_grad_norm: float = 10.0
    spike_factor: float = 25.0
    skip_budget: int = 8
    warmup_steps: int = 5
    skipped: int = 0
    rollbacks: int = 0
    skip_log: list[str] = field(default_factory=list)
    on_event: Callable[[str, dict], None] | None = \
        field(default=None, repr=False, compare=False)
    _loss_mean: float = 0.0
    _loss_count: int = 0

    def _emit(self, kind: str, detail: dict) -> None:
        if self.on_event is not None:
            self.on_event(kind, detail)

    # ------------------------------------------------------------------
    def inspect_step(self, loss: float,
                     params: list[Parameter]) -> StepVerdict:
        """Judge one batch *after* backward, *before* the optimizer step.

        Healthy gradients are clipped in place as a side effect.
        Unhealthy batches consume the skip budget; exhausting it raises
        :class:`NumericalHealthError`.
        """
        if not np.isfinite(loss):
            return self.record_unhealthy(f"non-finite loss ({loss!r})")
        if (self.spike_factor > 0 and self._loss_count >= self.warmup_steps
                and self._loss_mean > 0
                and loss > self.spike_factor * self._loss_mean):
            return self.record_unhealthy(
                f"loss spike ({loss:.4g} > {self.spike_factor:g} x "
                f"running mean {self._loss_mean:.4g})")
        norm = global_grad_norm(params)
        if not np.isfinite(norm):
            return self.record_unhealthy("non-finite gradient")
        if self.max_grad_norm > 0 and norm > self.max_grad_norm:
            scale = self.max_grad_norm / norm
            for param in params:
                if param.grad is not None:
                    param.grad *= scale
            self._emit("clip", {"grad_norm": norm,
                                "clipped_to": self.max_grad_norm})

        self._loss_count += 1
        self._loss_mean += (loss - self._loss_mean) / self._loss_count
        return StepVerdict(healthy=True, grad_norm=norm)

    def record_unhealthy(self, reason: str) -> StepVerdict:
        """Charge one unhealthy event against the skip budget."""
        self.skipped += 1
        self.skip_log.append(reason)
        self._emit("skip", {"reason": reason, "skipped": self.skipped,
                            "budget": self.skip_budget})
        if self.skipped > self.skip_budget:
            raise NumericalHealthError(
                f"skip budget exhausted ({self.skipped} unhealthy batches "
                f"> budget {self.skip_budget}); last reason: {reason}")
        return StepVerdict(healthy=False, reason=reason)

    # ------------------------------------------------------------------
    @staticmethod
    def params_healthy(params: list[Parameter]) -> bool:
        """Whether every parameter is still finite."""
        return all(np.isfinite(param.data).all() for param in params)

    @staticmethod
    def embeddings_healthy(*embeddings) -> bool:
        """Whether every embedding array/tensor is finite."""
        for emb in embeddings:
            data = emb.data if hasattr(emb, "data") else np.asarray(emb)
            if not np.isfinite(data).all():
                return False
        return True

    def note_rollback(self) -> None:
        self.rollbacks += 1
        self._emit("rollback", {"rollbacks": self.rollbacks})

    def summary(self) -> str:
        return (f"health: {self.skipped} skipped batch(es), "
                f"{self.rollbacks} rollback(s), "
                f"budget {self.skip_budget}")
