"""Deterministic fault injection for testing the robustness layer.

Every guard in this package exists because some failure happens in
production; this module makes those failures *reproducible on demand*
so the guards themselves are testable:

* :class:`NaNGradientFault` — poison gradients at chosen global steps
  (exercises the health monitor's skip path);
* :class:`ParamCorruptionFault` — poison a parameter *after* a step
  (exercises checkpoint rollback: skipping cannot undo this);
* :class:`CrashFault` — raise :class:`SimulatedCrash` at a chosen
  epoch boundary (exercises checkpoint/resume);
* :func:`truncate_file` / :func:`corrupt_file` — damage files on disk
  the way an interrupted writer or failing disk would (exercises
  checkpoint verification and the PPM loader guards).

All injectors are deterministic: faults fire at explicit step/epoch
indices, never at random, so a failing test replays exactly.
"""

from __future__ import annotations

import os
import pathlib
from typing import Iterable

import numpy as np

__all__ = ["SimulatedCrash", "FaultInjector", "ChainedFaults",
           "NaNGradientFault", "ParamCorruptionFault", "CrashFault",
           "truncate_file", "corrupt_file"]


class SimulatedCrash(RuntimeError):
    """Stands in for SIGKILL / OOM / power loss in tests."""


class FaultInjector:
    """Hook points the trainer calls; the no-op base injects nothing.

    Subclasses override any subset. ``step`` is the 0-based *global*
    batch counter (monotone across epochs); ``epoch`` is 0-based.
    """

    def on_gradients(self, step: int, params: list) -> None:
        """Called after backward, before the health check (may mutate
        ``param.grad`` in place)."""

    def on_step_end(self, step: int, params: list) -> None:
        """Called after the optimizer step (may mutate ``param.data``)."""

    def on_epoch_end(self, epoch: int) -> None:
        """Called after an epoch's stats (and checkpoint, if any) are
        written; may raise :class:`SimulatedCrash`."""


class ChainedFaults(FaultInjector):
    """Compose several injectors; each hook runs them in order."""

    def __init__(self, injectors: Iterable[FaultInjector]):
        self.injectors = list(injectors)

    def on_gradients(self, step: int, params: list) -> None:
        for injector in self.injectors:
            injector.on_gradients(step, params)

    def on_step_end(self, step: int, params: list) -> None:
        for injector in self.injectors:
            injector.on_step_end(step, params)

    def on_epoch_end(self, epoch: int) -> None:
        for injector in self.injectors:
            injector.on_epoch_end(epoch)


class NaNGradientFault(FaultInjector):
    """Overwrite one parameter's gradient with NaN at given steps."""

    def __init__(self, steps: Iterable[int], param_index: int = 0,
                 value: float = float("nan")):
        self.steps = set(int(s) for s in steps)
        self.param_index = param_index
        self.value = value
        self.fired: list[int] = []

    def on_gradients(self, step: int, params: list) -> None:
        if step not in self.steps:
            return
        param = params[self.param_index % len(params)]
        if param.grad is None:
            param.grad = np.zeros_like(param.data)
        param.grad.fill(self.value)
        self.fired.append(step)


class ParamCorruptionFault(FaultInjector):
    """Poison a parameter value itself right after a step.

    The health monitor's skip policy cannot repair this — only a
    rollback to the last good checkpoint can, which is exactly the
    path this fault exists to exercise.
    """

    def __init__(self, step: int, param_index: int = 0,
                 value: float = float("nan")):
        self.step = int(step)
        self.param_index = param_index
        self.value = value
        self.fired: list[int] = []

    def on_step_end(self, step: int, params: list) -> None:
        if step != self.step:
            return
        param = params[self.param_index % len(params)]
        param.data.reshape(-1)[0] = self.value
        self.fired.append(step)


class CrashFault(FaultInjector):
    """Kill the process (by exception) at the end of one epoch."""

    def __init__(self, epoch: int):
        self.epoch = int(epoch)

    def on_epoch_end(self, epoch: int) -> None:
        if epoch == self.epoch:
            raise SimulatedCrash(f"simulated kill after epoch {epoch}")


# ----------------------------------------------------------------------
# On-disk damage
# ----------------------------------------------------------------------
def truncate_file(path, keep_fraction: float = 0.5) -> int:
    """Truncate ``path`` as an interrupted writer would; returns the
    resulting size in bytes."""
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    path = pathlib.Path(path)
    size = path.stat().st_size
    kept = int(size * keep_fraction)
    with open(path, "rb+") as handle:
        handle.truncate(kept)
        handle.flush()
        os.fsync(handle.fileno())
    return kept


def corrupt_file(path, offset: int = 0, length: int = 64,
                 value: int = 0xFF) -> None:
    """Overwrite a byte range in place (bit-rot / bad-sector stand-in)."""
    path = pathlib.Path(path)
    size = path.stat().st_size
    offset = min(max(offset, 0), max(size - 1, 0))
    with open(path, "rb+") as handle:
        handle.seek(offset)
        handle.write(bytes([value]) * min(length, size - offset))
