"""Deterministic fault injection for testing the robustness layer.

Every guard in this package exists because some failure happens in
production; this module makes those failures *reproducible on demand*
so the guards themselves are testable:

* :class:`NaNGradientFault` — poison gradients at chosen global steps
  (exercises the health monitor's skip path);
* :class:`ParamCorruptionFault` — poison a parameter *after* a step
  (exercises checkpoint rollback: skipping cannot undo this);
* :class:`CrashFault` — raise :class:`SimulatedCrash` at a chosen
  epoch boundary (exercises checkpoint/resume);
* :func:`truncate_file` / :func:`corrupt_file` — damage files on disk
  the way an interrupted writer or failing disk would (exercises
  checkpoint verification and the PPM loader guards);
* :class:`ServingFault` subclasses — query-side failures hooked into
  the resilient service's embed/index stages: slow embeds
  (:class:`SlowEmbedFault`), NaN embeddings (:class:`NaNEmbedFault`),
  in-place index corruption (:class:`IndexCorruptionFault`), and a
  corpus swap fired mid-request (:class:`SwapMidQueryFault`);
* :class:`ClusterFault` subclasses — shard/replica failures hooked
  into :class:`~repro.serving.cluster.IndexCluster` fan-outs: replica
  processes dying mid-run (:class:`ReplicaCrash`), one shard's
  replicas going slow (:class:`SlowShard`), and a whole shard lost at
  once (:class:`ShardLoss`);
* :class:`IngestFault` subclasses — streaming-ingest failures hooked
  into the write-ahead log and the compaction protocol: a write torn
  by a crash (:class:`TornWrite`), a full disk
  (:class:`DiskFullOnAppend`), the compactor dying at a chosen
  protocol phase (:class:`CrashMidCompaction`), and queries fired at
  the protocol edges (:class:`CompactionRacingQueries`);
* overload shapes — a fleet-wide demand spike
  (:class:`OverloadStorm`) and a single tenant flooding
  (:class:`TenantFlood`) plug into the load generator's rate shaper,
  while :class:`SlowEmbedUnderLoad` makes the embed stage degrade
  *with* concurrency, the feedback loop adaptive admission exists to
  break.

Wire-level faults — misbehaving *clients* rather than broken
internals (slowloris drips, mid-response resets, connection floods,
truncated bodies) — live in :mod:`repro.serving.netfaults`; they need
a live gateway socket and so run in the ``gateway`` chaos suite, not
here.

All injectors are deterministic: faults fire at explicit step/epoch/
request indices, never at random, so a failing test replays exactly.
"""

from __future__ import annotations

import os
import pathlib
import time
from typing import Callable, Iterable

import numpy as np

__all__ = ["SimulatedCrash", "FaultInjector", "ChainedFaults",
           "NaNGradientFault", "ParamCorruptionFault", "CrashFault",
           "truncate_file", "corrupt_file",
           "ServingFault", "ChainedServingFaults", "SlowEmbedFault",
           "NaNEmbedFault", "IndexCorruptionFault", "SwapMidQueryFault",
           "ClusterFault", "ChainedClusterFaults", "ReplicaCrash",
           "SlowShard", "ShardLoss",
           "IngestFault", "ChainedIngestFaults", "TornWrite",
           "DiskFullOnAppend", "CrashMidCompaction",
           "CompactionRacingQueries",
           "OverloadStorm", "TenantFlood", "SlowEmbedUnderLoad"]


class SimulatedCrash(RuntimeError):
    """Stands in for SIGKILL / OOM / power loss in tests."""


class FaultInjector:
    """Hook points the trainer calls; the no-op base injects nothing.

    Subclasses override any subset. ``step`` is the 0-based *global*
    batch counter (monotone across epochs); ``epoch`` is 0-based.
    """

    def on_gradients(self, step: int, params: list) -> None:
        """Called after backward, before the health check (may mutate
        ``param.grad`` in place)."""

    def on_step_end(self, step: int, params: list) -> None:
        """Called after the optimizer step (may mutate ``param.data``)."""

    def on_epoch_end(self, epoch: int) -> None:
        """Called after an epoch's stats (and checkpoint, if any) are
        written; may raise :class:`SimulatedCrash`."""


class ChainedFaults(FaultInjector):
    """Compose several injectors; each hook runs them in order."""

    def __init__(self, injectors: Iterable[FaultInjector]):
        self.injectors = list(injectors)

    def on_gradients(self, step: int, params: list) -> None:
        for injector in self.injectors:
            injector.on_gradients(step, params)

    def on_step_end(self, step: int, params: list) -> None:
        for injector in self.injectors:
            injector.on_step_end(step, params)

    def on_epoch_end(self, epoch: int) -> None:
        for injector in self.injectors:
            injector.on_epoch_end(epoch)


class NaNGradientFault(FaultInjector):
    """Overwrite one parameter's gradient with NaN at given steps."""

    def __init__(self, steps: Iterable[int], param_index: int = 0,
                 value: float = float("nan")):
        self.steps = set(int(s) for s in steps)
        self.param_index = param_index
        self.value = value
        self.fired: list[int] = []

    def on_gradients(self, step: int, params: list) -> None:
        if step not in self.steps:
            return
        param = params[self.param_index % len(params)]
        if param.grad is None:
            param.grad = np.zeros_like(param.data)
        param.grad.fill(self.value)
        self.fired.append(step)


class ParamCorruptionFault(FaultInjector):
    """Poison a parameter value itself right after a step.

    The health monitor's skip policy cannot repair this — only a
    rollback to the last good checkpoint can, which is exactly the
    path this fault exists to exercise.
    """

    def __init__(self, step: int, param_index: int = 0,
                 value: float = float("nan")):
        self.step = int(step)
        self.param_index = param_index
        self.value = value
        self.fired: list[int] = []

    def on_step_end(self, step: int, params: list) -> None:
        if step != self.step:
            return
        param = params[self.param_index % len(params)]
        param.data.reshape(-1)[0] = self.value
        self.fired.append(step)


class CrashFault(FaultInjector):
    """Kill the process (by exception) at the end of one epoch."""

    def __init__(self, epoch: int):
        self.epoch = int(epoch)

    def on_epoch_end(self, epoch: int) -> None:
        if epoch == self.epoch:
            raise SimulatedCrash(f"simulated kill after epoch {epoch}")


# ----------------------------------------------------------------------
# Serving-side faults
# ----------------------------------------------------------------------
class ServingFault:
    """Hook points the resilient search service calls per request.

    ``request_id`` is the service's monotone request counter, so a
    scripted schedule pins faults to exact requests.  The embed hooks
    fire once per *attempt*, which lets one request exhaust a whole
    retry budget against a persistent fault.  The no-op base injects
    nothing.
    """

    def on_embed_start(self, request_id: int) -> None:
        """Called before each embed attempt (may sleep or raise)."""

    def on_embed_result(self, request_id: int,
                        vector: np.ndarray) -> np.ndarray:
        """Called with each embed attempt's output; the return value
        replaces it (poison it here)."""
        return vector

    def on_index_start(self, request_id: int, index) -> None:
        """Called before the index query with the generation's live
        :class:`~repro.retrieval.index.NearestNeighborIndex` (may
        mutate it in place, or trigger out-of-band actions such as a
        hot-swap)."""


class ChainedServingFaults(ServingFault):
    """Compose several serving faults; each hook runs them in order."""

    def __init__(self, faults: Iterable[ServingFault]):
        self.faults = list(faults)

    def on_embed_start(self, request_id: int) -> None:
        for fault in self.faults:
            fault.on_embed_start(request_id)

    def on_embed_result(self, request_id: int,
                        vector: np.ndarray) -> np.ndarray:
        for fault in self.faults:
            vector = fault.on_embed_result(request_id, vector)
        return vector

    def on_index_start(self, request_id: int, index) -> None:
        for fault in self.faults:
            fault.on_index_start(request_id, index)


class SlowEmbedFault(ServingFault):
    """Stall the embed stage of chosen requests by ``delay`` seconds.

    ``sleep`` is the same injectable the service uses (a fake clock's
    ``sleep`` under test), so the stall consumes deadline budget
    without any real waiting.
    """

    def __init__(self, requests: Iterable[int], delay: float,
                 sleep: Callable[[float], None]):
        self.requests = {int(r) for r in requests}
        self.delay = float(delay)
        self.sleep = sleep
        self.fired: list[int] = []

    def on_embed_start(self, request_id: int) -> None:
        if request_id in self.requests:
            self.sleep(self.delay)
            self.fired.append(request_id)


class NaNEmbedFault(ServingFault):
    """Poison the embed output of chosen requests with NaNs.

    Fires on every attempt of a targeted request, so retries cannot
    save it — the request must fall through to the breaker/degraded
    path.
    """

    def __init__(self, requests: Iterable[int]):
        self.requests = {int(r) for r in requests}
        self.fired: list[int] = []

    def on_embed_result(self, request_id: int,
                        vector: np.ndarray) -> np.ndarray:
        if request_id not in self.requests:
            return vector
        self.fired.append(request_id)
        return np.full_like(np.asarray(vector, dtype=np.float64),
                            np.nan)


class IndexCorruptionFault(ServingFault):
    """Overwrite a live index's embeddings with NaN, in place.

    The damage is persistent — exactly what a bad memory page or a
    botched refresh looks like — so recovery requires a hot-swap, not
    a retry.
    """

    def __init__(self, requests: Iterable[int]):
        self.requests = {int(r) for r in requests}
        self.fired: list[int] = []

    def on_index_start(self, request_id: int, index) -> None:
        if request_id in self.requests:
            index.embeddings.fill(np.nan)
            self.fired.append(request_id)


class SwapMidQueryFault(ServingFault):
    """Run ``trigger`` (typically a corpus hot-swap) between one
    request's embed and index stages — the worst possible moment.

    The service must still answer that request entirely from the
    generation it snapshotted at admission.
    """

    def __init__(self, request: int, trigger: Callable[[], None]):
        self.request = int(request)
        self.trigger = trigger
        self.fired = False

    def on_index_start(self, request_id: int, index) -> None:
        if request_id == self.request and not self.fired:
            self.fired = True
            self.trigger()


# ----------------------------------------------------------------------
# Cluster-side faults
# ----------------------------------------------------------------------
class ClusterFault:
    """Hook points an :class:`~repro.serving.cluster.IndexCluster`
    calls per fan-out.

    ``query_id`` is the cluster's monotone query counter, so fault
    schedules pin to exact queries.  ``on_cluster_query`` fires once
    per fan-out, before validation and shard dispatch, with the
    cluster itself (kill replicas, trip breakers, rewire topology);
    ``on_replica_query`` fires on each replica *attempt* — including
    failover and hedge attempts — and may sleep or raise.  The no-op
    base injects nothing.
    """

    def on_cluster_query(self, query_id: int, cluster) -> None:
        """Called at the start of each fan-out."""

    def on_replica_query(self, query_id: int, shard_id: int,
                         replica_id: int) -> None:
        """Called before each replica attempt (may sleep or raise)."""


class ChainedClusterFaults(ClusterFault):
    """Compose several cluster faults; each hook runs them in order."""

    def __init__(self, faults: Iterable[ClusterFault]):
        self.faults = list(faults)

    def on_cluster_query(self, query_id: int, cluster) -> None:
        for fault in self.faults:
            fault.on_cluster_query(query_id, cluster)

    def on_replica_query(self, query_id: int, shard_id: int,
                         replica_id: int) -> None:
        for fault in self.faults:
            fault.on_replica_query(query_id, shard_id, replica_id)


class ReplicaCrash(ClusterFault):
    """Kill chosen replicas at chosen queries.

    ``schedule`` maps a query id to the ``(shard_id, replica_id)``
    pairs whose processes die just as that fan-out begins.  The damage
    persists until anti-entropy rebuilds the replica from a live
    sibling — exactly a worker OOM-kill mid-traffic.
    """

    def __init__(self, schedule: dict):
        self.schedule = {int(q): [(int(s), int(r)) for s, r in pairs]
                         for q, pairs in schedule.items()}
        self.fired: list[tuple[int, int, int]] = []

    def on_cluster_query(self, query_id: int, cluster) -> None:
        for shard_id, replica_id in self.schedule.get(query_id, ()):
            cluster.crash_replica(shard_id, replica_id)
            self.fired.append((query_id, shard_id, replica_id))


class SlowShard(ClusterFault):
    """Stall replica attempts on one shard by ``delay`` seconds.

    Targets ``shard_id`` (optionally a single ``replica_id`` — the
    straggler scenario hedging exists for: the primary stalls while
    its sibling is fine) on the given query ids.  ``sleep`` is
    injectable; chaos tests that measure wall-clock tail latency pass
    ``time.sleep``.
    """

    def __init__(self, queries: Iterable[int], shard_id: int,
                 delay: float, sleep: Callable[[float], None],
                 replica_id: int | None = None):
        self.queries = {int(q) for q in queries}
        self.shard_id = int(shard_id)
        self.replica_id = (None if replica_id is None
                           else int(replica_id))
        self.delay = float(delay)
        self.sleep = sleep
        self.fired: list[tuple[int, int, int]] = []

    def on_replica_query(self, query_id: int, shard_id: int,
                         replica_id: int) -> None:
        if query_id not in self.queries or shard_id != self.shard_id:
            return
        if self.replica_id is not None and replica_id != self.replica_id:
            return
        self.sleep(self.delay)
        self.fired.append((query_id, shard_id, replica_id))


class ShardLoss(ClusterFault):
    """Lose every replica of one shard at a chosen query.

    With no live sibling left, anti-entropy has no donor: the shard
    stays dark and every later fan-out must degrade to a partial
    result rather than fail.
    """

    def __init__(self, query: int, shard_id: int):
        self.query = int(query)
        self.shard_id = int(shard_id)
        self.fired = False

    def on_cluster_query(self, query_id: int, cluster) -> None:
        if query_id != self.query or self.fired:
            return
        self.fired = True
        for replica in cluster.shards[self.shard_id].replicas:
            cluster.crash_replica(self.shard_id, replica.replica_id)


# ----------------------------------------------------------------------
# Streaming-ingest faults (WAL appends and compaction phases)
# ----------------------------------------------------------------------
class IngestFault:
    """Hooks into the write-ahead log and the compaction protocol.

    ``on_append`` sees the framed wire bytes of record ``record_index``
    (0-based, counted per process lifetime) and returns what actually
    reaches the disk — returning a prefix manufactures a torn write,
    raising :class:`OSError` manufactures a full disk.
    ``after_append`` runs once the bytes are down and may raise
    :class:`SimulatedCrash` to model the process dying before it can
    use the acknowledgement.  ``on_compaction`` fires at each protocol
    phase (``folded`` → ``base_written`` → ``manifest_written`` →
    ``committed``, or ``aborted``).
    """

    def on_append(self, record_index: int, data: bytes) -> bytes:
        return data

    def after_append(self, record_index: int) -> None:
        pass

    def on_compaction(self, phase: str) -> None:
        pass


class ChainedIngestFaults(IngestFault):
    """Compose several ingest faults into one injector."""

    def __init__(self, faults: Iterable[IngestFault]):
        self.faults = list(faults)

    def on_append(self, record_index: int, data: bytes) -> bytes:
        for fault in self.faults:
            data = fault.on_append(record_index, data)
        return data

    def after_append(self, record_index: int) -> None:
        for fault in self.faults:
            fault.after_append(record_index)

    def on_compaction(self, phase: str) -> None:
        for fault in self.faults:
            fault.on_compaction(phase)


class TornWrite(IngestFault):
    """kill -9 halfway through appending one chosen record.

    The record's wire bytes are cut to ``keep_fraction`` (header
    included, so the CRC can never match) and the process then "dies"
    via :class:`SimulatedCrash` — the torn tail stays on disk exactly
    as a real crash would leave it, and the write was never
    acknowledged.
    """

    def __init__(self, record: int, keep_fraction: float = 0.5):
        if not 0.0 <= keep_fraction < 1.0:
            raise ValueError("keep_fraction must be in [0, 1)")
        self.record = int(record)
        self.keep_fraction = float(keep_fraction)
        self.fired: list[int] = []

    def on_append(self, record_index: int, data: bytes) -> bytes:
        if record_index != self.record:
            return data
        kept = max(1, int(len(data) * self.keep_fraction))
        return data[:kept]

    def after_append(self, record_index: int) -> None:
        if record_index == self.record:
            self.fired.append(record_index)
            raise SimulatedCrash(
                f"process died mid-append of record {record_index}")


class DiskFullOnAppend(IngestFault):
    """ENOSPC on chosen appends; the log must roll back cleanly."""

    def __init__(self, records: Iterable[int]):
        self.records = set(int(r) for r in records)
        self.fired: list[int] = []

    def on_append(self, record_index: int, data: bytes) -> bytes:
        if record_index in self.records:
            self.fired.append(record_index)
            raise OSError(28, "No space left on device")
        return data


class CrashMidCompaction(IngestFault):
    """Die at a chosen compaction phase (``folded``, ``base_written``,
    or ``manifest_written``) — recovery must reach the same state as
    if the compaction had never started (before the manifest moved) or
    had fully committed (after)."""

    def __init__(self, phase: str):
        self.phase = str(phase)
        self.fired: list[str] = []

    def on_compaction(self, phase: str) -> None:
        if phase == self.phase and not self.fired:
            self.fired.append(phase)
            raise SimulatedCrash(
                f"process died at compaction phase {phase!r}")


class CompactionRacingQueries(IngestFault):
    """Run a callback at every compaction phase — the chaos suite uses
    it to fire queries at the exact protocol edges and assert each
    effective recipe is observed exactly once throughout the swap."""

    def __init__(self, callback: Callable[[str], None],
                 phases: Iterable[str] | None = None):
        self.callback = callback
        self.phases = None if phases is None else set(phases)
        self.fired: list[str] = []

    def on_compaction(self, phase: str) -> None:
        if self.phases is None or phase in self.phases:
            self.fired.append(phase)
            self.callback(phase)


# ----------------------------------------------------------------------
# Overload shapes (rate shapers for the load generator + one serving
# fault that couples latency to concurrency)
# ----------------------------------------------------------------------
class OverloadStorm:
    """Multiply *every* tenant's offered rate by ``factor`` during the
    window ``[start_s, end_s)``.

    A rate shaper for :class:`~repro.serving.loadgen.LoadGenerator`:
    called as ``shaper(t, tenant)`` with ``t`` seconds since the run
    started, it returns the multiplier to apply at that instant.  A
    10× storm is ``OverloadStorm(10.0, start_s=0.5, end_s=1.5)`` —
    deterministic, so a failing chaos run replays exactly.
    """

    def __init__(self, factor: float, start_s: float = 0.0,
                 end_s: float = float("inf")):
        if factor <= 0:
            raise ValueError("storm factor must be positive")
        if end_s <= start_s:
            raise ValueError("storm window must be non-empty")
        self.factor = float(factor)
        self.start_s = float(start_s)
        self.end_s = float(end_s)

    def __call__(self, t: float, tenant: str | None = None) -> float:
        if self.start_s <= t < self.end_s:
            return self.factor
        return 1.0


class TenantFlood(OverloadStorm):
    """One tenant's offered rate multiplied by ``factor``; everyone
    else is unaffected.

    The fairness scenario: the flooded lane must absorb its own abuse
    (sheds charged to ``tenant``) while well-behaved tenants keep
    their weighted share of admissions.
    """

    def __init__(self, tenant: str, factor: float,
                 start_s: float = 0.0, end_s: float = float("inf")):
        super().__init__(factor, start_s, end_s)
        self.tenant = str(tenant)

    def __call__(self, t: float, tenant: str | None = None) -> float:
        if tenant != self.tenant:
            return 1.0
        return super().__call__(t, tenant)


class SlowEmbedUnderLoad(ServingFault):
    """Embed latency that grows linearly with concurrent requests.

    This is the congestion-collapse feedback loop: more inflight work
    → slower embeds → requests hold their slots longer → more queued
    work.  A static admission limit happily drives the service into
    the regime where *every* request times out; the adaptive limiter
    must find the concurrency knee instead.  ``inflight_fn`` reads the
    live inflight count (``service.admission.inflight`` wired by the
    chaos suite); ``sleep`` is injectable for fake-clock tests.
    """

    def __init__(self, inflight_fn: Callable[[], int],
                 delay_per_inflight_s: float = 0.02,
                 sleep: Callable[[float], None] | None = None):
        if delay_per_inflight_s < 0:
            raise ValueError("delay_per_inflight_s must be >= 0")
        self.inflight_fn = inflight_fn
        self.delay_per_inflight_s = float(delay_per_inflight_s)
        self.sleep = time.sleep if sleep is None else sleep
        self.fired: list[tuple[int, int]] = []

    def on_embed_start(self, request_id: int) -> None:
        inflight = max(0, int(self.inflight_fn()))
        delay = inflight * self.delay_per_inflight_s
        if delay > 0:
            self.sleep(delay)
        self.fired.append((request_id, inflight))


# ----------------------------------------------------------------------
# On-disk damage
# ----------------------------------------------------------------------
def truncate_file(path, keep_fraction: float = 0.5) -> int:
    """Truncate ``path`` as an interrupted writer would; returns the
    resulting size in bytes."""
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    path = pathlib.Path(path)
    size = path.stat().st_size
    kept = int(size * keep_fraction)
    with open(path, "rb+") as handle:
        handle.truncate(kept)
        handle.flush()
        os.fsync(handle.fileno())
    return kept


def corrupt_file(path, offset: int = 0, length: int = 64,
                 value: int = 0xFF) -> None:
    """Overwrite a byte range in place (bit-rot / bad-sector stand-in)."""
    path = pathlib.Path(path)
    size = path.stat().st_size
    offset = min(max(offset, 0), max(size - 1, 0))
    with open(path, "rb+") as handle:
        handle.seek(offset)
        handle.write(bytes([value]) * min(length, size - offset))
