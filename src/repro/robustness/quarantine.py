"""Corrupt-record quarantine for the data pipeline.

Production corpora contain damage — truncated images, NaN pixels,
entries missing fields, labels outside the taxonomy. Crashing the whole
import (or worse, silently training on garbage) are both wrong; the
loaders instead *validate* each record and route failures into a
:class:`QuarantineReport` that counts and explains every rejection.

The validators are dependency-free (plain numpy + duck typing) so this
module sits below :mod:`repro.data` without creating an import cycle.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

__all__ = ["QuarantinedRecord", "QuarantineReport", "validate_image",
           "validate_recipe_entry", "validate_recipe"]


@dataclass(frozen=True)
class QuarantinedRecord:
    """One rejected record and why it was rejected."""

    record_id: str
    reason: str


@dataclass
class QuarantineReport:
    """Accumulates rejected records across a load/encode pass."""

    records: list[QuarantinedRecord] = field(default_factory=list)

    def add(self, record_id, reason: str) -> None:
        self.records.append(QuarantinedRecord(str(record_id), reason))

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def counts_by_reason(self) -> dict[str, int]:
        return dict(Counter(record.reason for record in self.records))

    def ids(self) -> list[str]:
        return [record.record_id for record in self.records]

    def summary(self) -> str:
        if not self.records:
            return "quarantine: 0 records"
        lines = [f"quarantine: {len(self.records)} record(s)"]
        for reason, count in sorted(self.counts_by_reason().items()):
            lines.append(f"  {count} x {reason}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Validators — each returns a rejection reason, or None when valid.
# ----------------------------------------------------------------------
def validate_image(image, channels: int = 3,
                   value_range: tuple[float, float] = (0.0, 1.0),
                   tolerance: float = 1e-6) -> str | None:
    """Check an image array: shape, dtype, finiteness, value range."""
    try:
        image = np.asarray(image, dtype=np.float64)
    except (TypeError, ValueError):
        return "image not convertible to a float array"
    if image.ndim != 3 or image.shape[0] != channels:
        return (f"image shape {image.shape} is not "
                f"({channels}, H, W) channel-first")
    if image.shape[1] < 1 or image.shape[2] < 1:
        return f"image has an empty spatial axis {image.shape}"
    if not np.isfinite(image).all():
        return "image contains NaN/Inf pixels"
    low, high = value_range
    if image.min() < low - tolerance or image.max() > high + tolerance:
        return (f"image values outside [{low}, {high}] "
                f"(observed [{image.min():.3g}, {image.max():.3g}])")
    return None


def validate_recipe_entry(entry, num_classes: int | None = None,
                          class_id=None) -> str | None:
    """Check one Recipe1M ``layer1.json`` entry (a plain dict)."""
    if not isinstance(entry, dict):
        return f"entry is {type(entry).__name__}, not an object"
    for key in ("id", "title", "ingredients", "instructions"):
        if key not in entry:
            return f"entry missing field {key!r}"
    if not isinstance(entry["ingredients"], list) or not entry["ingredients"]:
        return "entry has an empty or malformed ingredient list"
    if not isinstance(entry["instructions"], list):
        return "entry has a malformed instruction list"
    for item in entry["ingredients"] + entry["instructions"]:
        if not isinstance(item, dict) or "text" not in item:
            return "ingredient/instruction item missing 'text'"
    if class_id is not None and num_classes is not None:
        if not isinstance(class_id, int) or not (0 <= class_id < num_classes):
            return (f"class id {class_id!r} outside taxonomy "
                    f"[0, {num_classes})")
    return None


def validate_recipe(recipe, num_classes: int | None = None) -> str | None:
    """Check a constructed :class:`~repro.data.schema.Recipe`-like
    object (duck-typed to avoid importing :mod:`repro.data` here)."""
    if not recipe.ingredients:
        return "recipe has no ingredients"
    if not recipe.instructions:
        return "recipe has no instructions"
    if recipe.class_id is not None and num_classes is not None:
        if not (0 <= recipe.class_id < num_classes):
            return (f"class id {recipe.class_id} outside taxonomy "
                    f"[0, {num_classes})")
    return validate_image(recipe.image)
