"""AdaMine: cross-modal recipe/image retrieval.

A full from-scratch reproduction of "Cross-Modal Retrieval in the
Cooking Context: Learning Semantic Text-Image Embeddings" (Carvalho et
al., SIGIR 2018; companion ICDE 2018 paper "Images & Recipes") on a
numpy-only deep learning substrate with a synthetic Recipe1M.
"""

from . import (analysis, autograd, baselines, core, data, experiments, nn,
               optim, retrieval, text, vision)

__version__ = "1.0.0"

__all__ = [
    "autograd", "nn", "optim", "text", "vision", "data", "core",
    "baselines", "retrieval", "analysis", "experiments", "__version__",
]
