"""Factory for every model scenario evaluated in the paper (§4.3).

===============  ====================================================
Scenario         Meaning
===============  ====================================================
adamine          Retrieval + semantic triplet losses, adaptive mining
adamine_ins      Instance (retrieval) loss only, adaptive mining
adamine_sem      Semantic loss only, adaptive mining
adamine_ins_cls  Instance loss + classification head (as in [33])
adamine_avg      Both losses, plain gradient averaging (no mining)
adamine_ingr     Full AdaMine, ingredients-only recipe branch
adamine_instr    Full AdaMine, instructions-only recipe branch
pwc_star         Pairwise loss + classification head (PWC* of [33])
pwc_pp           PWC* plus the positive margin of Eq. 6 (PWC++)
===============  ====================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..data.encoding import RecipeFeaturizer
from ..vision import build_image_encoder
from .branches import ImageBranch, RecipeBranch
from .model import JointEmbeddingModel
from .trainer import TrainingConfig

__all__ = ["SCENARIO_NAMES", "ScenarioSpec", "scenario_spec",
           "build_model", "build_scenario"]

SCENARIO_NAMES = (
    "adamine", "adamine_ins", "adamine_sem", "adamine_ins_cls",
    "adamine_avg", "adamine_ingr", "adamine_instr", "pwc_star", "pwc_pp",
    "adamine_hier",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """What a named scenario changes relative to the full AdaMine."""

    name: str
    description: str
    use_instance_loss: bool = True
    use_semantic_loss: bool = True
    use_classification: bool = False
    strategy: str = "adaptive"
    objective: str = "triplet"
    use_ingredients: bool = True
    use_instructions: bool = True
    positive_margin: float = 0.3
    use_hierarchical: bool = False


_SPECS = {
    "adamine": ScenarioSpec(
        "adamine", "retrieval + semantic losses, adaptive mining"),
    "adamine_ins": ScenarioSpec(
        "adamine_ins", "retrieval loss only", use_semantic_loss=False),
    "adamine_sem": ScenarioSpec(
        "adamine_sem", "semantic loss only", use_instance_loss=False),
    "adamine_ins_cls": ScenarioSpec(
        "adamine_ins_cls", "retrieval loss + classification head",
        use_semantic_loss=False, use_classification=True),
    "adamine_avg": ScenarioSpec(
        "adamine_avg", "both losses, gradient averaging",
        strategy="average"),
    "adamine_ingr": ScenarioSpec(
        "adamine_ingr", "full model, ingredients only",
        use_instructions=False),
    "adamine_instr": ScenarioSpec(
        "adamine_instr", "full model, instructions only",
        use_ingredients=False),
    "pwc_star": ScenarioSpec(
        "pwc_star", "pairwise loss + classification head ([33] reimpl.)",
        objective="pairwise", use_classification=True,
        positive_margin=0.0),
    "pwc_pp": ScenarioSpec(
        "pwc_pp", "pairwise loss with positive margin + classification",
        objective="pairwise", use_classification=True,
        positive_margin=0.3),
    "adamine_hier": ScenarioSpec(
        "adamine_hier", "AdaMine + two-level (class/group) semantic loss "
        "(the paper's future-work extension)",
        use_hierarchical=True),
}


def scenario_spec(name: str) -> ScenarioSpec:
    """Look up a scenario by name."""
    if name not in _SPECS:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"expected one of {SCENARIO_NAMES}")
    return _SPECS[name]


def build_model(featurizer: RecipeFeaturizer, num_classes: int,
                image_size: int, latent_dim: int = 32,
                backbone: str = "mlp", seed: int = 0,
                use_ingredients: bool = True,
                use_instructions: bool = True,
                with_classifier: bool = False) -> JointEmbeddingModel:
    """Assemble a :class:`JointEmbeddingModel` from a fitted featurizer."""
    rng = np.random.default_rng(seed)
    encoder = build_image_encoder(backbone, rng, image_size,
                                  feature_dim=latent_dim)
    image_branch = ImageBranch(encoder, latent_dim, rng)
    recipe_branch = RecipeBranch(
        featurizer.ingredient_vectors,
        sentence_dim=featurizer.sentence_dim,
        latent_dim=latent_dim,
        rng=rng,
        use_ingredients=use_ingredients,
        use_instructions=use_instructions,
    )
    return JointEmbeddingModel(
        image_branch, recipe_branch,
        num_classes=num_classes if with_classifier else None,
        rng=rng)


def build_scenario(name: str, featurizer: RecipeFeaturizer,
                   num_classes: int, image_size: int,
                   base_config: TrainingConfig | None = None,
                   latent_dim: int = 32, backbone: str = "mlp",
                   seed: int = 0
                   ) -> tuple[JointEmbeddingModel, TrainingConfig]:
    """Build the model and training configuration of a named scenario.

    ``base_config`` carries the experiment scale (epochs, batch size,
    learning rate); the scenario overrides only the fields that define
    it (losses, mining strategy, recipe-branch ablation).
    """
    spec = scenario_spec(name)
    base = base_config or TrainingConfig()
    config = dataclasses.replace(
        base,
        objective=spec.objective,
        strategy=spec.strategy,
        use_instance_loss=spec.use_instance_loss,
        use_semantic_loss=spec.use_semantic_loss,
        use_classification=spec.use_classification,
        positive_margin=spec.positive_margin,
        use_hierarchical=spec.use_hierarchical,
        seed=seed,
    )
    model = build_model(
        featurizer, num_classes, image_size,
        latent_dim=latent_dim, backbone=backbone, seed=seed,
        use_ingredients=spec.use_ingredients,
        use_instructions=spec.use_instructions,
        with_classifier=spec.use_classification,
    )
    return model, config
