"""Adaptive triplet mining (§3.3 — the "AdaMine" in AdaMine).

Given the per-triplet hinge losses of a mini-batch, an aggregation
strategy turns them into the scalar whose gradient is the SGD update:

* ``"average"`` — divide by the *total* number of triplets. This is the
  standard practice the paper criticizes: as training progresses most
  triplets satisfy their constraint and contribute zeros, so the update
  vanishes.
* ``"adaptive"`` — divide by β′, the number of *informative* (non-zero)
  triplets only (Eq. 4–5). Early in training β′ ≈ total (behaves like
  averaging); late in training only hard negatives remain active and
  still receive full-magnitude updates — an automatic curriculum with
  no switch-point hyperparameter.
* ``"hard"`` — classical hard-negative mining: keep only the single
  largest violation per query. Provided for the ablation benchmarks.

β′ is a count, not a differentiated quantity, so the normalizer is
computed from detached loss values.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor

__all__ = ["STRATEGIES", "aggregate_triplets", "count_active"]

STRATEGIES = ("adaptive", "average", "hard")


def count_active(losses: Tensor, tol: float = 0.0) -> int:
    """Number of triplets with a non-zero hinge loss (β′ of Eq. 5)."""
    return int((losses.data > tol).sum())


def aggregate_triplets(losses: Tensor, strategy: str = "adaptive",
                       query_ids: np.ndarray | None = None) -> Tensor:
    """Reduce a flat vector of per-triplet losses to a scalar.

    Parameters
    ----------
    losses:
        1-D tensor of hinge losses ``[d(q,p) + α − d(q,n)]₊``.
    strategy:
        One of :data:`STRATEGIES`.
    query_ids:
        Required for ``"hard"``: which query each triplet belongs to,
        so the max is taken per query.

    Returns a scalar tensor; zero (constant) when nothing is active.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown mining strategy {strategy!r}; "
                         f"expected one of {STRATEGIES}")
    if losses.ndim != 1:
        raise ValueError("losses must be a flat vector of triplet losses")
    total = losses.shape[0]
    if total == 0:
        return Tensor(0.0)

    if strategy == "average":
        return losses.sum() * (1.0 / total)

    if strategy == "adaptive":
        active = count_active(losses)
        if active == 0:
            return Tensor(0.0)
        return losses.sum() * (1.0 / active)

    # strategy == "hard": one hardest triplet per query
    if query_ids is None:
        raise ValueError("hard mining requires query_ids")
    query_ids = np.asarray(query_ids)
    if query_ids.shape != (total,):
        raise ValueError("query_ids must align with losses")
    values = losses.data
    keep = np.zeros(total, dtype=bool)
    for query in np.unique(query_ids):
        rows = np.flatnonzero(query_ids == query)
        hardest = rows[np.argmax(values[rows])]
        if values[hardest] > 0:
            keep[hardest] = True
    kept = int(keep.sum())
    if kept == 0:
        return Tensor(0.0)
    mask = Tensor(keep.astype(np.float64))
    return (losses * mask).sum() * (1.0 / kept)
