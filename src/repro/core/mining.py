"""Adaptive triplet mining (§3.3 — the "AdaMine" in AdaMine).

Given the per-triplet hinge losses of a mini-batch, an aggregation
strategy turns them into the scalar whose gradient is the SGD update:

* ``"average"`` — divide by the *total* number of triplets. This is the
  standard practice the paper criticizes: as training progresses most
  triplets satisfy their constraint and contribute zeros, so the update
  vanishes.
* ``"adaptive"`` — divide by β′, the number of *informative* (non-zero)
  triplets only (Eq. 4–5). Early in training β′ ≈ total (behaves like
  averaging); late in training only hard negatives remain active and
  still receive full-magnitude updates — an automatic curriculum with
  no switch-point hyperparameter.
* ``"hard"`` — classical hard-negative mining: keep only the single
  largest violation per query. Provided for the ablation benchmarks.

β′ is a count, not a differentiated quantity, so the normalizer is
computed from detached loss values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor

__all__ = ["STRATEGIES", "MiningStats", "aggregate_triplets",
           "mine_triplets", "count_active"]

STRATEGIES = ("adaptive", "average", "hard")


@dataclass(frozen=True)
class MiningStats:
    """What the aggregation actually did — the curriculum signal.

    ``beta_prime`` is the normalizer the strategy divided by: the β′
    of Eq. 5 for ``"adaptive"``, the full triplet count for
    ``"average"``, and the number of kept per-query maxima for
    ``"hard"``.  ``active`` is always the raw non-zero-hinge count, so
    the β′ trajectory is observable whatever the strategy.
    """

    strategy: str
    total: int
    active: int
    beta_prime: int

    @property
    def active_fraction(self) -> float:
        return self.active / self.total if self.total else 0.0


def count_active(losses: Tensor, tol: float = 0.0) -> int:
    """Number of triplets with a non-zero hinge loss (β′ of Eq. 5)."""
    return int((losses.data > tol).sum())


def aggregate_triplets(losses: Tensor, strategy: str = "adaptive",
                       query_ids: np.ndarray | None = None) -> Tensor:
    """Reduce a flat vector of per-triplet losses to a scalar.

    Convenience wrapper over :func:`mine_triplets` for callers that
    only want the loss; the trainer uses :func:`mine_triplets` to keep
    the β′ statistics.
    """
    loss, __ = mine_triplets(losses, strategy, query_ids=query_ids)
    return loss


def mine_triplets(losses: Tensor, strategy: str = "adaptive",
                  query_ids: np.ndarray | None = None
                  ) -> tuple[Tensor, MiningStats]:
    """Aggregate per-triplet losses and report the mining statistics.

    Parameters
    ----------
    losses:
        1-D tensor of hinge losses ``[d(q,p) + α − d(q,n)]₊``.
    strategy:
        One of :data:`STRATEGIES`.
    query_ids:
        Required for ``"hard"``: which query each triplet belongs to,
        so the max is taken per query.

    Returns ``(loss, stats)``: a scalar tensor — zero (constant) when
    nothing is active — plus the :class:`MiningStats` whose
    ``beta_prime`` is the normalizer actually used.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown mining strategy {strategy!r}; "
                         f"expected one of {STRATEGIES}")
    if losses.ndim != 1:
        raise ValueError("losses must be a flat vector of triplet losses")
    total = losses.shape[0]
    active = count_active(losses) if total else 0
    if total == 0:
        return Tensor(0.0), MiningStats(strategy, 0, 0, 0)

    if strategy == "average":
        return (losses.sum() * (1.0 / total),
                MiningStats(strategy, total, active, total))

    if strategy == "adaptive":
        if active == 0:
            return Tensor(0.0), MiningStats(strategy, total, 0, 0)
        return (losses.sum() * (1.0 / active),
                MiningStats(strategy, total, active, active))

    # strategy == "hard": one hardest triplet per query
    if query_ids is None:
        raise ValueError("hard mining requires query_ids")
    query_ids = np.asarray(query_ids)
    if query_ids.shape != (total,):
        raise ValueError("query_ids must align with losses")
    values = losses.data
    keep = np.zeros(total, dtype=bool)
    for query in np.unique(query_ids):
        rows = np.flatnonzero(query_ids == query)
        hardest = rows[np.argmax(values[rows])]
        if values[hardest] > 0:
            keep[hardest] = True
    kept = int(keep.sum())
    if kept == 0:
        return Tensor(0.0), MiningStats(strategy, total, active, 0)
    mask = Tensor(keep.astype(np.float64))
    return ((losses * mask).sum() * (1.0 / kept),
            MiningStats(strategy, total, active, kept))
