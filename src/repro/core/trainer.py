"""Training loop for all scenarios (AdaMine variants and PWC baselines).

Reproduces the paper's schedule (§4.4): Adam at lr 1e-4, mini-batches
with the 50/50 labeled/unlabeled composition, the vision backbone
frozen for an initial phase then fine-tuned, and model selection by
the best validation MedR at the end of each epoch.

The loop is fault tolerant (:mod:`repro.robustness`):

* with a ``checkpoint_dir``, :meth:`Trainer.fit` writes an atomic
  checkpoint every ``config.checkpoint_every`` epochs, and
  :meth:`Trainer.resume` continues an interrupted run
  bitwise-deterministically (model, optimizer moments, every RNG
  state, history, and the best-model snapshot are all restored);
* a :class:`~repro.robustness.HealthMonitor` clips gradients by global
  norm and *skips* batches with non-finite losses/gradients or loss
  spikes, within a configurable skip budget;
* parameters that still go non-finite (e.g. injected corruption) are
  *rolled back* to the last good checkpointed state instead of
  poisoning the rest of the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.batching import PairBatcher
from ..data.encoding import EncodedCorpus
from ..obs import Telemetry
from ..obs.drift import DRIFT_REFERENCE_NAME, DriftReference
from ..optim import Adam, TwoPhaseSchedule
from ..retrieval import RetrievalProtocol
from ..robustness import (CheckpointError, CheckpointManager,
                          CheckpointState, FaultInjector, HealthMonitor,
                          NumericalHealthError)
from ..robustness.checkpoint import epoch_stats_to_dict
from ..vision import Augmenter
from .losses import (classification_loss, instance_triplet_loss,
                     pairwise_loss, semantic_triplet_loss)
from .model import JointEmbeddingModel

__all__ = ["TrainingConfig", "EpochStats", "Trainer"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of one training run.

    The defaults mirror the paper where scale allows: margin α = 0.3,
    semantic weight λ = 0.3, Adam lr 1e-4 (scaled up for the much
    smaller CPU models), adaptive mining, bidirectional triplets.

    The robustness knobs (``max_grad_norm``, ``loss_spike_factor``,
    ``skip_budget``, ``checkpoint_every``) feed the
    :class:`~repro.robustness.HealthMonitor` and checkpoint cadence;
    set ``max_grad_norm``/``loss_spike_factor`` to 0 to disable the
    corresponding guard.
    """

    epochs: int = 12
    freeze_epochs: int = 3
    batch_size: int = 32
    learning_rate: float = 1e-3
    margin: float = 0.3
    lambda_sem: float = 0.3
    strategy: str = "adaptive"          # adaptive | average | hard
    objective: str = "triplet"          # triplet | pairwise
    use_instance_loss: bool = True
    use_semantic_loss: bool = True
    use_classification: bool = False
    classification_weight: float = 0.3
    positive_margin: float = 0.3        # pairwise objective only
    negative_margin: float = 0.9
    use_hierarchical: bool = False      # two-level semantic loss
    group_margin: float = 0.15
    group_weight: float = 0.5
    bidirectional: bool = True
    augment: bool = True
    stratify_batches: bool = True
    select_best: bool = True
    eval_bag_size: int = 500
    eval_num_bags: int = 3
    seed: int = 0
    # --- robustness ---------------------------------------------------
    max_grad_norm: float = 100.0        # 0 disables clipping
    loss_spike_factor: float = 25.0     # 0 disables spike detection
    skip_budget: int = 8
    checkpoint_every: int = 1
    keep_checkpoints: int = 3

    def __post_init__(self):
        if self.objective not in ("triplet", "pairwise"):
            raise ValueError(f"unknown objective {self.objective!r}")
        if self.objective == "triplet" and not (
                self.use_instance_loss or self.use_semantic_loss):
            raise ValueError("triplet objective needs at least one loss")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 2:
            raise ValueError(
                f"batch_size must be at least 2, got {self.batch_size}")
        # freeze_epochs > epochs is allowed (the backbone simply never
        # unfreezes within this run), but negative values are nonsense.
        if self.freeze_epochs < 0:
            raise ValueError(
                f"freeze_epochs must be >= 0, got {self.freeze_epochs}")
        if self.learning_rate <= 0:
            raise ValueError(
                f"learning_rate must be positive, got {self.learning_rate}")
        if self.max_grad_norm < 0 or self.loss_spike_factor < 0:
            raise ValueError("max_grad_norm and loss_spike_factor must be "
                             ">= 0 (0 disables the guard)")
        if self.skip_budget < 0:
            raise ValueError("skip_budget must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


@dataclass
class EpochStats:
    """Per-epoch training diagnostics.

    The telemetry fields (component losses, β′ informative-triplet
    counts, mean gradient norm) default to zero so checkpoints written
    before they existed still restore.
    """

    epoch: int
    train_loss: float
    val_medr: float
    instance_active_fraction: float = 0.0
    semantic_active_fraction: float = 0.0
    backbone_frozen: bool = True
    skipped_batches: int = 0
    instance_loss: float = 0.0
    semantic_loss: float = 0.0
    instance_beta: int = 0          # Σ per-batch β′ of ℓ_ins
    semantic_beta: int = 0          # Σ per-batch β′ of ℓ_sem
    mean_grad_norm: float = 0.0


class Trainer:
    """Train a :class:`JointEmbeddingModel` on an encoded corpus.

    Parameters
    ----------
    model, config, class_to_group:
        As before (``class_to_group`` only for the hierarchical loss).
    fault_injector:
        Optional :class:`~repro.robustness.FaultInjector` whose hooks
        fire inside the loop — used by the fault-injection test
        harness, never in normal training.
    telemetry:
        Optional shared :class:`~repro.obs.Telemetry`.  The trainer
        always records into one (a private in-memory instance by
        default): per-step counters for optimizer steps and β′
        informative triplets of both losses, a pre-clip grad-norm
        histogram, health-guard event counters, per-epoch gauges, and
        a structured ``epoch`` event per epoch.  Telemetry never
        touches the training math or any RNG, so bitwise-deterministic
        resume is unaffected.
    verbose:
        Route the per-epoch event's human-readable line to stdout
        (quiet by default — structured events replace bare prints).
    """

    def __init__(self, model: JointEmbeddingModel, config: TrainingConfig,
                 class_to_group: np.ndarray | None = None,
                 fault_injector: FaultInjector | None = None,
                 telemetry: Telemetry | None = None,
                 verbose: bool = False):
        if config.use_hierarchical and class_to_group is None:
            raise ValueError("hierarchical loss requires a class_to_group "
                             "mapping (taxonomy.class_to_group_ids())")
        self.model = model
        self.config = config
        self.class_to_group = class_to_group
        self._rng = np.random.default_rng(config.seed)
        self.history: list[EpochStats] = []
        self.best_val_medr: float = float("inf")
        self._best_state = None
        #: Training-time embedding sketches for online drift
        #: detection; built at the end of every run and saved next to
        #: the checkpoints when a manager is configured.
        self.drift_reference: DriftReference | None = None
        self.health = HealthMonitor(
            max_grad_norm=config.max_grad_norm,
            spike_factor=config.loss_spike_factor,
            skip_budget=config.skip_budget)
        self.fault_injector = fault_injector or FaultInjector()
        self.telemetry = telemetry or Telemetry()
        self.verbose = verbose
        if verbose and self.telemetry.events.printer is None:
            self.telemetry.events.printer = \
                lambda line: print(line, flush=True)
        self._setup_metrics()
        self.health.on_event = self._on_health_event
        self._global_step = 0
        # Loop machinery, built by _setup(); kept on self so resume()
        # can restore into it.
        self._batcher: PairBatcher | None = None
        self._optimizer: Adam | None = None
        self._augmenter: Augmenter | None = None
        self._schedule: TwoPhaseSchedule | None = None
        self._manager: CheckpointManager | None = None
        # Last known-good (model, optimizer) snapshot for rollback.
        self._last_good: tuple[dict, dict] | None = None

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _setup_metrics(self) -> None:
        registry = self.telemetry.registry
        self._m_steps = registry.counter(
            "train_steps_total", "optimizer steps taken")
        self._m_beta = registry.counter(
            "train_informative_triplets_total",
            "cumulative beta-prime (informative triplets) per loss",
            labels=("loss",))
        self._m_triplets = registry.counter(
            "train_triplets_total", "cumulative triplets considered",
            labels=("loss",))
        self._m_grad_norm = registry.histogram(
            "train_grad_norm", "pre-clip global gradient norm",
            buckets=(0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                     100.0, 250.0, 1000.0))
        self._m_health = registry.counter(
            "train_health_events_total",
            "health-monitor guard actions", labels=("type",))
        self._m_epoch = registry.gauge(
            "train_epoch", "last completed epoch")
        self._m_loss = registry.gauge(
            "train_epoch_loss", "last epoch mean training loss",
            labels=("component",))
        self._m_epoch_beta = registry.gauge(
            "train_epoch_beta_prime",
            "informative triplets summed over the last epoch",
            labels=("loss",))
        self._m_val_medr = registry.gauge(
            "train_val_medr", "last validation MedR")

    def _on_health_event(self, kind: str, detail: dict) -> None:
        self._m_health.labels(type=kind).inc()
        self.telemetry.events.emit("health", type=kind,
                                   step=self._global_step, **detail)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def fit(self, train_corpus: EncodedCorpus,
            val_corpus: EncodedCorpus | None = None,
            checkpoint_dir=None) -> list[EpochStats]:
        """Run the full schedule; returns per-epoch statistics.

        With ``select_best`` (default), the model ends loaded with the
        parameters of its best validation-MedR epoch, mirroring the
        paper's model selection. With ``checkpoint_dir``, an atomic
        checkpoint is written every ``config.checkpoint_every`` epochs.
        """
        self._setup(train_corpus, checkpoint_dir)
        self._snapshot_last_good()
        return self._run(train_corpus, val_corpus, start_epoch=0)

    def resume(self, source, train_corpus: EncodedCorpus,
               val_corpus: EncodedCorpus | None = None,
               checkpoint_dir=None) -> list[EpochStats]:
        """Continue an interrupted run from a checkpoint.

        ``source`` is either a checkpoint file or a checkpoint
        directory (the most recent *loadable* checkpoint is used, so a
        file truncated by a crash mid-write falls back to the previous
        good epoch). The remaining epochs reproduce an uninterrupted
        run with the same seed bitwise: model parameters, Adam moments,
        all RNG streams, the epoch history and the best-model snapshot
        are restored exactly.

        New checkpoints keep being written to ``checkpoint_dir``
        (default: the directory the run is resumed from).
        """
        import pathlib

        source = pathlib.Path(source)
        if source.is_dir():
            manager = CheckpointManager(source,
                                        keep=self.config.keep_checkpoints)
            state = manager.load_latest()
            if state is None:
                raise CheckpointError(
                    f"no loadable checkpoint under {source}")
        else:
            state = CheckpointManager(
                source.parent, keep=self.config.keep_checkpoints).load(source)

        if checkpoint_dir is None:
            checkpoint_dir = source if source.is_dir() else source.parent
        self._setup(train_corpus, checkpoint_dir)
        self._restore(state)
        self._snapshot_last_good()
        return self._run(train_corpus, val_corpus,
                         start_epoch=state.epoch + 1)

    # ------------------------------------------------------------------
    # Setup / restore
    # ------------------------------------------------------------------
    def _setup(self, train_corpus: EncodedCorpus, checkpoint_dir) -> None:
        config = self.config
        if len(train_corpus) == 0:
            raise ValueError("training corpus is empty")
        self._batcher = PairBatcher(train_corpus,
                                    batch_size=config.batch_size,
                                    seed=config.seed,
                                    stratify=config.stratify_batches)
        self._schedule = TwoPhaseSchedule(self.model.image_branch.backbone,
                                          config.freeze_epochs,
                                          config.epochs)
        self._optimizer = Adam(self.model.parameters(),
                               lr=config.learning_rate)
        self._augmenter = (Augmenter(np.random.default_rng(config.seed + 1))
                           if config.augment else None)
        self._manager = (CheckpointManager(checkpoint_dir,
                                           keep=config.keep_checkpoints)
                         if checkpoint_dir is not None else None)

    def _restore(self, state: CheckpointState) -> None:
        """Load a :class:`CheckpointState` into the live loop objects."""
        self.model.load_state_dict(state.model_state)
        self._optimizer.load_state_dict(state.optimizer_state)
        rng = state.rng_states
        self._rng.bit_generator.state = rng["trainer"]
        self._batcher._rng.bit_generator.state = rng["batcher"]
        if self._augmenter is not None and rng.get("augmenter") is not None:
            self._augmenter.rng.bit_generator.state = rng["augmenter"]
        self.history = [EpochStats(**stats) for stats in state.history]
        self.best_val_medr = state.best_val_medr
        self._best_state = ({name: np.array(values, dtype=np.float64)
                             for name, values in state.best_state.items()}
                            if state.best_state is not None else None)
        self._global_step = int(state.extra.get(
            "global_step",
            (state.epoch + 1) * self._batcher.batches_per_epoch))
        health = state.extra.get("health")
        if health:
            self.health.skipped = int(health["skipped"])
            self.health.rollbacks = int(health["rollbacks"])
            self.health._loss_mean = float(health["loss_mean"])
            self.health._loss_count = int(health["loss_count"])

    def _snapshot_last_good(self) -> None:
        """Cache (model, optimizer) for non-finite-parameter rollback."""
        self._last_good = (self.model.state_dict(),
                           self._optimizer.state_dict())

    def _checkpoint_state(self, epoch: int) -> CheckpointState:
        rng_states = {
            "trainer": self._rng.bit_generator.state,
            "batcher": self._batcher._rng.bit_generator.state,
            "augmenter": (self._augmenter.rng.bit_generator.state
                          if self._augmenter is not None else None),
        }
        return CheckpointState(
            epoch=epoch,
            model_state=dict(self.model.state_dict()),
            optimizer_state=self._optimizer.state_dict(),
            rng_states=rng_states,
            history=[epoch_stats_to_dict(stats) for stats in self.history],
            best_val_medr=self.best_val_medr,
            best_state=self._best_state,
            extra={"global_step": self._global_step,
                   "health": {"skipped": self.health.skipped,
                              "rollbacks": self.health.rollbacks,
                              "loss_mean": self.health._loss_mean,
                              "loss_count": self.health._loss_count}},
        )

    # ------------------------------------------------------------------
    # Epoch loop
    # ------------------------------------------------------------------
    def _run(self, train_corpus: EncodedCorpus,
             val_corpus: EncodedCorpus | None,
             start_epoch: int) -> list[EpochStats]:
        config = self.config
        for epoch in range(start_epoch, config.epochs):
            self._schedule.on_epoch_start(epoch)
            self.model.train()
            epoch_loss, n_batches, n_skipped = 0.0, 0, 0
            ins_active, sem_active, grad_norms = [], [], []
            ins_loss_sum = sem_loss_sum = 0.0
            ins_beta = sem_beta = 0
            with self.telemetry.tracer.span("train_epoch", epoch=epoch):
                for rows in self._batcher.epoch():
                    outcome = self._train_step(train_corpus, rows)
                    if outcome is None:
                        n_skipped += 1
                        continue
                    loss, stats = outcome
                    epoch_loss += loss
                    n_batches += 1
                    if "ins_active" in stats:
                        ins_active.append(stats["ins_active"])
                        ins_loss_sum += stats["ins_loss"]
                        ins_beta += stats["ins_beta"]
                    if "sem_active" in stats:
                        sem_active.append(stats["sem_active"])
                        sem_loss_sum += stats["sem_loss"]
                        sem_beta += stats["sem_beta"]
                    if "grad_norm" in stats:
                        grad_norms.append(stats["grad_norm"])

                val_medr = (self.evaluate_medr(val_corpus)
                            if val_corpus is not None else float("nan"))
            denom = max(n_batches, 1)
            self.history.append(EpochStats(
                epoch=epoch,
                train_loss=epoch_loss / denom,
                val_medr=val_medr,
                instance_active_fraction=float(np.mean(ins_active))
                if ins_active else 0.0,
                semantic_active_fraction=float(np.mean(sem_active))
                if sem_active else 0.0,
                backbone_frozen=self._schedule.backbone_frozen,
                skipped_batches=n_skipped,
                instance_loss=ins_loss_sum / denom,
                semantic_loss=sem_loss_sum / denom,
                instance_beta=ins_beta,
                semantic_beta=sem_beta,
                mean_grad_norm=float(np.mean(grad_norms))
                if grad_norms else 0.0,
            ))
            self._record_epoch(self.history[-1])
            if (config.select_best and val_corpus is not None
                    and val_medr < self.best_val_medr):
                self.best_val_medr = val_medr
                # Deep-copy: later epochs keep training these same
                # parameter arrays, and the restored "best" model must
                # not drift with them.
                self._best_state = {
                    name: np.array(values, dtype=np.float64, copy=True)
                    for name, values in self.model.state_dict().items()}

            if self._manager is not None and (
                    (epoch + 1) % config.checkpoint_every == 0
                    or epoch == config.epochs - 1):
                self._manager.save(self._checkpoint_state(epoch))
                self._snapshot_last_good()
            self.fault_injector.on_epoch_end(epoch)

        if config.select_best and self._best_state is not None:
            self.model.load_state_dict(self._best_state)
        # Pin the served model's embedding geometry for online drift
        # detection — after best-state restore, so the reference
        # describes the model that will actually serve.
        self.drift_reference = self.build_drift_reference(
            val_corpus if val_corpus is not None else train_corpus)
        if self._manager is not None:
            self.drift_reference.save(
                self._manager.directory / DRIFT_REFERENCE_NAME)
        return self.history

    def _record_epoch(self, stats: EpochStats) -> None:
        """Export one epoch to gauges and the structured event log."""
        self._m_epoch.set(stats.epoch)
        self._m_loss.labels(component="total").set(stats.train_loss)
        self._m_loss.labels(component="instance").set(stats.instance_loss)
        self._m_loss.labels(component="semantic").set(stats.semantic_loss)
        self._m_epoch_beta.labels(loss="instance").set(stats.instance_beta)
        self._m_epoch_beta.labels(loss="semantic").set(stats.semantic_beta)
        # Gauge.set drops non-finite values itself (registry-wide
        # sanitization), so the no-validation NaN needs no local guard.
        self._m_val_medr.set(stats.val_medr)
        self.telemetry.events.emit(
            "epoch",
            message=(f"epoch {stats.epoch:3d}  "
                     f"loss {stats.train_loss:.4f}  "
                     f"val MedR {stats.val_medr:.1f}"),
            epoch=stats.epoch,
            train_loss=stats.train_loss,
            instance_loss=stats.instance_loss,
            semantic_loss=stats.semantic_loss,
            beta_instance=stats.instance_beta,
            beta_semantic=stats.semantic_beta,
            instance_active_fraction=stats.instance_active_fraction,
            semantic_active_fraction=stats.semantic_active_fraction,
            mean_grad_norm=stats.mean_grad_norm,
            val_medr=stats.val_medr,
            skipped_batches=stats.skipped_batches,
            backbone_frozen=stats.backbone_frozen,
        )

    # ------------------------------------------------------------------
    def _train_step(self, corpus: EncodedCorpus, rows: np.ndarray
                    ) -> tuple[float, dict] | None:
        """One optimization step; returns ``None`` for a skipped batch."""
        config = self.config
        step = self._global_step
        self._global_step += 1
        images = corpus.images[rows]
        if self._augmenter is not None:
            images = self._augmenter(images)

        optimizer = self._optimizer
        optimizer.zero_grad()
        image_emb, recipe_emb = self.model(
            images,
            corpus.ingredient_ids[rows],
            corpus.ingredient_lengths[rows],
            corpus.sentence_vectors[rows],
            corpus.sentence_lengths[rows],
        )
        class_ids = corpus.class_ids[rows]
        stats: dict[str, float] = {}

        if config.objective == "pairwise":
            total = pairwise_loss(image_emb, recipe_emb,
                                  positive_margin=config.positive_margin,
                                  negative_margin=config.negative_margin)
        else:
            total = None
            if config.use_instance_loss:
                ins = instance_triplet_loss(
                    image_emb, recipe_emb, margin=config.margin,
                    strategy=config.strategy,
                    bidirectional=config.bidirectional)
                stats["ins_active"] = ins.active_fraction
                stats["ins_beta"] = ins.beta_prime
                stats["ins_loss"] = ins.loss.item()
                self._m_beta.labels(loss="instance").inc(ins.beta_prime)
                self._m_triplets.labels(loss="instance").inc(
                    ins.num_triplets)
                total = ins.loss
            if config.use_semantic_loss:
                if config.use_hierarchical:
                    from .hierarchical import hierarchical_semantic_loss
                    hier = hierarchical_semantic_loss(
                        image_emb, recipe_emb, class_ids,
                        self.class_to_group, margin=config.margin,
                        group_margin=config.group_margin,
                        group_weight=config.group_weight,
                        strategy=config.strategy, rng=self._rng,
                        bidirectional=config.bidirectional)
                    stats["sem_active"] = hier.fine.active_fraction
                    stats["sem_beta"] = hier.fine.beta_prime
                    self._m_triplets.labels(loss="semantic").inc(
                        hier.fine.num_triplets)
                    sem_loss = hier.loss
                else:
                    sem = semantic_triplet_loss(
                        image_emb, recipe_emb, class_ids,
                        margin=config.margin, strategy=config.strategy,
                        rng=self._rng, bidirectional=config.bidirectional)
                    stats["sem_active"] = sem.active_fraction
                    stats["sem_beta"] = sem.beta_prime
                    self._m_triplets.labels(loss="semantic").inc(
                        sem.num_triplets)
                    sem_loss = sem.loss
                stats["sem_loss"] = sem_loss.item()
                self._m_beta.labels(loss="semantic").inc(
                    stats["sem_beta"])
                weighted = sem_loss * config.lambda_sem
                total = weighted if total is None else total + weighted

        if config.use_classification:
            logits_img = self.model.classify(image_emb)
            logits_rec = self.model.classify(recipe_emb)
            cls = classification_loss(logits_img, logits_rec, class_ids)
            total = total + cls * config.classification_weight

        total.backward()
        self.fault_injector.on_gradients(step, optimizer.params)

        verdict = self.health.inspect_step(total.item(), optimizer.params)
        if not verdict.healthy:
            optimizer.zero_grad()
            return None
        stats["grad_norm"] = verdict.grad_norm
        self._m_grad_norm.observe(verdict.grad_norm)
        self._m_steps.inc()

        optimizer.step()
        self.fault_injector.on_step_end(step, optimizer.params)
        if not self.health.params_healthy(optimizer.params):
            self._rollback(f"non-finite parameters after step {step}")
            return None
        return total.item(), stats

    def _rollback(self, reason: str) -> None:
        """Restore the last good (model, optimizer) state.

        Charged against the skip budget like any other unhealthy batch,
        so a run stuck in a corrupt-rollback loop still hard-fails.
        """
        if self._last_good is None:
            raise NumericalHealthError(
                f"{reason}, and no known-good state to roll back to")
        self.health.record_unhealthy(reason)
        self.health.note_rollback()
        model_state, optimizer_state = self._last_good
        self.model.load_state_dict(model_state)
        self._optimizer.load_state_dict(optimizer_state)

    # ------------------------------------------------------------------
    def build_drift_reference(self, corpus: EncodedCorpus
                              ) -> DriftReference:
        """Sketch the model's embedding geometry over ``corpus``.

        Recipe embeddings play the live-query role and image
        embeddings the corpus role — the same orientation the serving
        path's drift monitor observes (recipe/ingredient queries
        against the image index).
        """
        image_emb, recipe_emb = self.model.encode_corpus(corpus)
        return DriftReference.from_embeddings(recipe_emb, image_emb)

    # ------------------------------------------------------------------
    def evaluate_medr(self, corpus: EncodedCorpus) -> float:
        """Mean MedR over both retrieval directions on ``corpus``."""
        config = self.config
        image_emb, recipe_emb = self.model.encode_corpus(corpus)
        protocol = RetrievalProtocol(
            bag_size=min(config.eval_bag_size, len(corpus)),
            num_bags=config.eval_num_bags, seed=config.seed)
        result = protocol.evaluate(image_emb, recipe_emb)
        return 0.5 * (result.medr("image_to_recipe")
                      + result.medr("recipe_to_image"))
