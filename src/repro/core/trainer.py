"""Training loop for all scenarios (AdaMine variants and PWC baselines).

Reproduces the paper's schedule (§4.4): Adam at lr 1e-4, mini-batches
with the 50/50 labeled/unlabeled composition, the vision backbone
frozen for an initial phase then fine-tuned, and model selection by
the best validation MedR at the end of each epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.batching import PairBatcher
from ..data.encoding import EncodedCorpus
from ..optim import Adam, TwoPhaseSchedule
from ..retrieval import RetrievalProtocol
from ..vision import Augmenter
from .losses import (classification_loss, instance_triplet_loss,
                     pairwise_loss, semantic_triplet_loss)
from .model import JointEmbeddingModel

__all__ = ["TrainingConfig", "EpochStats", "Trainer"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of one training run.

    The defaults mirror the paper where scale allows: margin α = 0.3,
    semantic weight λ = 0.3, Adam lr 1e-4 (scaled up for the much
    smaller CPU models), adaptive mining, bidirectional triplets.
    """

    epochs: int = 12
    freeze_epochs: int = 3
    batch_size: int = 32
    learning_rate: float = 1e-3
    margin: float = 0.3
    lambda_sem: float = 0.3
    strategy: str = "adaptive"          # adaptive | average | hard
    objective: str = "triplet"          # triplet | pairwise
    use_instance_loss: bool = True
    use_semantic_loss: bool = True
    use_classification: bool = False
    classification_weight: float = 0.3
    positive_margin: float = 0.3        # pairwise objective only
    negative_margin: float = 0.9
    use_hierarchical: bool = False      # two-level semantic loss
    group_margin: float = 0.15
    group_weight: float = 0.5
    bidirectional: bool = True
    augment: bool = True
    stratify_batches: bool = True
    select_best: bool = True
    eval_bag_size: int = 500
    eval_num_bags: int = 3
    seed: int = 0

    def __post_init__(self):
        if self.objective not in ("triplet", "pairwise"):
            raise ValueError(f"unknown objective {self.objective!r}")
        if self.objective == "triplet" and not (
                self.use_instance_loss or self.use_semantic_loss):
            raise ValueError("triplet objective needs at least one loss")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")


@dataclass
class EpochStats:
    """Per-epoch training diagnostics."""

    epoch: int
    train_loss: float
    val_medr: float
    instance_active_fraction: float = 0.0
    semantic_active_fraction: float = 0.0
    backbone_frozen: bool = True


class Trainer:
    """Train a :class:`JointEmbeddingModel` on an encoded corpus."""

    def __init__(self, model: JointEmbeddingModel, config: TrainingConfig,
                 class_to_group: np.ndarray | None = None):
        if config.use_hierarchical and class_to_group is None:
            raise ValueError("hierarchical loss requires a class_to_group "
                             "mapping (taxonomy.class_to_group_ids())")
        self.model = model
        self.config = config
        self.class_to_group = class_to_group
        self._rng = np.random.default_rng(config.seed)
        self.history: list[EpochStats] = []
        self.best_val_medr: float = float("inf")
        self._best_state = None

    # ------------------------------------------------------------------
    def fit(self, train_corpus: EncodedCorpus,
            val_corpus: EncodedCorpus | None = None) -> list[EpochStats]:
        """Run the full schedule; returns per-epoch statistics.

        With ``select_best`` (default), the model ends loaded with the
        parameters of its best validation-MedR epoch, mirroring the
        paper's model selection.
        """
        config = self.config
        batcher = PairBatcher(train_corpus, batch_size=config.batch_size,
                              seed=config.seed,
                              stratify=config.stratify_batches)
        schedule = TwoPhaseSchedule(self.model.image_branch.backbone,
                                    config.freeze_epochs, config.epochs)
        optimizer = Adam(self.model.parameters(), lr=config.learning_rate)
        augmenter = (Augmenter(np.random.default_rng(config.seed + 1))
                     if config.augment else None)

        for epoch in range(config.epochs):
            schedule.on_epoch_start(epoch)
            self.model.train()
            epoch_loss, n_batches = 0.0, 0
            ins_active, sem_active = [], []
            for rows in batcher.epoch():
                loss, stats = self._train_step(train_corpus, rows,
                                               optimizer, augmenter)
                epoch_loss += loss
                n_batches += 1
                if "ins_active" in stats:
                    ins_active.append(stats["ins_active"])
                if "sem_active" in stats:
                    sem_active.append(stats["sem_active"])

            val_medr = (self.evaluate_medr(val_corpus)
                        if val_corpus is not None else float("nan"))
            self.history.append(EpochStats(
                epoch=epoch,
                train_loss=epoch_loss / max(n_batches, 1),
                val_medr=val_medr,
                instance_active_fraction=float(np.mean(ins_active))
                if ins_active else 0.0,
                semantic_active_fraction=float(np.mean(sem_active))
                if sem_active else 0.0,
                backbone_frozen=schedule.backbone_frozen,
            ))
            if (config.select_best and val_corpus is not None
                    and val_medr < self.best_val_medr):
                self.best_val_medr = val_medr
                self._best_state = self.model.state_dict()

        if config.select_best and self._best_state is not None:
            self.model.load_state_dict(self._best_state)
        return self.history

    # ------------------------------------------------------------------
    def _train_step(self, corpus: EncodedCorpus, rows: np.ndarray,
                    optimizer: Adam, augmenter: Augmenter | None
                    ) -> tuple[float, dict]:
        config = self.config
        images = corpus.images[rows]
        if augmenter is not None:
            images = augmenter(images)

        optimizer.zero_grad()
        image_emb, recipe_emb = self.model(
            images,
            corpus.ingredient_ids[rows],
            corpus.ingredient_lengths[rows],
            corpus.sentence_vectors[rows],
            corpus.sentence_lengths[rows],
        )
        class_ids = corpus.class_ids[rows]
        stats: dict[str, float] = {}

        if config.objective == "pairwise":
            total = pairwise_loss(image_emb, recipe_emb,
                                  positive_margin=config.positive_margin,
                                  negative_margin=config.negative_margin)
        else:
            total = None
            if config.use_instance_loss:
                ins = instance_triplet_loss(
                    image_emb, recipe_emb, margin=config.margin,
                    strategy=config.strategy,
                    bidirectional=config.bidirectional)
                stats["ins_active"] = ins.active_fraction
                total = ins.loss
            if config.use_semantic_loss:
                if config.use_hierarchical:
                    from .hierarchical import hierarchical_semantic_loss
                    hier = hierarchical_semantic_loss(
                        image_emb, recipe_emb, class_ids,
                        self.class_to_group, margin=config.margin,
                        group_margin=config.group_margin,
                        group_weight=config.group_weight,
                        strategy=config.strategy, rng=self._rng,
                        bidirectional=config.bidirectional)
                    stats["sem_active"] = hier.fine.active_fraction
                    sem_loss = hier.loss
                else:
                    sem = semantic_triplet_loss(
                        image_emb, recipe_emb, class_ids,
                        margin=config.margin, strategy=config.strategy,
                        rng=self._rng, bidirectional=config.bidirectional)
                    stats["sem_active"] = sem.active_fraction
                    sem_loss = sem.loss
                weighted = sem_loss * config.lambda_sem
                total = weighted if total is None else total + weighted

        if config.use_classification:
            logits_img = self.model.classify(image_emb)
            logits_rec = self.model.classify(recipe_emb)
            cls = classification_loss(logits_img, logits_rec, class_ids)
            total = total + cls * config.classification_weight

        total.backward()
        optimizer.step()
        return total.item(), stats

    # ------------------------------------------------------------------
    def evaluate_medr(self, corpus: EncodedCorpus) -> float:
        """Mean MedR over both retrieval directions on ``corpus``."""
        config = self.config
        image_emb, recipe_emb = self.model.encode_corpus(corpus)
        protocol = RetrievalProtocol(
            bag_size=min(config.eval_bag_size, len(corpus)),
            num_bags=config.eval_num_bags, seed=config.seed)
        result = protocol.evaluate(image_emb, recipe_emb)
        return 0.5 * (result.medr("image_to_recipe")
                      + result.medr("recipe_to_image"))
