"""AdaMine core: branches, joint model, losses, mining, training."""

from .branches import ImageBranch, RecipeBranch
from .model import JointEmbeddingModel
from .losses import (TripletLossOutput, classification_loss,
                     instance_triplet_loss, pairwise_loss,
                     semantic_triplet_loss)
from .mining import (STRATEGIES, MiningStats, aggregate_triplets,
                     count_active, mine_triplets)
from .trainer import EpochStats, Trainer, TrainingConfig
from .scenarios import (SCENARIO_NAMES, ScenarioSpec, build_model,
                        build_scenario, scenario_spec)
from .hierarchical import (HierarchicalLossOutput,
                           hierarchical_semantic_loss, map_to_group_labels)
from .engine import RecipeSearchEngine, SearchResult

__all__ = [
    "ImageBranch", "RecipeBranch", "JointEmbeddingModel",
    "instance_triplet_loss", "semantic_triplet_loss", "pairwise_loss",
    "classification_loss", "TripletLossOutput",
    "aggregate_triplets", "mine_triplets", "MiningStats",
    "count_active", "STRATEGIES",
    "Trainer", "TrainingConfig", "EpochStats",
    "SCENARIO_NAMES", "ScenarioSpec", "scenario_spec",
    "build_model", "build_scenario",
    "hierarchical_semantic_loss", "HierarchicalLossOutput",
    "map_to_group_labels",
    "RecipeSearchEngine", "SearchResult",
]
