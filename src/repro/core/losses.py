"""Training objectives: double-triplet losses and the PWC baselines.

All losses operate on **L2-normalized** latent embeddings, so the
distance ``d(x, y) = 1 − x·y`` is the cosine distance of the paper.

* :func:`instance_triplet_loss` — ℓ_ins (Eq. 2): the matching pair must
  be closer to the query than every other item of the other modality,
  by margin α. Bidirectional (image→recipe and recipe→image).
* :func:`semantic_triplet_loss` — ℓ_sem (Eq. 3): for labeled queries, a
  same-class item of the other modality must be closer than any
  different-class item, by margin α. Implements §4.4's sampling: one
  random same-class positive per query and negatives capped at the
  smallest negative-set size in the batch.
* :func:`pairwise_loss` — the PWC / PWC++ objective (Eq. 6): absolute
  distance targets with positive and negative margins
  (``positive_margin=0`` recovers the original PWC of [33]).
* :func:`classification_loss` — cross-entropy through a classifier
  head, used by the AdaMine_ins+cls and PWC scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, concat, cross_entropy
from .mining import mine_triplets

__all__ = ["TripletLossOutput", "instance_triplet_loss",
           "semantic_triplet_loss", "pairwise_loss", "classification_loss"]


@dataclass
class TripletLossOutput:
    """A scalar loss plus mining statistics for logging.

    ``beta_prime`` is the normalizer the mining strategy actually
    divided by (β′ of Eq. 5 under ``"adaptive"``) — the quantity whose
    trajectory *is* the paper's automatic curriculum, exported to the
    telemetry layer by the trainer.
    """

    loss: Tensor
    num_triplets: int
    num_active: int
    beta_prime: int = 0

    @property
    def active_fraction(self) -> float:
        if self.num_triplets == 0:
            return 0.0
        return self.num_active / self.num_triplets


def _distance_matrix(queries: Tensor, candidates: Tensor) -> Tensor:
    """Cosine distance for already-normalized embeddings."""
    return 1.0 - queries @ candidates.T


def _directional_instance_losses(queries: Tensor, candidates: Tensor,
                                 margin: float
                                 ) -> tuple[Tensor, np.ndarray]:
    """Per-triplet hinges for one direction; match is the diagonal."""
    n = queries.shape[0]
    distances = _distance_matrix(queries, candidates)
    rows = np.arange(n)
    positive = distances[rows, rows]                     # (n,)
    hinge = (positive.reshape(n, 1) + margin - distances).clamp_min(0.0)
    off_diag = ~np.eye(n, dtype=bool)
    flat = hinge[off_diag]                               # (n*(n-1),)
    query_ids = np.repeat(rows, n)[off_diag.reshape(-1)]
    return flat, query_ids


def instance_triplet_loss(image_embeddings: Tensor,
                          recipe_embeddings: Tensor,
                          margin: float = 0.3,
                          strategy: str = "adaptive",
                          bidirectional: bool = True) -> TripletLossOutput:
    """ℓ_ins over every in-batch triplet (Eq. 2), both directions."""
    if image_embeddings.shape != recipe_embeddings.shape:
        raise ValueError("modal embeddings must be aligned")
    losses_i2r, queries_i2r = _directional_instance_losses(
        image_embeddings, recipe_embeddings, margin)
    pieces = [losses_i2r]
    query_ids = [queries_i2r]
    if bidirectional:
        losses_r2i, queries_r2i = _directional_instance_losses(
            recipe_embeddings, image_embeddings, margin)
        pieces.append(losses_r2i)
        n = image_embeddings.shape[0]
        query_ids.append(queries_r2i + n)  # distinct query namespace
    flat = concat(pieces, axis=0) if len(pieces) > 1 else pieces[0]
    ids = np.concatenate(query_ids)
    loss, mining = mine_triplets(flat, strategy, query_ids=ids)
    return TripletLossOutput(loss, mining.total, mining.active,
                             beta_prime=mining.beta_prime)


def _semantic_triplet_indices(class_ids: np.ndarray,
                              rng: np.random.Generator
                              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build (query, positive, negative) index triples per §4.4.

    One random same-class positive per labeled query; negatives are the
    different-class labeled items, capped at the smallest negative-set
    size among eligible queries (the paper's fairness cap).
    """
    labeled = np.flatnonzero(class_ids >= 0)
    eligible = []
    for i in labeled:
        same = labeled[(class_ids[labeled] == class_ids[i]) & (labeled != i)]
        diff = labeled[class_ids[labeled] != class_ids[i]]
        if same.size and diff.size:
            eligible.append((i, same, diff))
    if not eligible:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    cap = min(diff.size for __, __, diff in eligible)
    q_list, p_list, n_list = [], [], []
    for i, same, diff in eligible:
        positive = same[rng.integers(same.size)]
        negatives = rng.choice(diff, size=cap, replace=False)
        q_list.append(np.full(cap, i, dtype=np.int64))
        p_list.append(np.full(cap, positive, dtype=np.int64))
        n_list.append(negatives)
    return (np.concatenate(q_list), np.concatenate(p_list),
            np.concatenate(n_list))


def semantic_triplet_loss(image_embeddings: Tensor,
                          recipe_embeddings: Tensor,
                          class_ids: np.ndarray,
                          margin: float = 0.3,
                          strategy: str = "adaptive",
                          rng: np.random.Generator | None = None,
                          bidirectional: bool = True) -> TripletLossOutput:
    """ℓ_sem over class-guided cross-modal triplets (Eq. 3).

    ``class_ids`` uses ``-1`` for unlabeled pairs, which participate in
    neither the positive nor the negative sets.
    """
    if image_embeddings.shape != recipe_embeddings.shape:
        raise ValueError("modal embeddings must be aligned")
    class_ids = np.asarray(class_ids, dtype=np.int64)
    if class_ids.shape[0] != image_embeddings.shape[0]:
        raise ValueError("class_ids must align with embeddings")
    rng = rng if rng is not None else np.random.default_rng(0)

    q_idx, p_idx, n_idx = _semantic_triplet_indices(class_ids, rng)
    if q_idx.size == 0:
        return TripletLossOutput(Tensor(0.0), 0, 0)

    directions = [(image_embeddings, recipe_embeddings)]
    if bidirectional:
        directions.append((recipe_embeddings, image_embeddings))
    pieces, ids = [], []
    for d, (queries, candidates) in enumerate(directions):
        distances = _distance_matrix(queries, candidates)
        d_qp = distances[q_idx, p_idx]
        d_qn = distances[q_idx, n_idx]
        pieces.append((d_qp + margin - d_qn).clamp_min(0.0))
        ids.append(q_idx + d * class_ids.shape[0])
    flat = concat(pieces, axis=0) if len(pieces) > 1 else pieces[0]
    all_ids = np.concatenate(ids)
    loss, mining = mine_triplets(flat, strategy, query_ids=all_ids)
    return TripletLossOutput(loss, mining.total, mining.active,
                             beta_prime=mining.beta_prime)


def pairwise_loss(image_embeddings: Tensor, recipe_embeddings: Tensor,
                  positive_margin: float = 0.3,
                  negative_margin: float = 0.9) -> Tensor:
    """PWC / PWC++ pairwise objective (Eq. 6).

    Matching pairs (the diagonal) are pulled within ``positive_margin``
    of each other; non-matching pairs are pushed beyond
    ``negative_margin``. ``positive_margin=0`` gives the PWC* baseline
    (the paper's reimplementation of [33]); the paper's PWC++ uses
    (0.3, 0.9).
    """
    if image_embeddings.shape != recipe_embeddings.shape:
        raise ValueError("modal embeddings must be aligned")
    n = image_embeddings.shape[0]
    distances = _distance_matrix(image_embeddings, recipe_embeddings)
    rows = np.arange(n)
    positive = (distances[rows, rows] - positive_margin).clamp_min(0.0)
    off_diag = ~np.eye(n, dtype=bool)
    negative = (negative_margin - distances[off_diag]).clamp_min(0.0)
    return positive.mean() + negative.mean()


def classification_loss(image_logits: Tensor, recipe_logits: Tensor,
                        class_ids: np.ndarray) -> Tensor:
    """Cross-entropy of the classifier head on both modalities.

    Unlabeled rows (``class_id == -1``) are ignored, mirroring how the
    PWC baseline only applies its classification term to the labeled
    half of each batch.
    """
    return (cross_entropy(image_logits, class_ids, ignore_index=-1)
            + cross_entropy(recipe_logits, class_ids, ignore_index=-1))
