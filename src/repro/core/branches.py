"""The two modality branches of the AdaMine architecture (§3.2.1).

* :class:`ImageBranch` — a vision backbone (MiniResNet stand-in for the
  ResNet-50, or the fast MLP encoder) followed by a fully connected
  projection into the latent space, trained from scratch.
* :class:`RecipeBranch` — ingredients and instructions are embedded
  separately and concatenated into a fully connected projection:

  - ingredients: frozen pretrained word2vec embeddings → Bi-LSTM;
  - instructions: frozen skip-thought sentence vectors (computed by the
    featurizer) → trainable sentence-level LSTM — the hierarchical
    LSTM of the paper with its word level pretrained and frozen.

The ``use_ingredients`` / ``use_instructions`` switches implement the
AdaMine_ingr and AdaMine_instr ablations.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concat
from ..nn import BiLSTM, Embedding, LSTM, Linear, Module

__all__ = ["ImageBranch", "RecipeBranch"]


class ImageBranch(Module):
    """Vision backbone + latent projection."""

    def __init__(self, backbone: Module, latent_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.backbone = backbone
        self.projection = Linear(backbone.feature_dim, latent_dim, rng)
        self.latent_dim = latent_dim

    def forward(self, images) -> Tensor:
        """Encode (N, 3, S, S) images to unnormalized latent vectors."""
        if not isinstance(images, Tensor):
            images = Tensor(images)
        return self.projection(self.backbone(images))


class RecipeBranch(Module):
    """Ingredient Bi-LSTM ⊕ hierarchical instruction LSTM → projection.

    Parameters
    ----------
    ingredient_vectors:
        Pretrained word2vec table for the ingredient vocabulary
        (frozen, as in the paper).
    sentence_dim:
        Dimensionality of the frozen instruction sentence vectors.
    ingredient_hidden, instruction_hidden:
        Hidden sizes of the two trainable recurrent encoders.
    latent_dim:
        Latent space dimensionality.
    use_ingredients, use_instructions:
        Ablation switches; at least one must be True.
    """

    def __init__(self, ingredient_vectors: np.ndarray, sentence_dim: int,
                 latent_dim: int, rng: np.random.Generator,
                 ingredient_hidden: int = 16, instruction_hidden: int = 16,
                 use_ingredients: bool = True,
                 use_instructions: bool = True):
        super().__init__()
        if not (use_ingredients or use_instructions):
            raise ValueError("recipe branch needs at least one text source")
        self.use_ingredients = use_ingredients
        self.use_instructions = use_instructions
        self.latent_dim = latent_dim

        input_dim = 0
        if use_ingredients:
            self.ingredient_embedding = Embedding.from_pretrained(
                ingredient_vectors, freeze=True)
            self.ingredient_encoder = BiLSTM(
                ingredient_vectors.shape[1], ingredient_hidden, rng)
            input_dim += self.ingredient_encoder.output_dim
        if use_instructions:
            self.instruction_encoder = LSTM(sentence_dim,
                                            instruction_hidden, rng)
            input_dim += instruction_hidden
        self.projection = Linear(input_dim, latent_dim, rng)

    def forward(self, ingredient_ids: np.ndarray,
                ingredient_lengths: np.ndarray,
                sentence_vectors: np.ndarray,
                sentence_lengths: np.ndarray) -> Tensor:
        """Encode a batch of recipes to unnormalized latent vectors."""
        parts = []
        if self.use_ingredients:
            embedded = self.ingredient_embedding(ingredient_ids)
            parts.append(self.ingredient_encoder(embedded,
                                                 ingredient_lengths))
        if self.use_instructions:
            vectors = (sentence_vectors if isinstance(sentence_vectors, Tensor)
                       else Tensor(sentence_vectors))
            __, final = self.instruction_encoder(vectors, sentence_lengths)
            parts.append(final)
        features = parts[0] if len(parts) == 1 else concat(parts, axis=-1)
        return self.projection(features)
