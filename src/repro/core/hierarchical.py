"""Hierarchical semantic loss — the paper's future-work extension.

The conclusion of the paper proposes "considering hierarchical levels
within object semantics to better refine the structure of the latent
space". This module implements that extension on top of the existing
double-triplet machinery: semantic triplets are applied at **two
levels** of the class taxonomy,

* the *fine* level — recipe classes (pizza, cupcake, ...), exactly the
  paper's ℓ_sem with margin α, and
* the *coarse* level — super-classes / food groups (main, dessert, ...),
  a second semantic triplet loss over group labels with a smaller
  margin (groups overlap more than classes, so they are held together
  more loosely).

Because group identity is a function of class identity, the coarse loss
reuses :func:`repro.core.losses.semantic_triplet_loss` with class ids
mapped through the taxonomy's ``class_to_group_ids`` table (unlabeled
pairs stay unlabeled).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor
from .losses import TripletLossOutput, semantic_triplet_loss

__all__ = ["HierarchicalLossOutput", "map_to_group_labels",
           "hierarchical_semantic_loss"]


@dataclass
class HierarchicalLossOutput:
    """Combined loss plus the per-level components for logging."""

    loss: Tensor
    fine: TripletLossOutput
    coarse: TripletLossOutput


def map_to_group_labels(class_ids: np.ndarray,
                        class_to_group: np.ndarray) -> np.ndarray:
    """Translate class labels to group labels, preserving ``-1``."""
    class_ids = np.asarray(class_ids, dtype=np.int64)
    class_to_group = np.asarray(class_to_group, dtype=np.int64)
    if class_ids.size and class_ids.max(initial=-1) >= len(class_to_group):
        raise ValueError("class id outside the class_to_group table")
    groups = np.full_like(class_ids, -1)
    labeled = class_ids >= 0
    groups[labeled] = class_to_group[class_ids[labeled]]
    return groups


def hierarchical_semantic_loss(image_embeddings: Tensor,
                               recipe_embeddings: Tensor,
                               class_ids: np.ndarray,
                               class_to_group: np.ndarray,
                               margin: float = 0.3,
                               group_margin: float = 0.15,
                               group_weight: float = 0.5,
                               strategy: str = "adaptive",
                               rng: np.random.Generator | None = None,
                               bidirectional: bool = True
                               ) -> HierarchicalLossOutput:
    """Two-level semantic loss: ℓ_sem(classes) + w·ℓ_sem(groups).

    Parameters
    ----------
    class_to_group:
        Integer array mapping every class id to its group id
        (:meth:`repro.data.ClassTaxonomy.class_to_group_ids`).
    group_margin:
        Margin of the coarse level (smaller than the class margin:
        groups are looser clusters).
    group_weight:
        Weight of the coarse term inside the combined loss.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    fine = semantic_triplet_loss(image_embeddings, recipe_embeddings,
                                 class_ids, margin=margin,
                                 strategy=strategy, rng=rng,
                                 bidirectional=bidirectional)
    group_ids = map_to_group_labels(class_ids, class_to_group)
    coarse = semantic_triplet_loss(image_embeddings, recipe_embeddings,
                                   group_ids, margin=group_margin,
                                   strategy=strategy, rng=rng,
                                   bidirectional=bidirectional)
    return HierarchicalLossOutput(
        loss=fine.loss + coarse.loss * group_weight,
        fine=fine,
        coarse=coarse)
