"""The dual-branch joint embedding model.

Wraps the two modality branches, L2-normalizes their outputs into the
shared cosine latent space, and optionally carries the classifier head
used by the PWC and AdaMine_ins+cls scenarios (the extra
"parameter-heavy" layer the paper's semantic loss removes).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, l2_normalize, no_grad
from ..nn import Linear, Module
from .branches import ImageBranch, RecipeBranch

__all__ = ["JointEmbeddingModel"]


class JointEmbeddingModel(Module):
    """AdaMine's dual network: images and recipes → one latent space.

    Parameters
    ----------
    image_branch, recipe_branch:
        The two modality encoders (their ``latent_dim`` must agree).
    num_classes:
        When given, adds a shared classifier head over the latent
        space (used by classification-regularized scenarios only).
    rng:
        Initialization generator for the optional head.
    """

    def __init__(self, image_branch: ImageBranch,
                 recipe_branch: RecipeBranch,
                 num_classes: int | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if image_branch.latent_dim != recipe_branch.latent_dim:
            raise ValueError("branch latent dimensions differ")
        self.image_branch = image_branch
        self.recipe_branch = recipe_branch
        self.latent_dim = image_branch.latent_dim
        self.classifier = None
        if num_classes is not None:
            if rng is None:
                raise ValueError("classifier head needs an rng")
            self.classifier = Linear(self.latent_dim, num_classes, rng)

    # ------------------------------------------------------------------
    def embed_images(self, images) -> Tensor:
        """Images → unit-norm latent embeddings."""
        return l2_normalize(self.image_branch(images))

    def embed_recipes(self, ingredient_ids, ingredient_lengths,
                      sentence_vectors, sentence_lengths) -> Tensor:
        """Recipe text → unit-norm latent embeddings."""
        return l2_normalize(self.recipe_branch(
            ingredient_ids, ingredient_lengths,
            sentence_vectors, sentence_lengths))

    def forward(self, images, ingredient_ids, ingredient_lengths,
                sentence_vectors, sentence_lengths
                ) -> tuple[Tensor, Tensor]:
        """Embed a batch of pairs; returns (image, recipe) embeddings."""
        return (self.embed_images(images),
                self.embed_recipes(ingredient_ids, ingredient_lengths,
                                   sentence_vectors, sentence_lengths))

    def classify(self, embeddings: Tensor) -> Tensor:
        """Class logits from latent embeddings (classifier head)."""
        if self.classifier is None:
            raise RuntimeError("model was built without a classifier head")
        return self.classifier(embeddings)

    # ------------------------------------------------------------------
    def encode_corpus(self, corpus, batch_size: int = 256
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Embed a whole :class:`~repro.data.encoding.EncodedCorpus`.

        Runs in eval mode without building the autograd graph; returns
        plain aligned numpy matrices (image, recipe embeddings).
        """
        was_training = self.training
        self.eval()
        image_rows, recipe_rows = [], []
        try:
            with no_grad():
                for start in range(0, len(corpus), batch_size):
                    sl = slice(start, start + batch_size)
                    image_rows.append(self.embed_images(
                        corpus.images[sl]).data)
                    recipe_rows.append(self.embed_recipes(
                        corpus.ingredient_ids[sl],
                        corpus.ingredient_lengths[sl],
                        corpus.sentence_vectors[sl],
                        corpus.sentence_lengths[sl]).data)
        finally:
            self.train(was_training)
        return np.concatenate(image_rows), np.concatenate(recipe_rows)
