"""High-level recipe search engine.

Wraps a trained :class:`JointEmbeddingModel`, its featurizer and a
corpus into the API a downstream application would actually use:

>>> engine = RecipeSearchEngine(model, featurizer, dataset, corpus)
>>> engine.search_by_recipe(my_recipe, k=5)        # recipe -> images
>>> engine.search_by_image(photo, k=5)             # image  -> recipes
>>> engine.search_by_ingredients(["broccoli"])     # fridge search
>>> engine.search_without(my_recipe, "peanut butter")  # dietary filter

All searches run over a prebuilt exact nearest-neighbour index of the
corpus embeddings (both modalities), with optional class constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import no_grad
from ..data.dataset import RecipeDataset
from ..data.encoding import EncodedCorpus, RecipeFeaturizer
from ..data.schema import Recipe
from ..retrieval import NearestNeighborIndex
from ..robustness.quarantine import validate_image
from .model import JointEmbeddingModel

__all__ = ["SearchResult", "RecipeSearchEngine"]


@dataclass(frozen=True)
class SearchResult:
    """One retrieved recipe/image pair."""

    recipe: Recipe
    distance: float
    corpus_row: int


class RecipeSearchEngine:
    """Cross-modal search over an embedded recipe corpus.

    Parameters
    ----------
    model:
        A trained joint embedding model.
    featurizer:
        The fitted featurizer the model was trained with.
    dataset:
        The backing dataset (for recipe payloads).
    corpus:
        The encoded corpus to search over (typically the test split, or
        everything in a production deployment).
    indexes:
        Optional prebuilt ``(image_index, recipe_index)`` pair adopted
        as-is instead of re-encoding the corpus.  The streaming-ingest
        compactor uses this to promote folded bases whose rows must
        stay bitwise identical — re-encoding (or re-normalizing) them
        would move last-ulp bits and break the overlay/monolith
        identity.
    """

    def __init__(self, model: JointEmbeddingModel,
                 featurizer: RecipeFeaturizer, dataset: RecipeDataset,
                 corpus: EncodedCorpus,
                 indexes: tuple[NearestNeighborIndex,
                                NearestNeighborIndex] | None = None):
        self.model = model
        self.featurizer = featurizer
        self.dataset = dataset
        self.corpus = corpus
        self._mean_instruction_cache: np.ndarray | None = None
        if indexes is not None:
            self._image_index, self._recipe_index = indexes
            return
        image_embeddings, recipe_embeddings = model.encode_corpus(corpus)
        self._image_index = NearestNeighborIndex(
            image_embeddings, ids=np.arange(len(corpus)),
            class_ids=corpus.true_class_ids)
        self._recipe_index = NearestNeighborIndex(
            recipe_embeddings, ids=np.arange(len(corpus)),
            class_ids=corpus.true_class_ids)

    def __len__(self) -> int:
        return len(self.corpus)

    @property
    def image_index(self) -> NearestNeighborIndex:
        """The corpus image-embedding index (read-only handle)."""
        return self._image_index

    @property
    def recipe_index(self) -> NearestNeighborIndex:
        """The corpus recipe-embedding index (read-only handle)."""
        return self._recipe_index

    # ------------------------------------------------------------------
    # Query embedding helpers
    # ------------------------------------------------------------------
    def embed_recipe(self, recipe: Recipe) -> np.ndarray:
        """Embed one recipe's text into the latent space."""
        if not recipe.ingredients and not recipe.instructions:
            raise ValueError(
                f"recipe {recipe.recipe_id} has neither ingredients nor "
                f"instructions — nothing to embed")
        ids, n_ing, vectors, n_sent = self.featurizer.encode_recipe(recipe)
        with no_grad():
            out = self.model.embed_recipes(
                ids[None, :], np.array([max(n_ing, 1)]),
                vectors[None, :, :], np.array([max(n_sent, 1)]))
        return out.data[0]

    def embed_image(self, image: np.ndarray) -> np.ndarray:
        """Embed one (3, S, S) image into the latent space."""
        reason = validate_image(image)
        if reason is not None:
            raise ValueError(f"query image rejected: {reason}")
        image = np.asarray(image, dtype=np.float64)
        with no_grad():
            out = self.model.embed_images(image[None])
        return out.data[0]

    def embed_ingredients(self, ingredients: list[str]) -> np.ndarray:
        """Embed a bare ingredient list (the paper's fridge query).

        The instruction slot is filled with the corpus' mean instruction
        embedding, as in §5.3.
        """
        if not ingredients:
            raise ValueError("cannot embed an empty ingredient list")
        known = [name for name in ingredients
                 if name.replace(" ", "_") in self.featurizer.ingredient_vocab]
        if not known:
            raise ValueError(
                f"none of the query ingredients {list(ingredients)!r} are "
                f"in the trained vocabulary")
        tokens = [name.replace(" ", "_") for name in known]
        ids = self.featurizer.ingredient_vocab.encode_padded(
            tokens, self.featurizer.max_ingredients)
        sentences = np.zeros((self.featurizer.max_sentences,
                              self.corpus.sentence_vectors.shape[2]))
        sentences[0] = self._mean_instruction_vector()
        with no_grad():
            out = self.model.embed_recipes(
                ids[None, :], np.array([len(tokens)]),
                sentences[None, :, :], np.array([1]))
        return out.data[0]

    def _mean_instruction_vector(self) -> np.ndarray:
        """Corpus-mean sentence vector, masked to real sentences.

        The corpus is immutable for the lifetime of the engine, so the
        mean is computed once (vectorized) and cached; every ingredient
        query reuses it.
        """
        if self._mean_instruction_cache is None:
            vectors = self.corpus.sentence_vectors
            lengths = self.corpus.sentence_lengths
            mask = (np.arange(vectors.shape[1])[None, :]
                    < lengths[:, None])
            total = np.einsum("rsd,rs->d", vectors, mask.astype(float))
            self._mean_instruction_cache = total / max(int(lengths.sum()),
                                                       1)
        return self._mean_instruction_cache

    # ------------------------------------------------------------------
    # Searches
    # ------------------------------------------------------------------
    def materialize(self, rows: np.ndarray,
                    distances: np.ndarray) -> list[SearchResult]:
        """Resolve ``(corpus_row, distance)`` pairs into results.

        Public so alternative rankers (e.g. the degraded-mode serving
        path) can reuse the engine's row → recipe payload mapping.
        """
        return [SearchResult(
            recipe=self.dataset[int(self.corpus.recipe_indices[row])],
            distance=float(distance),
            corpus_row=int(row))
            for row, distance in zip(rows, distances)]

    def search_by_recipe(self, recipe: Recipe, k: int = 5,
                         class_name: str | None = None
                         ) -> list[SearchResult]:
        """Recipe text → closest dish images."""
        return self._search_images(self.embed_recipe(recipe), k, class_name)

    def search_by_image(self, image: np.ndarray, k: int = 5,
                        class_name: str | None = None) -> list[SearchResult]:
        """Dish image → closest recipes."""
        query = self.embed_image(image)
        class_id = self.resolve_class(class_name)
        rows, distances = self._recipe_index.query(query, k=k,
                                                   class_id=class_id)
        return self.materialize(rows, distances)

    def search_by_ingredients(self, ingredients: list[str], k: int = 5,
                              class_name: str | None = None
                              ) -> list[SearchResult]:
        """Fridge search: ingredient list → dishes containing them."""
        return self._search_images(self.embed_ingredients(ingredients), k,
                                   class_name)

    def search_without(self, recipe: Recipe, ingredient: str,
                       k: int = 5, class_name: str | None = None
                       ) -> list[SearchResult]:
        """Dietary filter: search with ``ingredient`` edited out."""
        return self.search_by_recipe(recipe.without_ingredient(ingredient),
                                     k=k, class_name=class_name)

    def _search_images(self, query: np.ndarray, k: int,
                       class_name: str | None) -> list[SearchResult]:
        class_id = self.resolve_class(class_name)
        rows, distances = self._image_index.query(query, k=k,
                                                  class_id=class_id)
        return self.materialize(rows, distances)

    def resolve_class(self, class_name: str | None) -> int | None:
        """Taxonomy name → class id (``None`` passes through)."""
        if class_name is None:
            return None
        try:
            return self.dataset.taxonomy[class_name].class_id
        except KeyError:
            names = sorted(c.name for c in self.dataset.taxonomy.classes)
            raise ValueError(
                f"unknown class {class_name!r}; valid classes: {names}"
            ) from None
