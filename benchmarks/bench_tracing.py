"""Tracing-overhead benchmarks.

One simulated request is 1 root span + 4 stage children (admit, embed,
index, materialize) — the same shape the service emits.  Three
configurations are timed:

* **off**      — no spans at all (the floor the others are measured
  against);
* **on**       — spans recorded into the tracer's ring buffer;
* **sampling** — spans recorded *and* fed through the tail-based
  :class:`~repro.obs.TraceSampler` (buffer, verdict, retention).

Headline numbers are the per-request overhead in microseconds versus
the ``off`` floor, landing in ``BENCH_tracing.json`` via the
``bench_record_tracing`` fixture (see ``conftest.py``).
"""

import time

from repro.obs import Tracer, TraceSampler

STAGES = ("admit", "embed", "index", "materialize")
REQUESTS_PER_ITER = 100


def _request_off():
    total = 0
    for stage in STAGES:
        total += len(stage)
    return total


def _request_traced(tracer):
    with tracer.span("request"):
        for stage in STAGES:
            with tracer.span(stage):
                pass


def _mean_request_s(fn, *args, repeats=30):
    started = time.perf_counter()
    for __ in range(repeats):
        fn(*args)
    return (time.perf_counter() - started) / (repeats * REQUESTS_PER_ITER)


def _floor_s():
    def batch():
        for __ in range(REQUESTS_PER_ITER):
            _request_off()

    return _mean_request_s(batch)


def _bench_overhead(benchmark, record, tracer):
    def batch():
        for __ in range(REQUESTS_PER_ITER):
            _request_traced(tracer)

    benchmark(batch)
    try:
        mean_iter_s = float(benchmark.stats.stats.mean)
        traced_s = mean_iter_s / REQUESTS_PER_ITER
    except AttributeError:  # --benchmark-disable
        traced_s = _mean_request_s(batch)
    record((traced_s - _floor_s()) * 1e6, benchmark)


def test_bench_tracing_off(benchmark, bench_record_tracing):
    """Headline: untraced request cost in microseconds (the floor)."""
    def batch():
        for __ in range(REQUESTS_PER_ITER):
            _request_off()

    benchmark(batch)
    try:
        floor_s = float(benchmark.stats.stats.mean) / REQUESTS_PER_ITER
    except AttributeError:
        floor_s = _mean_request_s(batch)
    bench_record_tracing(floor_s * 1e6, benchmark)


def test_bench_tracing_on(benchmark, bench_record_tracing):
    """Headline: added microseconds/request with spans recorded."""
    _bench_overhead(benchmark, bench_record_tracing, Tracer())


def test_bench_tracing_on_with_sampling(benchmark,
                                        bench_record_tracing):
    """Headline: added microseconds/request with spans + tail
    sampling (buffering, verdicts, retention bookkeeping)."""
    tracer = Tracer(sampler=TraceSampler(fraction=0.1))
    _bench_overhead(benchmark, bench_record_tracing, tracer)
