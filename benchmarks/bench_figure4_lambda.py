"""Benchmark regenerating Figure 4 — MedR vs the semantic weight λ.

The paper reports robustness for λ ≤ 0.5 and degradation beyond
(λ = 0.9 clearly worse than the λ = 0.1–0.3 region).
"""

import numpy as np

from repro.experiments import figure4


def test_figure4_lambda_sweep(runner, benchmark):
    points = benchmark.pedantic(
        figure4.run, args=(runner,),
        kwargs={"lambdas": (0.1, 0.3, 0.5, 0.7, 0.9)},
        rounds=1, iterations=1)

    print("\nFigure 4: validation MedR vs lambda")
    for point in points:
        print(f"  lambda={point.lambda_sem:.1f}  MedR={point.medr:5.1f}")

    medrs = {p.lambda_sem: p.medr for p in points}
    low_region = np.mean([medrs[0.1], medrs[0.3]])
    # Over-weighting the semantic grouping must not help: the right end
    # of the curve is no better than the paper's operating region.
    assert medrs[0.9] >= low_region * 0.9
    assert all(np.isfinite(p.medr) for p in points)
