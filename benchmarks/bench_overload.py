"""Overload benchmarks: goodput vs offered load, static vs adaptive.

The admission plane's value proposition is a single curve: as offered
load climbs past capacity (1× → 3× → 10×), a static inflight cap lets
congestion drag every request past its deadline, while adaptive
admission (AIMD limit + fair queue + brownout ladder) sheds the
excess and keeps clearing work.  Each scenario drives the same
open-loop storm through the same service build, differing only in the
admission configuration; the embed stage slows with concurrency
(:class:`~repro.robustness.faults.SlowEmbedUnderLoad`) so overload
actually degrades the backend instead of just queueing.

Headline numbers land in ``BENCH_overload.json`` via the
``bench_record_overload`` fixture (see ``conftest.py``):
``goodput_{mode}_{factor}x`` in requests/second, plus the 10×
adaptive/static ratio as the single figure of merit.
"""

import numpy as np

from repro.core import RecipeSearchEngine
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset
from repro.robustness.faults import OverloadStorm, SlowEmbedUnderLoad
from repro.serving import (AdmissionConfig, BrownoutConfig,
                           LoadGenerator, ResilientSearchService,
                           RetryPolicy, ServiceConfig, TenantLoad)

BASE_RATE = 25.0
DURATION_S = 1.2
DEADLINE_S = 0.12
FACTORS = (1.0, 3.0, 10.0)


class _Embedded:
    __slots__ = ("data",)

    def __init__(self, data):
        self.data = data


class _StubModel:
    """Training-free embedder so the benchmark measures the admission
    plane, not a model forward pass."""

    def __init__(self, dim: int = 16):
        self.dim = int(dim)

    def _recipe_rows(self, ids, lengths) -> np.ndarray:
        ids, lengths = np.asarray(ids), np.asarray(lengths)
        out = np.zeros((len(ids), self.dim))
        for row in range(len(ids)):
            n = max(int(lengths[row]), 1)
            hist = np.bincount(ids[row][:n] % self.dim,
                               minlength=self.dim).astype(float) + 1e-3
            out[row] = hist / np.linalg.norm(hist)
        return out

    def embed_recipes(self, ingredient_ids, ingredient_lengths,
                      sentence_vectors, sentence_lengths) -> _Embedded:
        return _Embedded(self._recipe_rows(ingredient_ids,
                                           ingredient_lengths))

    def embed_images(self, images) -> _Embedded:
        flat = np.asarray(images).reshape(len(images), -1)
        hist = np.abs(flat[:, :self.dim]) + 1e-3
        return _Embedded(hist / np.linalg.norm(hist, axis=1,
                                               keepdims=True))

    def encode_corpus(self, corpus, batch_size: int = 256):
        recipe = self._recipe_rows(corpus.ingredient_ids,
                                   corpus.ingredient_lengths)
        return recipe.copy(), recipe


def _build_engine() -> RecipeSearchEngine:
    dataset = generate_dataset(DatasetConfig(
        num_pairs=60, num_classes=4, image_size=8, seed=7))
    featurizer = RecipeFeaturizer(word_dim=8, sentence_dim=8).fit(dataset)
    corpus = featurizer.encode_split(dataset, "test")
    return RecipeSearchEngine(_StubModel(), featurizer, dataset, corpus)


def _make_service(engine, adaptive: bool) -> ResilientSearchService:
    admission = None
    if adaptive:
        admission = AdmissionConfig(
            initial_limit=8, min_limit=2, max_limit=16,
            target_p95_s=0.08, evaluate_every=8, latency_window=64,
            max_queue_depth=64,
            brownout=BrownoutConfig(dwell_s=0.05, release_dwell_s=0.1))
    box = []
    fault = SlowEmbedUnderLoad(
        lambda: box[0].admission.inflight if box else 0,
        delay_per_inflight_s=0.02)
    service = ResilientSearchService(
        engine,
        ServiceConfig(deadline=DEADLINE_S, max_inflight=8,
                      admission=admission,
                      retry=RetryPolicy(max_attempts=2,
                                        base_delay=0.001, jitter=0.0)),
        faults=fault)
    box.append(service)
    return service


def _query_ingredients(engine) -> list:
    vocab = engine.featurizer.ingredient_vocab
    names = []
    for recipe in engine.dataset.split("train"):
        for name in recipe.ingredients:
            if name.replace(" ", "_") in vocab and name not in names:
                names.append(name)
            if len(names) >= 2:
                return names
    return names


def _goodput(engine, adaptive: bool, factor: float) -> float:
    service = _make_service(engine, adaptive)
    query = _query_ingredients(engine)

    def request_fn(tenant, criticality):
        return service.search_by_ingredients(query, k=5, tenant=tenant,
                                             criticality=criticality)

    shapers = ([OverloadStorm(factor, start_s=0.1)]
               if factor != 1.0 else [])
    report = LoadGenerator(request_fn, [TenantLoad("user", BASE_RATE)],
                           duration_s=DURATION_S,
                           shapers=shapers).run()
    return report.goodput()


def test_bench_goodput_vs_offered_load(benchmark,
                                       bench_record_overload):
    """Headline: adaptive/static goodput ratio under the 10× storm."""
    engine = _build_engine()
    results = {}

    def run_curve():
        for adaptive in (False, True):
            mode = "adaptive" if adaptive else "static"
            for factor in FACTORS:
                results[(mode, factor)] = _goodput(engine, adaptive,
                                                   factor)
        return results

    benchmark.pedantic(run_curve, rounds=1, iterations=1)
    for (mode, factor), goodput in results.items():
        bench_record_overload(
            goodput, None, name=f"goodput_{mode}_{factor:g}x")
    ratio = (results[("adaptive", 10.0)]
             / max(results[("static", 10.0)], 1e-9))
    print("\ngoodput (req/s): " + "  ".join(
        f"{mode}@{factor:g}x={results[(mode, factor)]:.1f}"
        for mode in ("static", "adaptive") for factor in FACTORS))
    print(f"adaptive/static at 10x: {ratio:.2f}")
    bench_record_overload(ratio, None,
                          name="adaptive_over_static_10x")
    assert ratio > 1.0
