"""Shared fixtures for the benchmark harness.

One :class:`ExperimentRunner` is built per session so every scenario is
trained exactly once and then reused by all table/figure benchmarks.
Set ``REPRO_BENCH_SCALE=full`` for the larger configuration.

Component benchmarks report their headline number through the
``bench_record`` fixture, which lands in an in-process
:class:`~repro.obs.MetricsRegistry`; at session end the registry is
exported via the obs JSON exposition to ``BENCH_components.json`` next
to this file, giving CI a machine-readable {metric -> value, wall_ms}
artifact.
"""

import os
import pathlib
import time

import pytest

from repro.experiments import ExperimentRunner
from repro.obs import MetricsRegistry

BENCH_ARTIFACT = pathlib.Path(__file__).parent / "BENCH_components.json"
BENCH_SERVING_ARTIFACT = pathlib.Path(__file__).parent / "BENCH_serving.json"
BENCH_INGEST_ARTIFACT = pathlib.Path(__file__).parent / "BENCH_ingest.json"
BENCH_OVERLOAD_ARTIFACT = pathlib.Path(__file__).parent / "BENCH_overload.json"
BENCH_TRACING_ARTIFACT = pathlib.Path(__file__).parent / "BENCH_tracing.json"
BENCH_GATEWAY_ARTIFACT = pathlib.Path(__file__).parent / "BENCH_gateway.json"
BENCH_PROFILER_ARTIFACT = pathlib.Path(__file__).parent / "BENCH_profiler.json"

_registry = MetricsRegistry()
_bench_value = _registry.gauge(
    "bench_value", "headline value reported by each micro-benchmark",
    labels=("bench",))
_bench_wall_ms = _registry.gauge(
    "bench_wall_ms", "mean wall time per benchmark iteration (ms)",
    labels=("bench",))

# The serving/observability overhead numbers (probe replay, drift
# sketch updates, alert evaluation) land in their own artifact so the
# quality-observability budget can be tracked separately from the
# substrate numbers.
_serving_registry = MetricsRegistry()
_serving_value = _serving_registry.gauge(
    "bench_value", "headline value reported by each serving benchmark",
    labels=("bench",))
_serving_wall_ms = _serving_registry.gauge(
    "bench_wall_ms", "mean wall time per benchmark iteration (ms)",
    labels=("bench",))

# Streaming-ingest numbers (delta-overlay query overhead, WAL
# recovery-replay throughput) track the ingest subsystem's budget.
_ingest_registry = MetricsRegistry()
_ingest_value = _ingest_registry.gauge(
    "bench_value", "headline value reported by each ingest benchmark",
    labels=("bench",))
_ingest_wall_ms = _ingest_registry.gauge(
    "bench_wall_ms", "mean wall time per benchmark iteration (ms)",
    labels=("bench",))

# Overload numbers (goodput at 1x/3x/10x offered load, static vs
# adaptive admission) track the admission plane's value.
_overload_registry = MetricsRegistry()
_overload_value = _overload_registry.gauge(
    "bench_value", "headline value reported by each overload benchmark",
    labels=("bench",))
_overload_wall_ms = _overload_registry.gauge(
    "bench_wall_ms", "mean wall time per benchmark iteration (ms)",
    labels=("bench",))

# Gateway numbers (requests/sec and p99 over real sockets with the
# result cache off/on, drain latency under load) track the HTTP
# front door's overhead on top of the in-process service.
_gateway_registry = MetricsRegistry()
_gateway_value = _gateway_registry.gauge(
    "bench_value", "headline value reported by each gateway benchmark",
    labels=("bench",))
_gateway_wall_ms = _gateway_registry.gauge(
    "bench_wall_ms", "mean wall time per benchmark iteration (ms)",
    labels=("bench",))

# Profiler numbers (per-request latency with the sampling profiler
# off vs on at the default rate, sampler pass cost) prove the
# continuous-profiling tax stays under its <5% budget.
_profiler_registry = MetricsRegistry()
_profiler_value = _profiler_registry.gauge(
    "bench_value", "headline value reported by each profiler benchmark",
    labels=("bench",))
_profiler_wall_ms = _profiler_registry.gauge(
    "bench_wall_ms", "mean wall time per benchmark iteration (ms)",
    labels=("bench",))

# Tracing numbers (span overhead per request with tracing off / on /
# on + tail sampling) track the observability tax on the hot path.
_tracing_registry = MetricsRegistry()
_tracing_value = _tracing_registry.gauge(
    "bench_value", "headline value reported by each tracing benchmark",
    labels=("bench",))
_tracing_wall_ms = _tracing_registry.gauge(
    "bench_wall_ms", "mean wall time per benchmark iteration (ms)",
    labels=("bench",))


def pytest_configure(config):
    # Benchmark runs should keep the regenerated paper tables visible:
    # show captured stdout for passing tests in the summary (-rA).
    config.option.reportchars = "A"


def pytest_sessionfinish(session, exitstatus):
    if getattr(session.config.option, "collectonly", False):
        return
    for registry, artifact in ((_registry, BENCH_ARTIFACT),
                               (_serving_registry,
                                BENCH_SERVING_ARTIFACT),
                               (_ingest_registry,
                                BENCH_INGEST_ARTIFACT),
                               (_overload_registry,
                                BENCH_OVERLOAD_ARTIFACT),
                               (_tracing_registry,
                                BENCH_TRACING_ARTIFACT),
                               (_gateway_registry,
                                BENCH_GATEWAY_ARTIFACT),
                               (_profiler_registry,
                                BENCH_PROFILER_ARTIFACT)):
        recorded = any(family.children()
                       for family in registry.families())
        if recorded:
            registry.dump_json(artifact)


def _mean_ms(benchmark, fallback_s: float) -> float:
    """Mean iteration time in ms; falls back to the elapsed wall time
    when the plugin ran with ``--benchmark-disable`` (stats absent)."""
    try:
        return float(benchmark.stats.stats.mean) * 1000.0
    except AttributeError:
        return fallback_s * 1000.0


def _recorder(request, value_gauge, wall_gauge):
    started = time.perf_counter()

    def record(value: float, benchmark=None, name: str | None = None):
        name = name or request.node.name.removeprefix("test_bench_")
        value_gauge.labels(bench=name).set(float(value))
        wall_gauge.labels(bench=name).set(
            _mean_ms(benchmark, time.perf_counter() - started))

    return record


@pytest.fixture
def bench_record(request):
    """Record ``(value, wall_ms)`` for the current benchmark test."""
    return _recorder(request, _bench_value, _bench_wall_ms)


@pytest.fixture
def bench_record_serving(request):
    """Like ``bench_record`` but lands in ``BENCH_serving.json``."""
    return _recorder(request, _serving_value, _serving_wall_ms)


@pytest.fixture
def bench_record_ingest(request):
    """Like ``bench_record`` but lands in ``BENCH_ingest.json``."""
    return _recorder(request, _ingest_value, _ingest_wall_ms)


@pytest.fixture
def bench_record_overload(request):
    """Like ``bench_record`` but lands in ``BENCH_overload.json``."""
    return _recorder(request, _overload_value, _overload_wall_ms)


@pytest.fixture
def bench_record_tracing(request):
    """Like ``bench_record`` but lands in ``BENCH_tracing.json``."""
    return _recorder(request, _tracing_value, _tracing_wall_ms)


@pytest.fixture
def bench_record_gateway(request):
    """Like ``bench_record`` but lands in ``BENCH_gateway.json``."""
    return _recorder(request, _gateway_value, _gateway_wall_ms)


@pytest.fixture
def bench_record_profiler(request):
    """Like ``bench_record`` but lands in ``BENCH_profiler.json``."""
    return _recorder(request, _profiler_value, _profiler_wall_ms)


@pytest.fixture(scope="session")
def runner():
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    return ExperimentRunner(scale=scale, verbose=True)


def medr_mean(result):
    """Mean MedR over both retrieval directions."""
    return 0.5 * (result.medr("image_to_recipe")
                  + result.medr("recipe_to_image"))
