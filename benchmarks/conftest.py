"""Shared fixtures for the benchmark harness.

One :class:`ExperimentRunner` is built per session so every scenario is
trained exactly once and then reused by all table/figure benchmarks.
Set ``REPRO_BENCH_SCALE=full`` for the larger configuration.
"""

import os

import pytest

from repro.experiments import ExperimentRunner


def pytest_configure(config):
    # Benchmark runs should keep the regenerated paper tables visible:
    # show captured stdout for passing tests in the summary (-rA).
    config.option.reportchars = "A"


@pytest.fixture(scope="session")
def runner():
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    return ExperimentRunner(scale=scale, verbose=True)


def medr_mean(result):
    """Mean MedR over both retrieval directions."""
    return 0.5 * (result.medr("image_to_recipe")
                  + result.medr("recipe_to_image"))
