"""Shared fixtures for the benchmark harness.

One :class:`ExperimentRunner` is built per session so every scenario is
trained exactly once and then reused by all table/figure benchmarks.
Set ``REPRO_BENCH_SCALE=full`` for the larger configuration.

Component benchmarks report their headline number through the
``bench_record`` fixture, which lands in an in-process
:class:`~repro.obs.MetricsRegistry`; at session end the registry is
exported via the obs JSON exposition to ``BENCH_components.json`` next
to this file, giving CI a machine-readable {metric -> value, wall_ms}
artifact.
"""

import os
import pathlib
import time

import pytest

from repro.experiments import ExperimentRunner
from repro.obs import MetricsRegistry

BENCH_ARTIFACT = pathlib.Path(__file__).parent / "BENCH_components.json"

_registry = MetricsRegistry()
_bench_value = _registry.gauge(
    "bench_value", "headline value reported by each micro-benchmark",
    labels=("bench",))
_bench_wall_ms = _registry.gauge(
    "bench_wall_ms", "mean wall time per benchmark iteration (ms)",
    labels=("bench",))


def pytest_configure(config):
    # Benchmark runs should keep the regenerated paper tables visible:
    # show captured stdout for passing tests in the summary (-rA).
    config.option.reportchars = "A"


def pytest_sessionfinish(session, exitstatus):
    recorded = any(family.children() for family in _registry.families())
    if recorded and not getattr(session.config.option,
                                "collectonly", False):
        _registry.dump_json(BENCH_ARTIFACT)


def _mean_ms(benchmark, fallback_s: float) -> float:
    """Mean iteration time in ms; falls back to the elapsed wall time
    when the plugin ran with ``--benchmark-disable`` (stats absent)."""
    try:
        return float(benchmark.stats.stats.mean) * 1000.0
    except AttributeError:
        return fallback_s * 1000.0


@pytest.fixture
def bench_record(request):
    """Record ``(value, wall_ms)`` for the current benchmark test."""
    started = time.perf_counter()

    def record(value: float, benchmark=None, name: str | None = None):
        name = name or request.node.name.removeprefix("test_bench_")
        _bench_value.labels(bench=name).set(float(value))
        _bench_wall_ms.labels(bench=name).set(
            _mean_ms(benchmark, time.perf_counter() - started))

    return record


@pytest.fixture(scope="session")
def runner():
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    return ExperimentRunner(scale=scale, verbose=True)


def medr_mean(result):
    """Mean MedR over both retrieval directions."""
    return 0.5 * (result.medr("image_to_recipe")
                  + result.medr("recipe_to_image"))
