"""Benchmark regenerating Table 4 — ingredient-to-image within a class.

The paper searches single ingredients within the pizza class and the
retrieved images contain the requested ingredient. We assert the top-k
containment hit-rate beats the class's base rate.
"""

import numpy as np

from repro.experiments import table4


def _base_rate(runner, ingredient: str, class_name: str) -> float:
    """How often the ingredient appears in test recipes of the class."""
    corpus = runner.test_corpus
    class_id = runner.dataset.taxonomy[class_name].class_id
    rows = [r for r in range(len(corpus))
            if corpus.true_class_ids[r] == class_id]
    if not rows:
        return 0.0
    hits = sum(ingredient in runner.dataset[
        int(corpus.recipe_indices[r])].ingredients for r in rows)
    return hits / len(rows)


def test_table4_ingredient_to_image(runner, benchmark):
    runner.scenario("adamine")
    results = benchmark.pedantic(
        table4.run, args=(runner,),
        kwargs={"class_name": "pizza", "k": 5}, rounds=3, iterations=1)

    print("\nTable 4: ingredient-to-image within class 'pizza'")
    lifts = []
    for ingredient, result in results.items():
        base = _base_rate(runner, ingredient, "pizza")
        print(f"  {ingredient:<14} hit-rate {result.hit_rate:.2f} "
              f"(class base rate {base:.2f})")
        if 0.0 < base < 1.0:
            lifts.append(result.hit_rate - base)

    assert results, "no paper ingredient survived vocabulary pruning"
    # On average, ingredient queries retrieve dishes containing the
    # ingredient more often than the class base rate (the paper's
    # "fruit pizza with strawberries" effect).
    assert lifts, "all ingredients were trivially present/absent"
    assert float(np.mean(lifts)) > 0.0
