"""Benchmark regenerating Table 1 — impact of the semantic information.

Trains AdaMine_ins, AdaMine_ins+cls and AdaMine once (session fixture),
benchmarks the 10k-setup evaluation, prints the paper-format table and
asserts the paper's shape: adding semantic information (classification
head or, better, the semantic loss) improves over the retrieval loss
alone.
"""

from conftest import medr_mean

from repro.experiments import format_results_table, table1


def test_table1_semantic_information(runner, benchmark):
    # Train once (cached); the benchmark times the protocol regeneration.
    for name in table1.SCENARIOS:
        runner.scenario(name)

    results = benchmark.pedantic(table1.run, args=(runner,), rounds=3,
                                 iterations=1)
    print()
    print(format_results_table(
        list(results.items()),
        title="Table 1: impact of semantic information (10k-style setup)"))

    ins = medr_mean(results["adamine_ins"])
    ins_cls = medr_mean(results["adamine_ins_cls"])
    full = medr_mean(results["adamine"])
    chance = runner._protocol("10k").bag_size / 2

    # Every variant is far better than chance.
    assert max(ins, ins_cls, full) < 0.5 * chance
    # The paper's ordering, with tolerance for small-scale noise:
    # semantic information (head or loss) must not hurt, and the
    # semantic loss must be at least as good as the classification head.
    assert full <= ins * 1.15
    assert full <= ins_cls * 1.15
