"""Benchmark regenerating Table 5 — the removing-ingredient task.

Editing an ingredient out of a query recipe (dropping it from the list
and deleting the instructions mentioning it) must reduce how many of
the retrieved dishes contain that ingredient — the paper's
dietary-restriction use case.

The paper demonstrates the edit with broccoli on 224px photographs. At
this reproduction's 16px procedural renders, low-contrast ingredients
(broccoli's dark green inside brown-ish stews) carry little visual
signal, so the benchmark measures the effect over a *panel* of
ingredients spanning visual saliences — including the paper's broccoli
— and asserts the mean effect, which is what the mechanism predicts.
"""

import numpy as np

from repro.experiments import table5

PANEL = ("strawberries", "bacon", "broccoli")


def test_table5_remove_ingredient(runner, benchmark):
    runner.scenario("adamine")

    def run_panel():
        results = {}
        for ingredient in PANEL:
            try:
                results[ingredient] = table5.run(
                    runner, ingredient=ingredient, max_queries=10, k=6)
            except ValueError:
                continue  # ingredient absent from this corpus' test split
        return results

    results = benchmark.pedantic(run_panel, rounds=3, iterations=1)
    assert results, "no panel ingredient occurs in the test split"

    print("\nTable 5: removing-ingredient panel (top-6, up to 10 queries)")
    effects = []
    for ingredient, result in results.items():
        print(f"  {ingredient:<14} containment {result.mean_with_rate:.2f}"
              f" -> {result.mean_without_rate:.2f} "
              f"(effect {result.mean_effect:+.2f}, "
              f"{len(result.comparisons)} queries)")
        effects.append(result.mean_effect)

    # The edit must reduce containment on average across the panel.
    assert float(np.mean(effects)) > 0.0
    # And the most visually salient ingredient must show a clear drop.
    best = max(effects)
    assert best > 0.10
