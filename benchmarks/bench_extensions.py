"""Benchmarks for the beyond-the-paper extensions.

* the hierarchical (class + food-group) semantic loss — the paper's
  stated future work — must train to competitive retrieval quality;
* Kernel CCA must be a usable baseline (it replaces linear CCA's
  global alignment with a nonlinear one);
* the paired bootstrap must certify the paper's headline comparison
  (AdaMine vs the semantic-only model) as significant.
"""

import numpy as np

from conftest import medr_mean

from repro.baselines import KernelCCA, corpus_features
from repro.retrieval import compare_models


def test_extension_hierarchical_scenario(runner, benchmark):
    runner.scenario("adamine")
    runner.scenario("adamine_hier")

    results = benchmark.pedantic(
        lambda: {name: runner.evaluate(name, "10k")
                 for name in ("adamine", "adamine_hier")},
        rounds=3, iterations=1)

    flat = medr_mean(results["adamine"])
    hier = medr_mean(results["adamine_hier"])
    print(f"\nHierarchical extension: flat MedR {flat:.1f}, "
          f"hierarchical MedR {hier:.1f}")
    # The extension must stay in the same quality regime as the flat
    # semantic loss (the paper conjectures it could refine it further).
    assert hier <= flat * 1.35


def test_extension_kernel_cca(runner, benchmark):
    train_img, train_rec = corpus_features(runner.train_corpus,
                                           runner.featurizer)
    test_img, test_rec = corpus_features(runner.test_corpus,
                                         runner.featurizer)
    # subsample the Gram matrices to keep the dual problem small
    rows = np.random.default_rng(0).choice(
        len(train_img), size=min(400, len(train_img)), replace=False)

    def run_kcca():
        kcca = KernelCCA(dim=16, reg=1e-2).fit(train_img[rows],
                                               train_rec[rows])
        return runner._protocol("10k").evaluate(
            kcca.transform_x(test_img), kcca.transform_y(test_rec))

    result = benchmark.pedantic(run_kcca, rounds=1, iterations=1)
    linear = runner.cca_result("10k")
    chance = runner._protocol("10k").bag_size / 2
    print(f"\nKernel CCA MedR {medr_mean(result):.1f} "
          f"(linear CCA {medr_mean(linear):.1f}, chance {chance:.0f})")
    assert medr_mean(result) < chance  # a usable global-alignment baseline


def test_extension_significance_of_headline(runner, benchmark):
    adamine = runner.scenario("adamine")
    sem_only = runner.scenario("adamine_sem")
    img_a, rec_a = adamine.encode_corpus(runner.test_corpus)
    img_b, rec_b = sem_only.encode_corpus(runner.test_corpus)

    result = benchmark.pedantic(
        compare_models, args=(img_a, rec_a, img_b, rec_b),
        kwargs={"metric": "MedR", "num_samples": 500}, rounds=1,
        iterations=1)
    print(f"\nAdaMine MedR {result.value_a:.1f} vs semantic-only "
          f"{result.value_b:.1f}: p={result.p_value:.3f}")
    assert result.significant
