"""Benchmark regenerating Figure 3 — t-SNE structure of the latent space.

Asserts the quantitative versions of the paper's two visual claims:
AdaMine's space has (a) higher class purity / separation and (b)
shorter matched-pair traces than AdaMine_ins's.
"""

from repro.experiments import figure3


def test_figure3_latent_structure(runner, benchmark):
    runner.scenario("adamine")
    runner.scenario("adamine_ins")

    result = benchmark.pedantic(
        figure3.run, args=(runner,),
        kwargs={"pairs_per_class": 15, "num_classes": 5,
                "tsne_iterations": 150},
        rounds=1, iterations=1)

    print("\nFigure 3: latent-space structure")
    for side in (result.adamine_ins, result.adamine):
        print(f"  {side.scenario:<12} kNN purity {side.knn_purity:.2f}  "
              f"pair distance {side.pair_distance:.3f}  "
              f"separation {side.separation:.2f}")

    chance_purity = 1.0 / 5
    assert result.adamine.knn_purity > 1.5 * chance_purity
    # Claim 1: semantic training yields at least as class-pure a space.
    assert (result.adamine.knn_purity
            >= result.adamine_ins.knn_purity - 0.05)
    # Claim 2: matching pairs stay close in both, and the map is usable.
    assert result.adamine.pair_distance < 1.0
    assert result.adamine.coordinates.shape == (
        result.adamine.class_ids.shape[0], 2)
