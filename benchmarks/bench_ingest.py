"""Streaming-ingest benchmarks.

Two budgets guard the ingest subsystem:

* **overlay query overhead** — searching the base ∪ delta merge must
  stay close to a base-only query (the overlay adds one small brute
  scan plus an exact top-k merge);
* **recovery replay throughput** — reopening a log directory replays
  every pending record; startup time is linear in log lag, so the
  per-record cost is the number that matters.

Headline numbers land in ``BENCH_ingest.json`` via the
``bench_record_ingest`` fixture (see ``conftest.py``).
"""

import time

import numpy as np

from repro.retrieval.distance import normalize_rows
from repro.retrieval.index import NearestNeighborIndex
from repro.serving import DeltaOverlay, IngestConfig, Ingestor

RNG = lambda seed=0: np.random.default_rng(seed)

BASE_ROWS = 2000
DIM = 32
DELTA_ADDS = 200
DELTA_DELETES = 50


def _base_index(rng) -> NearestNeighborIndex:
    rows = rng.normal(size=(BASE_ROWS, DIM))
    return NearestNeighborIndex(rows, ids=np.arange(BASE_ROWS),
                                class_ids=rng.integers(0, 8, BASE_ROWS))


def _loaded_overlay(rng) -> DeltaOverlay:
    base = _base_index(rng)
    overlay = DeltaOverlay(base)
    deltas = normalize_rows(rng.normal(size=(DELTA_ADDS, DIM)))
    for i in range(DELTA_ADDS):
        overlay.add(BASE_ROWS + i, deltas[i],
                    class_id=int(rng.integers(0, 8)))
    for victim in rng.choice(BASE_ROWS, DELTA_DELETES, replace=False):
        overlay.delete(int(victim))
    return overlay


def test_bench_overlay_query_overhead(benchmark, bench_record_ingest):
    """Headline: overlay/base query-time ratio at k=10."""
    rng = RNG(7)
    overlay = _loaded_overlay(rng)
    base = _base_index(RNG(7))
    query = rng.normal(size=DIM)

    def step():
        ids, distances = overlay.query(query, k=10)
        return float(distances[0])

    benchmark(step)
    # Base-only reference timed outside the plugin: same query, same
    # machine state, enough repeats to stabilise the mean.
    repeats = 50
    started = time.perf_counter()
    for _ in range(repeats):
        base.query(query, k=10)
    base_mean = (time.perf_counter() - started) / repeats
    try:
        overlay_mean = float(benchmark.stats.stats.mean)
    except AttributeError:  # --benchmark-disable
        started = time.perf_counter()
        for _ in range(repeats):
            step()
        overlay_mean = (time.perf_counter() - started) / repeats
    bench_record_ingest(overlay_mean / max(base_mean, 1e-12), benchmark)


def test_bench_recovery_replay(benchmark, bench_record_ingest,
                               tmp_path):
    """Headline: recovery replay throughput in records/second."""
    rng = RNG(11)
    log_dir = tmp_path / "wal"
    records = 400
    writer = Ingestor(log_dir, {"vec": _base_index(rng)},
                      config=IngestConfig(fsync_every=64))
    deltas = rng.normal(size=(records, DIM))
    for i in range(records):
        writer.add({"vec": deltas[i]}, class_id=int(rng.integers(0, 8)))
    writer.close()

    def step():
        reopened = Ingestor(log_dir, {"vec": _base_index(RNG(11))})
        replayed = reopened.recovery["replayed_records"]
        reopened.close()
        return replayed

    replayed = benchmark(step)
    assert replayed == records
    try:
        mean_s = float(benchmark.stats.stats.mean)
    except AttributeError:
        started = time.perf_counter()
        step()
        mean_s = time.perf_counter() - started
    bench_record_ingest(records / max(mean_s, 1e-12), benchmark)
