"""Ablation benchmarks for AdaMine's design choices (DESIGN.md list).

Each ablation retrains the full model with exactly one knob flipped and
compares test MedR against the reference configuration:

* mining strategy: adaptive (paper) vs average vs hard-negative;
* triplet directionality: bidirectional (paper) vs image→recipe only;
* batch composition: class-stratified labeled half (paper) vs uniform.
"""

import dataclasses

import numpy as np
import pytest

from conftest import medr_mean

from repro.core import Trainer, build_scenario


def _train_variant(runner, **config_overrides):
    model, config = build_scenario(
        "adamine", runner.featurizer, runner.num_classes,
        runner.scale.dataset.image_size,
        base_config=runner.scale.training,
        latent_dim=runner.scale.latent_dim,
        backbone=runner.scale.backbone,
        seed=runner.scale.dataset.seed)
    config = dataclasses.replace(config, **config_overrides)
    trainer = Trainer(model, config)
    trainer.fit(runner.train_corpus, runner.val_corpus)
    image_emb, recipe_emb = model.encode_corpus(runner.test_corpus)
    return runner._protocol("10k").evaluate(image_emb, recipe_emb)


@pytest.fixture(scope="module")
def ablation_results(runner):
    results = {
        "reference (adaptive)": runner.evaluate("adamine", "10k"),
        "average mining": runner.evaluate("adamine_avg", "10k"),
        "hard mining": _train_variant(runner, strategy="hard"),
        "unidirectional": _train_variant(runner, bidirectional=False),
        "no stratification": _train_variant(runner,
                                            stratify_batches=False),
    }
    print("\nAblations (mean MedR over both directions, 10k setup):")
    for name, result in results.items():
        print(f"  {name:<22} {medr_mean(result):6.1f}")
    return results


def test_ablation_results_all_learn(runner, ablation_results, benchmark):
    chance = runner._protocol("10k").bag_size / 2
    benchmark(lambda: {n: medr_mean(r) for n, r in ablation_results.items()})
    for name, result in ablation_results.items():
        if name == "hard mining":
            # Pure hard-negative mining is known to be unstable (it can
            # chase label noise and collapse — the failure mode the
            # paper's adaptive curriculum avoids); only require that it
            # is no better than the adaptive reference.
            continue
        assert medr_mean(result) < 0.6 * chance, name


def test_ablation_hard_mining_not_better(ablation_results, benchmark):
    reference, hard = benchmark(
        lambda: (medr_mean(ablation_results["reference (adaptive)"]),
                 medr_mean(ablation_results["hard mining"])))
    assert reference <= hard * 1.10


def test_ablation_adaptive_vs_average(ablation_results, benchmark):
    reference, average = benchmark(
        lambda: (medr_mean(ablation_results["reference (adaptive)"]),
                 medr_mean(ablation_results["average mining"])))
    # Adaptive mining is the paper's headline training contribution:
    # it must not lose to plain averaging by more than noise.
    assert reference <= average * 1.10


def test_ablation_bidirectional_helps(ablation_results, benchmark):
    reference, unidirectional = benchmark(
        lambda: (medr_mean(ablation_results["reference (adaptive)"]),
                 medr_mean(ablation_results["unidirectional"])))
    # Dropping half the triplets (one direction) must not help much.
    assert reference <= unidirectional * 1.25
