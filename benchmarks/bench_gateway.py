"""Gateway benchmarks: the HTTP front door's overhead and drain cost.

Three headline numbers, all measured over real loopback sockets
against a live :class:`~repro.serving.gateway.Gateway`:

* ``throughput_cache_off`` / ``throughput_cache_on`` — sequential
  requests/second for a repeated query with the result cache disabled
  vs enabled (the cache turns a full embed → index → materialize pass
  into a dict lookup, so the gap is the service's whole compute);
* ``p99_ms_cache_off`` / ``p99_ms_cache_on`` — client-observed tail
  latency for the same two configurations;
* ``drain_ms_under_load`` — how long a graceful drain takes while
  concurrent clients are mid-flight (the SIGTERM → exit budget a
  rolling restart must plan for).

Numbers land in ``BENCH_gateway.json`` via the
``bench_record_gateway`` fixture (see ``conftest.py``).
"""

import http.client
import json
import threading
import time

import numpy as np

from repro.core import RecipeSearchEngine
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset
from repro.serving import (CacheConfig, Gateway, GatewayConfig,
                           ResilientSearchService, ServiceConfig)

HOST = "127.0.0.1"
REQUESTS = 150
CLIENTS = 6


class _Embedded:
    __slots__ = ("data",)

    def __init__(self, data):
        self.data = data


class _StubModel:
    """Training-free embedder so the benchmark measures the wire and
    cache, not a model forward pass."""

    def __init__(self, dim: int = 16):
        self.dim = int(dim)

    def _recipe_rows(self, ids, lengths) -> np.ndarray:
        ids, lengths = np.asarray(ids), np.asarray(lengths)
        out = np.zeros((len(ids), self.dim))
        for row in range(len(ids)):
            n = max(int(lengths[row]), 1)
            hist = np.bincount(ids[row][:n] % self.dim,
                               minlength=self.dim).astype(float) + 1e-3
            out[row] = hist / np.linalg.norm(hist)
        return out

    def embed_recipes(self, ingredient_ids, ingredient_lengths,
                      sentence_vectors, sentence_lengths) -> _Embedded:
        return _Embedded(self._recipe_rows(ingredient_ids,
                                           ingredient_lengths))

    def embed_images(self, images) -> _Embedded:
        flat = np.asarray(images).reshape(len(images), -1)
        hist = np.abs(flat[:, :self.dim]) + 1e-3
        return _Embedded(hist / np.linalg.norm(hist, axis=1,
                                               keepdims=True))

    def encode_corpus(self, corpus, batch_size: int = 256):
        recipe = self._recipe_rows(corpus.ingredient_ids,
                                   corpus.ingredient_lengths)
        return recipe.copy(), recipe


def _build_engine() -> RecipeSearchEngine:
    dataset = generate_dataset(DatasetConfig(
        num_pairs=60, num_classes=4, image_size=8, seed=7))
    featurizer = RecipeFeaturizer(word_dim=8, sentence_dim=8).fit(dataset)
    corpus = featurizer.encode_split(dataset, "test")
    return RecipeSearchEngine(_StubModel(), featurizer, dataset, corpus)


def _query_ingredients(engine) -> list:
    vocab = engine.featurizer.ingredient_vocab
    names = []
    for recipe in engine.dataset.split("train"):
        for name in recipe.ingredients:
            if name.replace(" ", "_") in vocab and name not in names:
                names.append(name)
            if len(names) >= 2:
                return names
    return names


def _start_gateway(cache_enabled: bool):
    engine = _build_engine()
    service = ResilientSearchService(
        engine, ServiceConfig(deadline=2.0, max_inflight=64))
    gateway = Gateway(service, GatewayConfig(
        max_connections=128,
        cache=CacheConfig(enabled=cache_enabled, ttl_s=300.0)))
    gateway.start()
    return gateway, _query_ingredients(engine)


def _one_request(port: int, payload: bytes) -> float:
    started = time.perf_counter()
    conn = http.client.HTTPConnection(HOST, port, timeout=10.0)
    try:
        conn.request("POST", "/search", body=payload,
                     headers={"Content-Type": "application/json",
                              "Connection": "close"})
        reply = conn.getresponse()
        assert reply.status == 200, reply.read()
        reply.read()
    finally:
        conn.close()
    return time.perf_counter() - started


def _measure(cache_enabled: bool) -> tuple[float, float]:
    """(requests/second, p99 ms) for one gateway configuration."""
    gateway, ingredients = _start_gateway(cache_enabled)
    payload = json.dumps({"ingredients": ingredients, "k": 5}).encode()
    try:
        _one_request(gateway.port, payload)  # warm (and fill the cache)
        latencies = []
        started = time.perf_counter()
        for _ in range(REQUESTS):
            latencies.append(_one_request(gateway.port, payload))
        elapsed = time.perf_counter() - started
    finally:
        gateway.drain(reason="bench-done")
    rps = REQUESTS / elapsed
    p99_ms = float(np.percentile(np.array(latencies), 99)) * 1000.0
    return rps, p99_ms


def _measure_drain_under_load() -> float:
    """Milliseconds from drain() to fully drained with clients live."""
    gateway, ingredients = _start_gateway(True)
    payload = json.dumps({"ingredients": ingredients, "k": 5,
                          "class_name": None}).encode()
    stop = threading.Event()

    def client():
        while not stop.is_set():
            try:
                _one_request(gateway.port, payload)
            except (OSError, AssertionError):
                return  # drain reached the wire

    threads = [threading.Thread(target=client, daemon=True)
               for _ in range(CLIENTS)]
    for thread in threads:
        thread.start()
    time.sleep(0.3)  # let load build
    started = time.perf_counter()
    gateway.drain(reason="bench-drain")
    drain_s = time.perf_counter() - started
    stop.set()
    for thread in threads:
        thread.join(timeout=5.0)
    return drain_s * 1000.0


def test_bench_gateway_throughput_and_drain(benchmark,
                                            bench_record_gateway):
    """Headline: cache-on/cache-off speedup over real sockets."""
    results = {}

    def run_suite():
        results["off"] = _measure(cache_enabled=False)
        results["on"] = _measure(cache_enabled=True)
        results["drain_ms"] = _measure_drain_under_load()
        return results

    benchmark.pedantic(run_suite, rounds=1, iterations=1)
    (rps_off, p99_off), (rps_on, p99_on) = results["off"], results["on"]
    bench_record_gateway(rps_off, None, name="throughput_cache_off")
    bench_record_gateway(rps_on, None, name="throughput_cache_on")
    bench_record_gateway(p99_off, None, name="p99_ms_cache_off")
    bench_record_gateway(p99_on, None, name="p99_ms_cache_on")
    bench_record_gateway(results["drain_ms"], None,
                         name="drain_ms_under_load")
    speedup = rps_on / max(rps_off, 1e-9)
    bench_record_gateway(speedup, None, name="cache_speedup")
    print(f"\ngateway throughput: cache off {rps_off:.0f} req/s "
          f"(p99 {p99_off:.2f}ms), cache on {rps_on:.0f} req/s "
          f"(p99 {p99_on:.2f}ms), speedup {speedup:.2f}x")
    print(f"drain under load: {results['drain_ms']:.1f}ms")
    assert rps_on > 0 and rps_off > 0
    # A cached answer must not be slower than recomputing it.
    assert speedup >= 0.8
